"""Parallel experiment execution with content-hash disk caching.

The :class:`Runner` executes :class:`~repro.experiments.spec.ExperimentSpec`
grids across a :class:`~concurrent.futures.ProcessPoolExecutor` and caches
every :class:`~repro.experiments.spec.ExperimentResult` on disk under a
SHA-256 content hash of ``(experiment, resolved params, schema, library
version)``.  A warm cache therefore performs zero recomputation, and any
parameter, schema or version change misses cleanly instead of serving
stale results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.registry import get_experiment
from repro.experiments.spec import RESULT_SCHEMA, ExperimentResult, ExperimentSpec

__all__ = ["Runner", "SweepResult", "default_cache_dir"]


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _library_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


def content_hash(experiment: str, params: Mapping[str, Any]) -> str:
    """Deterministic cache key for one resolved experiment invocation."""
    canonical = json.dumps(
        {
            "experiment": experiment,
            "params": params,
            "schema": RESULT_SCHEMA,
            "version": _library_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _execute_job(job: Tuple[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Worker entry point: run one resolved point, return a result dict.

    Top-level (not a method) so :class:`ProcessPoolExecutor` can pickle it;
    the dictionary form crosses the process boundary instead of the result
    object to keep the wire format identical to the disk format.
    """
    name, params = job
    definition = get_experiment(name)
    start = time.perf_counter()
    legacy = definition.execute(params)
    elapsed = time.perf_counter() - start
    return ExperimentResult(
        experiment=name,
        params=dict(params),
        payload=definition.serialize(legacy),
        elapsed_seconds=elapsed,
    ).to_dict()


@dataclass
class SweepResult:
    """Every grid point of one executed sweep, in grid order."""

    spec: ExperimentSpec
    results: List[ExperimentResult]

    @property
    def cache_hits(self) -> int:
        """How many points were served from the disk cache."""
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def elapsed_seconds(self) -> float:
        """Total compute time across the executed (non-cached) points."""
        return sum(
            result.elapsed_seconds
            for result in self.results
            if not result.cache_hit
        )

    def summary_rows(self) -> List[List[object]]:
        """One row per point: swept axis values, elapsed time, cache state."""
        axes = sorted(self.spec.sweep)
        rows = []
        for result in self.results:
            rows.append(
                [result.params.get(axis) for axis in axes]
                + [round(result.elapsed_seconds, 3), result.cache_hit]
            )
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "spec": self.spec.to_dict(),
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            results=[ExperimentResult.from_dict(entry) for entry in data["results"]],
        )


class Runner:
    """Executes experiment specs: serial or parallel, cold or cached.

    Parameters
    ----------
    cache_dir:
        Directory for cached results (default ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``); created lazily on the first write.
    use_cache:
        Read and write the disk cache.  ``False`` always recomputes.
    parallel:
        Execute independent grid points across a process pool.
    max_workers:
        Pool size cap (default: ``os.cpu_count()``).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        self.cache_dir = cache_dir or default_cache_dir()
        self.use_cache = use_cache
        self.parallel = parallel
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        experiment: str,
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
    ) -> ExperimentResult:
        """Run one experiment at one parameter point."""
        return self.run_specs(
            [ExperimentSpec(experiment, params or {})], quick=quick
        )[0]

    def run_spec(
        self, spec: ExperimentSpec, quick: bool = False
    ) -> List[ExperimentResult]:
        """Run every grid point of one spec, in grid order."""
        return self.run_specs([spec], quick=quick)

    def run_specs(
        self, specs: Sequence[ExperimentSpec], quick: bool = False
    ) -> List[ExperimentResult]:
        """Run every grid point of every spec, preserving input order.

        Cached points load without recomputation; the remaining points run
        serially or across the process pool, then enter the cache.
        """
        jobs: List[Tuple[str, Dict[str, Any]]] = []
        for spec in specs:
            definition = get_experiment(spec.experiment)
            for point in spec.points():
                jobs.append(
                    (spec.experiment, definition.resolve_params(point, quick=quick))
                )

        results: List[Optional[ExperimentResult]] = [None] * len(jobs)
        misses: List[int] = []
        for index, (name, params) in enumerate(jobs):
            usable = self.use_cache and get_experiment(name).cacheable
            cached = self._cache_load(name, params) if usable else None
            if cached is not None:
                results[index] = cached
            else:
                misses.append(index)

        for index, result in zip(misses, self._execute_many([jobs[i] for i in misses])):
            results[index] = result
            if self.use_cache and get_experiment(result.experiment).cacheable:
                self._cache_store(result)
        return [result for result in results if result is not None]

    def sweep(
        self,
        experiment: str,
        axes: Mapping[str, Sequence[Any]],
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
    ) -> SweepResult:
        """Run a full parameter sweep over ``axes`` (a cartesian grid)."""
        spec = ExperimentSpec(experiment, params or {}, axes)
        return SweepResult(spec=spec, results=self.run_spec(spec, quick=quick))

    def _execute_many(
        self, jobs: List[Tuple[str, Dict[str, Any]]]
    ) -> List[ExperimentResult]:
        if not jobs:
            return []
        if self.parallel and len(jobs) > 1:
            workers = min(self.max_workers or os.cpu_count() or 1, len(jobs))
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    dicts = list(pool.map(_execute_job, jobs))
                return [ExperimentResult.from_dict(entry) for entry in dicts]
            except (OSError, BrokenProcessPool):
                # Restricted environments (no process spawning / semaphores)
                # degrade to the serial path instead of failing the run.
                pass
        return [ExperimentResult.from_dict(_execute_job(job)) for job in jobs]

    # ------------------------------------------------------------------ #
    # disk cache
    # ------------------------------------------------------------------ #
    def cache_path(self, experiment: str, params: Mapping[str, Any]) -> str:
        """Where one resolved invocation is (or would be) cached."""
        digest = content_hash(experiment, params)
        return os.path.join(self.cache_dir, f"{experiment}-{digest[:20]}.json")

    def _cache_load(
        self, experiment: str, params: Mapping[str, Any]
    ) -> Optional[ExperimentResult]:
        path = self.cache_path(experiment, params)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = ExperimentResult.from_dict(data)
            if result.experiment != experiment:
                return None
        except (OSError, ValueError, KeyError):
            # Missing, truncated or stale-schema entries are cache misses
            # (ConfigurationError from a schema mismatch is a ValueError).
            return None
        result.cache_hit = True
        return result

    def _cache_store(self, result: ExperimentResult) -> None:
        # A cache dir that cannot be created or written must never discard
        # an already-computed result — degrade to uncached operation.
        temp_path = None
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            path = self.cache_path(result.experiment, result.params)
            # Atomic publish so a concurrent reader never sees a partial file.
            fd, temp_path = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle)
            os.replace(temp_path, path)
        except OSError:
            if temp_path is not None:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
