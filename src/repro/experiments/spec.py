"""Declarative experiment specifications and structured results.

An :class:`ExperimentSpec` names a registered experiment, overrides some of
its parameters and optionally declares sweep axes; :meth:`ExperimentSpec.points`
expands the cartesian grid.  An :class:`ExperimentResult` wraps the
experiment's structured payload so it can be cached to disk, shipped as
JSON and rendered back into the exact legacy text view.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["ExperimentSpec", "ExperimentResult", "RESULT_SCHEMA"]

#: Version of the ``ExperimentResult`` serialisation format.  Bumping it
#: invalidates every on-disk cache entry (the hash key includes it).
RESULT_SCHEMA = 1


def _frozen_mapping(value: Mapping[str, Any]) -> Mapping[str, Any]:
    return MappingProxyType(dict(value))


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative request: one experiment, its parameters, its sweep grid.

    ``params`` override the experiment's registered defaults point-wise;
    ``sweep`` maps axis names to value lists and turns the spec into a
    cartesian grid.  A spec is data, not behaviour — hand it to a
    :class:`~repro.experiments.runner.Runner` to execute it.
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _frozen_mapping(self.params))
        swept = {name: tuple(values) for name, values in dict(self.sweep).items()}
        for name, values in swept.items():
            if not values:
                raise ConfigurationError(
                    f"sweep axis {name!r} of experiment "
                    f"{self.experiment!r} has no values"
                )
            if name in self.params:
                raise ConfigurationError(
                    f"{name!r} appears both as a fixed parameter and a "
                    f"sweep axis of experiment {self.experiment!r}"
                )
        object.__setattr__(self, "sweep", MappingProxyType(swept))

    @property
    def is_sweep(self) -> bool:
        """Whether this spec declares sweep axes."""
        return bool(self.sweep)

    def points(self) -> List[Dict[str, Any]]:
        """Every concrete parameter dict of the grid (one without a sweep)."""
        base = dict(self.params)
        if not self.sweep:
            return [base]
        axes = sorted(self.sweep)
        grids = []
        for combo in itertools.product(*(self.sweep[axis] for axis in axes)):
            point = dict(base)
            point.update(dict(zip(axes, combo)))
            grids.append(point)
        return grids

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "sweep": {name: list(values) for name, values in self.sweep.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            experiment=str(data["experiment"]),
            params=dict(data.get("params", {})),
            sweep={
                name: tuple(values)
                for name, values in dict(data.get("sweep", {})).items()
            },
        )


@dataclass
class ExperimentResult:
    """One executed experiment: resolved parameters plus structured payload.

    The payload is the experiment's own ``to_dict`` serialisation, so
    :meth:`result` reconstructs the legacy result object and :meth:`render`
    reproduces the legacy text view byte-for-byte after any number of
    JSON/disk round trips.
    """

    experiment: str
    params: Dict[str, Any]
    payload: Dict[str, Any]
    elapsed_seconds: float = 0.0
    #: Whether this result came from the runner's disk cache.
    cache_hit: bool = False
    schema: int = RESULT_SCHEMA

    def result(self) -> Any:
        """The legacy result object (``Figure1Result``, ``Table3Result``, ...)."""
        from repro.experiments.registry import get_experiment

        return get_experiment(self.experiment).deserialize(self.payload)

    def render(self) -> str:
        """The legacy text view of this result."""
        return self.result().render()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "payload": self.payload,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hit": self.cache_hit,
            "schema": self.schema,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        schema = int(data.get("schema", RESULT_SCHEMA))
        if schema != RESULT_SCHEMA:
            raise ConfigurationError(
                f"experiment result schema {schema} is not supported "
                f"(expected {RESULT_SCHEMA})"
            )
        return cls(
            experiment=str(data["experiment"]),
            params=dict(data["params"]),
            payload=dict(data["payload"]),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            cache_hit=bool(data.get("cache_hit", False)),
            schema=schema,
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
