"""Experiment API: declarative specs, parallel runner, cached results.

Every table and figure of the paper is a registered *experiment* — a named,
parameterised entry point returning a structured result.  The API has three
pieces:

* :class:`~repro.experiments.spec.ExperimentSpec` — a declarative request
  (experiment name, parameter overrides, sweep/grid axes);
* :class:`~repro.experiments.runner.Runner` — executes specs serially or
  across a process pool, with per-spec content-hash disk caching;
* :class:`~repro.experiments.spec.ExperimentResult` — a JSON round-trippable
  result whose :meth:`render` reproduces the legacy text view exactly.

Quickstart::

    from repro.experiments import Runner

    runner = Runner(parallel=True)
    result = runner.run("headline", quick=True)     # ExperimentResult
    print(result.render())                          # legacy scorecard text
    sweep = runner.sweep("design-point", {"bitwidth": [64, 128, 256]})
    print(sweep.cache_hits, "of", len(sweep.results), "points cached")

``repro experiment list`` shows every registered experiment;
``repro experiment run NAME --json`` and ``repro experiment sweep NAME
--axis k=v1,v2`` drive the same machinery from the shell, and
``repro report --parallel`` composes the consolidated report from it.
"""

from repro.experiments.registry import (
    REPORT_EXPERIMENTS,
    ExperimentDefinition,
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.runner import Runner, SweepResult, default_cache_dir
from repro.experiments.spec import RESULT_SCHEMA, ExperimentResult, ExperimentSpec

__all__ = [
    "ExperimentDefinition",
    "ExperimentResult",
    "ExperimentSpec",
    "REPORT_EXPERIMENTS",
    "RESULT_SCHEMA",
    "Runner",
    "SweepResult",
    "available_experiments",
    "default_cache_dir",
    "get_experiment",
    "register_experiment",
]
