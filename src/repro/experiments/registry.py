"""Registry of experiment definitions.

An :class:`ExperimentDefinition` wraps one ``reproduce_*`` entry point with
its parameter schema (defaults, ``--quick`` overrides, natural sweep axes)
and the serialise/deserialise pair that moves its result through JSON and
the disk cache.  The built-in definitions — one per paper table/figure —
are registered lazily by :mod:`repro.experiments.builtin` so importing this
package stays cheap and free of import cycles with :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ExperimentDefinition",
    "REPORT_EXPERIMENTS",
    "register_experiment",
    "get_experiment",
    "available_experiments",
]

#: Report order: the experiments whose renders compose the consolidated
#: report, in the exact sequence the legacy serial path printed them.
#: Lives here (not in ``builtin``) so :mod:`repro.analysis.report` can
#: import it without touching the lazily-loaded definitions module.
REPORT_EXPERIMENTS = (
    "table1",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "table3",
    "headline",
    "chip-scaling",
)


@dataclass(frozen=True)
class ExperimentDefinition:
    """One registered experiment: entry point plus parameter/result schema."""

    #: Registry name (``"figure1"``, ``"table3"``, ``"headline"``, ...).
    name: str
    #: Short human-readable title for ``repro experiment list``.
    title: str
    #: What the experiment reproduces, one sentence.
    description: str
    #: Entry point; called with the fully resolved keyword parameters.
    run: Callable[..., Any]
    #: Legacy result object -> JSON-clean payload dictionary.
    serialize: Callable[[Any], Dict[str, Any]]
    #: Payload dictionary -> legacy result object (render()-able).
    deserialize: Callable[[Dict[str, Any]], Any]
    #: Every accepted parameter with its default value.
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Parameter overrides applied in quick mode (skip expensive runs).
    quick_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Parameters that make natural sweep/grid axes.
    sweep_axes: Tuple[str, ...] = ()
    #: Whether results may be served from the disk cache.  ``False`` for
    #: experiments whose headline figures are wall-clock measurements of
    #: *this* machine (serving a stale timing as fresh would mislead).
    cacheable: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "defaults", MappingProxyType(dict(self.defaults)))
        object.__setattr__(
            self, "quick_overrides", MappingProxyType(dict(self.quick_overrides))
        )
        for name in self.quick_overrides:
            if name not in self.defaults:
                raise ConfigurationError(
                    f"quick override {name!r} of experiment {self.name!r} "
                    "is not a declared parameter"
                )
        for name in self.sweep_axes:
            if name not in self.defaults:
                raise ConfigurationError(
                    f"sweep axis {name!r} of experiment {self.name!r} "
                    "is not a declared parameter"
                )

    def resolve_params(
        self,
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
    ) -> Dict[str, Any]:
        """Merge defaults, quick overrides and caller parameters.

        Rejects parameters the experiment does not declare, so typos fail
        loudly instead of silently running the default configuration.
        """
        params = dict(params or {})
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {unknown} for experiment "
                f"{self.name!r}; accepted: {sorted(self.defaults)}"
            )
        resolved = dict(self.defaults)
        if quick:
            resolved.update(self.quick_overrides)
        resolved.update(params)
        return resolved

    def execute(self, params: Mapping[str, Any]) -> Any:
        """Run the entry point with fully resolved parameters."""
        return self.run(**params)

    def describe(self) -> Dict[str, Any]:
        """Definition metadata as a JSON-friendly dictionary."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "defaults": dict(self.defaults),
            "quick_overrides": dict(self.quick_overrides),
            "sweep_axes": list(self.sweep_axes),
            "cacheable": self.cacheable,
        }


_REGISTRY: Dict[str, ExperimentDefinition] = {}
_DEFAULTS_BUILT = False


def _build_default_experiments() -> None:
    global _DEFAULTS_BUILT
    if _DEFAULTS_BUILT:
        return
    _DEFAULTS_BUILT = True
    # Importing the module registers every built-in definition as a side
    # effect (mirrors the engine backend registry).
    import repro.experiments.builtin  # noqa: F401


def register_experiment(
    definition: ExperimentDefinition, replace: bool = False
) -> ExperimentDefinition:
    """Add an experiment to the registry (``replace=True`` to overwrite)."""
    _build_default_experiments()
    if definition.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"experiment {definition.name!r} already registered"
        )
    _REGISTRY[definition.name] = definition
    return definition


def get_experiment(name: str) -> ExperimentDefinition:
    """Look up a registered experiment by name."""
    _build_default_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None


def available_experiments() -> List[str]:
    """Sorted names of every registered experiment."""
    _build_default_experiments()
    return sorted(_REGISTRY)
