"""Table 3: comparison of modular multiplication across PIM designs.

The table compares this work against MeNTT, BP-NTT, RM-NTT, CryptoPIM and
X-Poly on application, reduction method, technology, cell type, array size,
frequency, native bitwidth, per-multiplication cycles scaled to 256 bits and
area.  This reproduction builds every row from the library's own models: the
ModSRAM cycles come from the cycle-accurate accelerator (optionally) or the
schedule, the prior-work cycles from their scaling laws, areas and
frequencies from the design specs or the area/timing models.

Registered as experiment ``table3`` in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.baselines import available_designs, bpntt_transform_cycles, get_design
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import PAPER_CONFIG

__all__ = ["Table3Result", "reproduce_table3", "DESIGN_ORDER"]

#: Column order of the paper's Table 3.
DESIGN_ORDER = ("modsram", "mentt", "bpntt", "rm-ntt", "cryptopim", "x-poly")

#: Cycle counts printed in the paper's Table 3 (256-bit, scaled).
PAPER_TABLE3_CYCLES = {"modsram": 767, "mentt": 66049, "bpntt": 1465}


@dataclass(frozen=True)
class Table3Result:
    """All Table 3 rows plus the derived headline ratios."""

    bitwidth: int
    rows_by_design: Dict[str, Dict[str, object]]
    measured_modsram_cycles: Optional[int]

    def cycle_reduction_vs(self, design_key: str, include_transform: bool = False) -> float:
        """Percentage cycle reduction of this work versus a baseline design."""
        ours = self.rows_by_design["modsram"]["cycles"]
        theirs = self.rows_by_design[design_key]["cycles"]
        if theirs is None:
            raise ValueError(f"design {design_key!r} has no cycle count")
        if include_transform and design_key == "bpntt":
            theirs = int(theirs) + bpntt_transform_cycles(self.bitwidth) // 10
        return 100.0 * (1.0 - float(ours) / float(theirs))

    def best_prior_cycle_reduction(self) -> float:
        """Reduction versus the best prior design that reports cycles (BP-NTT)."""
        return self.cycle_reduction_vs("bpntt")

    def rows(self) -> List[List[object]]:
        """Rows in the paper's column order."""
        table = []
        for key in DESIGN_ORDER:
            row = self.rows_by_design[key]
            table.append(
                [
                    row["design"],
                    row["application"],
                    row["method"],
                    f"{row['technology_nm']} nm",
                    row["cell_type"],
                    row["array_size"],
                    row["frequency_mhz"],
                    "/".join(str(b) for b in row["native_bitwidths"]),
                    row["cycles"],
                    row["area_mm2"],
                ]
            )
        return table

    def render(self) -> str:
        """The table as text plus the headline reduction figures."""
        table = render_table(
            (
                "design",
                "application",
                "method",
                "tech",
                "cell",
                "array",
                "freq (MHz)",
                "bitwidth",
                f"cycles @ {self.bitwidth}b",
                "area (mm^2)",
            ),
            self.rows(),
            title="Table 3: modular multiplication in PIM designs",
        )
        summary_lines = [
            f"cycle reduction vs MeNTT: {self.cycle_reduction_vs('mentt'):.1f}%",
            f"cycle reduction vs BP-NTT (as scaled): {self.cycle_reduction_vs('bpntt'):.1f}%",
            (
                "cycle reduction vs BP-NTT incl. Montgomery-form conversion share: "
                f"{self.cycle_reduction_vs('bpntt', include_transform=True):.1f}%"
            ),
        ]
        if self.measured_modsram_cycles is not None:
            summary_lines.append(
                f"ModSRAM cycles measured by the cycle-accurate model: "
                f"{self.measured_modsram_cycles}"
            )
        return table + "\n" + "\n".join(summary_lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "bitwidth": self.bitwidth,
            "rows_by_design": {
                key: dict(row) for key, row in self.rows_by_design.items()
            },
            "measured_modsram_cycles": self.measured_modsram_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Table3Result":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON).

        The row values render verbatim, so their JSON types (int vs float,
        lists for the bitwidth tuples) are kept exactly as loaded.
        """
        measured = data["measured_modsram_cycles"]
        return cls(
            bitwidth=int(data["bitwidth"]),
            rows_by_design={
                key: dict(row) for key, row in data["rows_by_design"].items()
            },
            measured_modsram_cycles=None if measured is None else int(measured),
        )


def reproduce_table3(bitwidth: int = 256, measure: bool = False) -> Table3Result:
    """Reproduce Table 3 at ``bitwidth`` bits.

    ``measure=True`` additionally runs one 256-bit multiplication through the
    cycle-accurate accelerator and reports the measured main-loop cycles
    (identical to the scheduled count by construction, but measured).
    """
    rows = {key: get_design(key).as_row(bitwidth) for key in DESIGN_ORDER}
    measured: Optional[int] = None
    if measure:
        modulus = CURVE_SPECS["bn254"].field_modulus
        accelerator = ModSRAMAccelerator(PAPER_CONFIG)
        a = 0x1357_9BDF_2468_ACE0 % modulus
        b = (modulus - 1) // 3
        result = accelerator.multiply(a, b, modulus)
        measured = result.report.iteration_cycles
        rows["modsram"]["cycles"] = measured
    return Table3Result(
        bitwidth=bitwidth, rows_by_design=rows, measured_modsram_cycles=measured
    )
