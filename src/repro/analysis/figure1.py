"""Figure 1: algorithm complexity and performance comparison.

The paper's Figure 1 plots the cycles of one modular multiplication against
the operand bitwidth (8–256 bits) for the MeNTT bit-serial algorithm, a
projected variant of it, and this work.  The reproduction produces two
things for every bitwidth:

* the *analytic* cycle count from the closed-form laws
  (:mod:`repro.core.complexity`), and
* the *measured* cycle count obtained by running the cycle-accurate
  ModSRAM model on random operands of that width,

so the O(n) claim is backed by the simulator rather than only by the
formula.

Registered as experiment ``figure1`` in :mod:`repro.experiments`; prefer
``Runner().run("figure1")`` over calling :func:`reproduce_figure1` directly
when you want caching, sweeps or JSON output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.core.complexity import (
    COMPLEXITY_MODELS,
    PAPER_FIGURE1_BITWIDTHS,
    complexity_sweep,
)
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig

__all__ = ["Figure1Result", "measure_modsram_cycles", "reproduce_figure1"]


def _random_modulus(bitwidth: int, rng: random.Random) -> int:
    """An odd modulus with the exact requested bit length."""
    modulus = (1 << (bitwidth - 1)) | rng.getrandbits(bitwidth - 1) | 1
    return modulus


def measure_modsram_cycles(
    bitwidth: int, rng: Optional[random.Random] = None
) -> int:
    """Main-loop cycles measured by running the accelerator at ``bitwidth``.

    Uses the paper's schedule (``n/2`` iterations), i.e. the multiplier's
    top bit is kept clear, matching how the paper scales its comparison.
    """
    rng = rng or random.Random(bitwidth)
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)
    accelerator = ModSRAMAccelerator(config)
    modulus = _random_modulus(bitwidth, rng)
    a = rng.randrange(modulus) & ((1 << (bitwidth - 1)) - 1)
    b = rng.randrange(modulus)
    result = accelerator.multiply(a, b, modulus)
    expected = (a * b) % modulus
    if result.product != expected:
        raise AssertionError(
            "cycle-accurate model disagrees with the oracle during the "
            f"Figure 1 sweep at {bitwidth} bits"
        )
    return result.report.iteration_cycles


@dataclass(frozen=True)
class Figure1Result:
    """Cycles-versus-bitwidth series for every curve of Figure 1."""

    bitwidths: Tuple[int, ...]
    analytic_series: Dict[str, List[int]]
    measured_modsram: List[int]

    def speedup_over_mentt(self) -> List[float]:
        """MeNTT cycles divided by this work's cycles, per bitwidth."""
        ours = self.analytic_series["r4csa-lut"]
        mentt = self.analytic_series["mentt"]
        return [m / o for m, o in zip(mentt, ours)]

    def rows(self) -> List[List[object]]:
        """Table rows: one per bitwidth, one column per series."""
        table = []
        for index, bitwidth in enumerate(self.bitwidths):
            row: List[object] = [bitwidth]
            for key in sorted(self.analytic_series):
                row.append(self.analytic_series[key][index])
            row.append(self.measured_modsram[index])
            table.append(row)
        return table

    def render(self) -> str:
        """The figure's data as a text table."""
        headers = ["bitwidth"] + [
            COMPLEXITY_MODELS[key].label for key in sorted(self.analytic_series)
        ] + ["ModSRAM (measured)"]
        return render_table(
            headers,
            self.rows(),
            title="Figure 1: cycles per modular multiplication vs bitwidth",
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "bitwidths": list(self.bitwidths),
            "analytic_series": {
                key: list(series) for key, series in self.analytic_series.items()
            },
            "measured_modsram": list(self.measured_modsram),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Figure1Result":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            bitwidths=tuple(int(b) for b in data["bitwidths"]),
            analytic_series={
                key: [int(v) for v in series]
                for key, series in data["analytic_series"].items()
            },
            measured_modsram=[int(v) for v in data["measured_modsram"]],
        )


def reproduce_figure1(
    bitwidths: Sequence[int] = PAPER_FIGURE1_BITWIDTHS,
    measure: bool = True,
    seed: int = 2024,
) -> Figure1Result:
    """Reproduce Figure 1 over the requested bitwidths.

    ``measure=False`` skips the cycle-accurate runs (useful in quick test
    configurations); the measured series then falls back to the analytic law.
    """
    analytic = complexity_sweep(bitwidths)
    rng = random.Random(seed)
    if measure:
        measured = [measure_modsram_cycles(bitwidth, rng) for bitwidth in bitwidths]
    else:
        measured = list(analytic["r4csa-lut"])
    return Figure1Result(
        bitwidths=tuple(bitwidths),
        analytic_series=analytic,
        measured_modsram=measured,
    )
