"""Plain-text table rendering used by every experiment reproduction.

The benchmarks print the same rows/series the paper reports; a small ASCII
renderer keeps that output readable without pulling in plotting libraries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_value", "render_table"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats compactly, large integers with separators."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row([str(header) for header in headers]))
    lines.append(separator)
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)
