"""Chip scale-out: throughput of an N-macro ModSRAM chip on real workloads.

The paper evaluates one macro; every workload-scale question the roadmap
cares about (full ECDSA signing, large NTTs, MSM batches) needs *many*
macros.  This exhibit dispatches a workload's multiplication stream
(:mod:`repro.ecc.streams`, :mod:`repro.zkp.streams`) across chips of
increasing macro count with the LUT-reuse-aware scheduler
(:mod:`repro.modsram.chip`) and reports, per macro count: makespan,
latency, throughput, LUT-reuse rate, speedup over one macro and parallel
efficiency.

Registered as experiment ``chip-scaling`` in :mod:`repro.experiments`, so
it runs through the cached/parallel Runner, appears in ``repro report``,
and is reachable as ``repro experiment run chip-scaling`` or the
``repro chip`` shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.errors import ConfigurationError
from repro.modsram.chip import ChipScheduler, MultiplicationJob
from repro.modsram.config import ModSRAMConfig

__all__ = [
    "ChipScalingPoint",
    "ChipScalingResult",
    "reproduce_chip_scaling",
    "CHIP_WORKLOADS",
]

#: Workload stream generators by name; each maps the experiment parameters
#: to an iterable of MultiplicationJobs.
CHIP_WORKLOADS: Tuple[str, ...] = ("ecdsa-sign", "scalar-mult", "ntt", "msm")


def _workload_stream(
    workload: str,
    scalar_bits: int,
    signatures: int,
    vector_size: int,
    msm_points: int,
) -> Iterable[MultiplicationJob]:
    from repro.ecc.streams import ecdsa_sign_stream, scalar_multiplication_stream
    from repro.zkp.streams import msm_stream, ntt_stream

    if workload == "ecdsa-sign":
        return ecdsa_sign_stream(scalar_bits, signatures=signatures)
    if workload == "scalar-mult":
        return scalar_multiplication_stream(scalar_bits)
    if workload == "ntt":
        return ntt_stream(vector_size)
    if workload == "msm":
        return msm_stream(msm_points, scalar_bits=scalar_bits)
    raise ConfigurationError(
        f"unknown workload {workload!r}; available: {list(CHIP_WORKLOADS)}"
    )


@dataclass(frozen=True)
class ChipScalingPoint:
    """One (workload, macro count) operating point."""

    macros: int
    jobs: int
    makespan_cycles: int
    lut_reuse_rate: float
    utilization: float
    latency_ms: float
    throughput_mops: float
    speedup: float
    efficiency: float

    def as_row(self) -> List[object]:
        """One row of the scaling table."""
        return [
            self.macros,
            self.jobs,
            self.makespan_cycles,
            round(self.lut_reuse_rate, 3),
            round(self.utilization, 3),
            round(self.latency_ms, 4),
            round(self.throughput_mops, 3),
            round(self.speedup, 2),
            round(self.efficiency, 3),
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation."""
        return {
            "macros": self.macros,
            "jobs": self.jobs,
            "makespan_cycles": self.makespan_cycles,
            "lut_reuse_rate": self.lut_reuse_rate,
            "utilization": self.utilization,
            "latency_ms": self.latency_ms,
            "throughput_mops": self.throughput_mops,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChipScalingPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        return cls(
            macros=int(data["macros"]),
            jobs=int(data["jobs"]),
            makespan_cycles=int(data["makespan_cycles"]),
            lut_reuse_rate=float(data["lut_reuse_rate"]),
            utilization=float(data["utilization"]),
            latency_ms=float(data["latency_ms"]),
            throughput_mops=float(data["throughput_mops"]),
            speedup=float(data["speedup"]),
            efficiency=float(data["efficiency"]),
        )


@dataclass(frozen=True)
class ChipScalingResult:
    """The chip-scaling exhibit: one workload across macro counts."""

    workload: str
    bitwidth: int
    workload_parameter: str
    points: Tuple[ChipScalingPoint, ...]

    def render(self) -> str:
        """Text table: throughput and efficiency versus macro count."""
        return render_table(
            (
                "macros",
                "jobs",
                "makespan (cyc)",
                "LUT reuse",
                "utilization",
                "latency (ms)",
                "Mmul/s",
                "speedup",
                "efficiency",
            ),
            [point.as_row() for point in self.points],
            title=(
                f"Chip scale-out on {self.workload} "
                f"({self.workload_parameter}, {self.bitwidth}-bit operands)"
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "bitwidth": self.bitwidth,
            "workload_parameter": self.workload_parameter,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChipScalingResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            workload=str(data["workload"]),
            bitwidth=int(data["bitwidth"]),
            workload_parameter=str(data["workload_parameter"]),
            points=tuple(
                ChipScalingPoint.from_dict(point) for point in data["points"]
            ),
        )


def reproduce_chip_scaling(
    workload: str = "ecdsa-sign",
    macro_counts: Sequence[int] = (1, 2, 4, 8, 16),
    bitwidth: int = 256,
    scalar_bits: int = 256,
    signatures: int = 1,
    vector_size: int = 4096,
    msm_points: int = 128,
) -> ChipScalingResult:
    """Scale one workload across chips of increasing macro count.

    The multiplication stream is regenerated per macro count (streams are
    one-shot iterables) and dispatched by the LUT-reuse-aware chip
    scheduler on the paper's macro configuration at ``bitwidth``.
    """
    if not macro_counts:
        raise ConfigurationError("macro_counts must not be empty")
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)
    parameter = {
        "ecdsa-sign": f"{signatures} signature(s), {scalar_bits}-bit scalars",
        "scalar-mult": f"{scalar_bits}-bit scalar",
        "ntt": f"2^{max(vector_size.bit_length() - 1, 0)} points",
        "msm": f"{msm_points} points, {scalar_bits}-bit scalars",
    }.get(workload, "")

    def run_at(macros: int):
        scheduler = ChipScheduler(int(macros), config)
        return scheduler.schedule(
            _workload_stream(
                workload, scalar_bits, signatures, vector_size, msm_points
            ),
            operation=workload,
        )

    schedules = {int(macros): run_at(int(macros)) for macros in macro_counts}
    baseline_makespan = (
        schedules[1].makespan_cycles if 1 in schedules else run_at(1).makespan_cycles
    )
    points: List[ChipScalingPoint] = []
    for macros in macro_counts:
        schedule = schedules[int(macros)]
        speedup = (
            baseline_makespan / schedule.makespan_cycles
            if schedule.makespan_cycles
            else 0.0
        )
        points.append(
            ChipScalingPoint(
                macros=schedule.macros,
                jobs=schedule.jobs,
                makespan_cycles=schedule.makespan_cycles,
                lut_reuse_rate=schedule.lut_reuse_rate,
                utilization=schedule.utilization,
                latency_ms=schedule.latency_ms,
                throughput_mops=schedule.throughput_mops,
                speedup=speedup,
                efficiency=speedup / schedule.macros if schedule.macros else 0.0,
            )
        )
    return ChipScalingResult(
        workload=workload,
        bitwidth=bitwidth,
        workload_parameter=parameter,
        points=tuple(points),
    )
