"""Figure 6: data organisation / memory utilisation comparison.

Figure 6 contrasts how three SRAM PIM designs lay out one 256-bit modular
multiplication: MeNTT stores every operand bit-serially along bitlines (the
row requirement explodes with bitwidth), BP-NTT holds a small bit-parallel
working set plus near-memory routing/scratchpad, and ModSRAM keeps three
operand rows, two intermediate rows and thirteen reusable LUT rows inside a
64-row array.  The reproduction computes each design's row requirement at a
given bitwidth from the row models and reports ModSRAM's region breakdown.

Registered as experiment ``figure6`` in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.baselines import get_design
from repro.modsram.config import PAPER_CONFIG, ModSRAMConfig
from repro.modsram.memory_map import MemoryMap, MemoryUtilization

__all__ = ["Figure6Result", "reproduce_figure6"]


@dataclass(frozen=True)
class Figure6Result:
    """Row requirements per design plus ModSRAM's region breakdown."""

    bitwidth: int
    rows_by_design: Dict[str, Optional[int]]
    modsram_utilization: MemoryUtilization
    modsram_array_rows: int

    def rows(self) -> List[List[object]]:
        """One table row per design."""
        table = []
        for key in ("mentt", "bpntt", "modsram"):
            design = get_design(key)
            table.append(
                [
                    design.label,
                    design.cell_type,
                    self.rows_by_design[key],
                    design.notes.split(";")[0] if design.notes else "",
                ]
            )
        return table

    def render(self) -> str:
        """The figure's data as text."""
        util = self.modsram_utilization
        table = render_table(
            ("design", "cell", f"rows needed @ {self.bitwidth}b", "organisation"),
            self.rows(),
            title="Figure 6: rows required for one modular multiplication",
        )
        breakdown = (
            f"ModSRAM {self.modsram_array_rows}-row array usage: "
            f"{util.operand_rows_used} operand rows in use "
            f"(capacity {util.operand_capacity}), "
            f"{util.intermediate_rows} intermediate rows (sum/carry), "
            f"{util.lut_rows} LUT rows (radix-4 + overflow), "
            f"{util.free_rows} rows free for further operands"
        )
        return f"{table}\n{breakdown}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        util = self.modsram_utilization
        return {
            "bitwidth": self.bitwidth,
            "rows_by_design": dict(self.rows_by_design),
            "modsram_utilization": {
                "total_rows": util.total_rows,
                "operand_rows_used": util.operand_rows_used,
                "operand_capacity": util.operand_capacity,
                "intermediate_rows": util.intermediate_rows,
                "lut_rows": util.lut_rows,
            },
            "modsram_array_rows": self.modsram_array_rows,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Figure6Result":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        util = data["modsram_utilization"]
        return cls(
            bitwidth=int(data["bitwidth"]),
            rows_by_design={
                key: (None if value is None else int(value))
                for key, value in data["rows_by_design"].items()
            },
            modsram_utilization=MemoryUtilization(
                total_rows=int(util["total_rows"]),
                operand_rows_used=int(util["operand_rows_used"]),
                operand_capacity=int(util["operand_capacity"]),
                intermediate_rows=int(util["intermediate_rows"]),
                lut_rows=int(util["lut_rows"]),
            ),
            modsram_array_rows=int(data["modsram_array_rows"]),
        )


def reproduce_figure6(
    bitwidth: int = 256, config: Optional[ModSRAMConfig] = None
) -> Figure6Result:
    """Reproduce the memory-utilisation comparison at ``bitwidth`` bits."""
    config = config or PAPER_CONFIG
    memory_map = MemoryMap(config)
    rows_by_design = {
        key: get_design(key).rows_required(bitwidth)
        for key in ("mentt", "bpntt", "modsram")
    }
    return Figure6Result(
        bitwidth=bitwidth,
        rows_by_design=rows_by_design,
        modsram_utilization=memory_map.utilization(),
        modsram_array_rows=config.rows,
    )
