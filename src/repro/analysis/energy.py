"""Energy analysis of one modular multiplication (beyond the paper).

The paper reports cycles, frequency and area but no energy figures.  A PIM
library is routinely asked "and how many picojoules per multiplication?", so
this module runs the cycle-accurate model, feeds its access statistics into
the calibrated 65 nm energy model and reports the per-multiplication energy
with its mechanism breakdown (precharge, word lines, sensing, write-back,
near-memory registers), plus how the figure scales with operand width.

Because the paper publishes no reference value, EXPERIMENTS.md lists this as
a beyond-the-paper analysis; the constants live in
:class:`repro.sram.energy.EnergyModel` and are user-recalibratable.

Registered as experiment ``energy`` in :mod:`repro.experiments`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG
from repro.sram.energy import EnergyBreakdown

__all__ = [
    "EnergyAnalysisResult",
    "EnergyResult",
    "measure_energy_per_multiplication",
    "reproduce_energy",
    "reproduce_energy_analysis",
]


@dataclass(frozen=True)
class EnergyResult:
    """Energy of one multiplication at one design point."""

    bitwidth: int
    iteration_cycles: int
    breakdown: EnergyBreakdown
    energy_per_multiplication_pj: float
    energy_per_bit_pj: float

    def as_row(self) -> List[object]:
        """One table row for the bitwidth sweep."""
        return [
            self.bitwidth,
            self.iteration_cycles,
            round(self.energy_per_multiplication_pj, 1),
            round(self.energy_per_bit_pj, 2),
            round(self.breakdown.sensing_pj, 1),
            round(self.breakdown.write_pj, 1),
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "bitwidth": self.bitwidth,
            "iteration_cycles": self.iteration_cycles,
            "breakdown": {
                "precharge_pj": self.breakdown.precharge_pj,
                "wordline_pj": self.breakdown.wordline_pj,
                "sensing_pj": self.breakdown.sensing_pj,
                "write_pj": self.breakdown.write_pj,
                "near_memory_pj": self.breakdown.near_memory_pj,
            },
            "energy_per_multiplication_pj": self.energy_per_multiplication_pj,
            "energy_per_bit_pj": self.energy_per_bit_pj,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EnergyResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        breakdown = data["breakdown"]
        return cls(
            bitwidth=int(data["bitwidth"]),
            iteration_cycles=int(data["iteration_cycles"]),
            breakdown=EnergyBreakdown(
                precharge_pj=float(breakdown["precharge_pj"]),
                wordline_pj=float(breakdown["wordline_pj"]),
                sensing_pj=float(breakdown["sensing_pj"]),
                write_pj=float(breakdown["write_pj"]),
                near_memory_pj=float(breakdown["near_memory_pj"]),
            ),
            energy_per_multiplication_pj=float(data["energy_per_multiplication_pj"]),
            energy_per_bit_pj=float(data["energy_per_bit_pj"]),
        )


@dataclass(frozen=True)
class EnergyAnalysisResult:
    """The energy bitwidth sweep as one structured, renderable result."""

    results: Tuple[EnergyResult, ...]

    def render(self) -> str:
        """The sweep as the same text table the legacy API printed."""
        return render_table(
            (
                "bitwidth",
                "cycles",
                "energy/mul (pJ)",
                "energy/bit (pJ)",
                "sensing (pJ)",
                "write-back (pJ)",
            ),
            [result.as_row() for result in self.results],
            title="Energy per modular multiplication (modelled, beyond the paper)",
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {"results": [result.to_dict() for result in self.results]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EnergyAnalysisResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            results=tuple(EnergyResult.from_dict(entry) for entry in data["results"])
        )


def measure_energy_per_multiplication(
    bitwidth: int = 256,
    config: Optional[ModSRAMConfig] = None,
    seed: int = 1,
) -> EnergyResult:
    """Run one multiplication and return its modelled energy."""
    if config is None:
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)
    accelerator = ModSRAMAccelerator(config)
    rng = random.Random(seed)
    if bitwidth == 256:
        modulus = CURVE_SPECS["bn254"].field_modulus
    else:
        modulus = ((1 << bitwidth) - rng.randrange(3, 1 << max(2, bitwidth // 8))) | 1
    a = rng.randrange(modulus) >> 1
    b = rng.randrange(modulus)
    result = accelerator.multiply(a, b, modulus)
    assert result.product == (a * b) % modulus

    breakdown = accelerator.energy_report()
    per_multiplication = breakdown.total_pj
    return EnergyResult(
        bitwidth=bitwidth,
        iteration_cycles=result.report.iteration_cycles,
        breakdown=breakdown,
        energy_per_multiplication_pj=per_multiplication,
        energy_per_bit_pj=per_multiplication / bitwidth,
    )


def reproduce_energy(
    bitwidths: Sequence[int] = (64, 128, 256),
) -> EnergyAnalysisResult:
    """Energy sweep across operand widths as one structured result.

    This is the entry point the ``energy`` experiment wraps; the legacy
    :func:`reproduce_energy_analysis` tuple API delegates to it.
    """
    return EnergyAnalysisResult(
        results=tuple(
            measure_energy_per_multiplication(bitwidth) for bitwidth in bitwidths
        )
    )


def reproduce_energy_analysis(
    bitwidths: Sequence[int] = (64, 128, 256),
) -> Tuple[List[EnergyResult], str]:
    """Energy sweep across operand widths; returns the results and a table."""
    analysis = reproduce_energy(bitwidths)
    return list(analysis.results), analysis.render()
