"""Energy analysis of one modular multiplication (beyond the paper).

The paper reports cycles, frequency and area but no energy figures.  A PIM
library is routinely asked "and how many picojoules per multiplication?", so
this module runs the cycle-accurate model, feeds its access statistics into
the calibrated 65 nm energy model and reports the per-multiplication energy
with its mechanism breakdown (precharge, word lines, sensing, write-back,
near-memory registers), plus how the figure scales with operand width.

Because the paper publishes no reference value, EXPERIMENTS.md lists this as
a beyond-the-paper analysis; the constants live in
:class:`repro.sram.energy.EnergyModel` and are user-recalibratable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG
from repro.sram.energy import EnergyBreakdown

__all__ = ["EnergyResult", "measure_energy_per_multiplication", "reproduce_energy_analysis"]


@dataclass(frozen=True)
class EnergyResult:
    """Energy of one multiplication at one design point."""

    bitwidth: int
    iteration_cycles: int
    breakdown: EnergyBreakdown
    energy_per_multiplication_pj: float
    energy_per_bit_pj: float

    def as_row(self) -> List[object]:
        """One table row for the bitwidth sweep."""
        return [
            self.bitwidth,
            self.iteration_cycles,
            round(self.energy_per_multiplication_pj, 1),
            round(self.energy_per_bit_pj, 2),
            round(self.breakdown.sensing_pj, 1),
            round(self.breakdown.write_pj, 1),
        ]


def measure_energy_per_multiplication(
    bitwidth: int = 256,
    config: Optional[ModSRAMConfig] = None,
    seed: int = 1,
) -> EnergyResult:
    """Run one multiplication and return its modelled energy."""
    if config is None:
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)
    accelerator = ModSRAMAccelerator(config)
    rng = random.Random(seed)
    if bitwidth == 256:
        modulus = CURVE_SPECS["bn254"].field_modulus
    else:
        modulus = ((1 << bitwidth) - rng.randrange(3, 1 << max(2, bitwidth // 8))) | 1
    a = rng.randrange(modulus) >> 1
    b = rng.randrange(modulus)
    result = accelerator.multiply(a, b, modulus)
    assert result.product == (a * b) % modulus

    breakdown = accelerator.energy_report()
    per_multiplication = breakdown.total_pj
    return EnergyResult(
        bitwidth=bitwidth,
        iteration_cycles=result.report.iteration_cycles,
        breakdown=breakdown,
        energy_per_multiplication_pj=per_multiplication,
        energy_per_bit_pj=per_multiplication / bitwidth,
    )


def reproduce_energy_analysis(
    bitwidths: Sequence[int] = (64, 128, 256),
) -> Tuple[List[EnergyResult], str]:
    """Energy sweep across operand widths; returns the results and a table."""
    results = [measure_energy_per_multiplication(bitwidth) for bitwidth in bitwidths]
    table = render_table(
        (
            "bitwidth",
            "cycles",
            "energy/mul (pJ)",
            "energy/bit (pJ)",
            "sensing (pJ)",
            "write-back (pJ)",
        ),
        [result.as_row() for result in results],
        title="Energy per modular multiplication (modelled, beyond the paper)",
    )
    return results, table
