"""Serving throughput: the async layer under multi-tenant traffic.

Beyond-the-paper exhibit for the roadmap's online story: drive the
:mod:`repro.service` server with the built-in self-test traffic mix
(``tenants`` concurrent clients, operand batches plus product-tree
workload graphs, every product verified against the big-int reference)
and report throughput, latency percentiles, batching efficiency and
context-cache behaviour.

Registered as experiment ``serving-throughput`` in
:mod:`repro.experiments`, and reachable as ``repro experiment run
serving-throughput`` or the ``repro serve --self-test`` shortcut.  The
wall-clock figures are machine-dependent (they measure *this* host's
event loop and python arithmetic); the structural figures — requests
verified, batches formed, coalescing factor, cache hit rate — are
deterministic for a given parameterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.tables import render_table

__all__ = ["ServingThroughputResult", "reproduce_serving_throughput"]


@dataclass(frozen=True)
class ServingThroughputResult:
    """One traffic run of the async serving layer."""

    backend: str
    tenants: int
    requests_per_tenant: int
    pairs_per_request: int
    #: Pool worker processes executing the batches (0 = inline).
    workers: int
    completed_requests: int
    verified_requests: int
    rejected_requests: int
    deadline_misses: int
    completed_multiplications: int
    batches: int
    mean_batch_size: float
    elapsed_seconds: float
    requests_per_second: float
    multiplications_per_second: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float

    @property
    def coalescing_factor(self) -> float:
        """Requests folded into each engine batch call (>1 = batching won)."""
        if not self.batches:
            return 0.0
        return self.completed_requests / self.batches

    def render(self) -> str:
        """Text table of the serving run."""
        rows = [
            ("executor",
             "inline (event loop)" if not self.workers
             else f"pool, {self.workers} worker processes"),
            ("completed / verified requests",
             f"{self.completed_requests} / {self.verified_requests}"),
            ("rejected (admission)", self.rejected_requests),
            ("deadline misses", self.deadline_misses),
            ("modular multiplications", self.completed_multiplications),
            ("engine batches formed", self.batches),
            ("mean batch size (pairs)", round(self.mean_batch_size, 2)),
            ("coalescing factor (req/batch)", round(self.coalescing_factor, 2)),
            ("throughput (requests/s)", round(self.requests_per_second, 1)),
            ("throughput (mul/s)", round(self.multiplications_per_second, 1)),
            ("latency p50 (ms)", round(self.latency_p50_ms, 3)),
            ("latency p95 (ms)", round(self.latency_p95_ms, 3)),
            ("latency p99 (ms)", round(self.latency_p99_ms, 3)),
            ("context-cache hit rate",
             f"{self.cache_hit_rate:.3f} ({self.cache_hits}/{self.cache_hits + self.cache_misses})"),
        ]
        return render_table(
            ("metric", "value"),
            rows,
            title=(
                f"Async serving layer on {self.backend} "
                f"({self.tenants} tenants x {self.requests_per_tenant} "
                f"requests, {self.pairs_per_request} pairs each)"
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "backend": self.backend,
            "tenants": self.tenants,
            "requests_per_tenant": self.requests_per_tenant,
            "pairs_per_request": self.pairs_per_request,
            "workers": self.workers,
            "completed_requests": self.completed_requests,
            "verified_requests": self.verified_requests,
            "rejected_requests": self.rejected_requests,
            "deadline_misses": self.deadline_misses,
            "completed_multiplications": self.completed_multiplications,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "coalescing_factor": self.coalescing_factor,
            "elapsed_seconds": self.elapsed_seconds,
            "requests_per_second": self.requests_per_second,
            "multiplications_per_second": self.multiplications_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServingThroughputResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            backend=str(data["backend"]),
            tenants=int(data["tenants"]),
            requests_per_tenant=int(data["requests_per_tenant"]),
            pairs_per_request=int(data["pairs_per_request"]),
            workers=int(data.get("workers", 0)),
            completed_requests=int(data["completed_requests"]),
            verified_requests=int(data["verified_requests"]),
            rejected_requests=int(data["rejected_requests"]),
            deadline_misses=int(data["deadline_misses"]),
            completed_multiplications=int(data["completed_multiplications"]),
            batches=int(data["batches"]),
            mean_batch_size=float(data["mean_batch_size"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            requests_per_second=float(data["requests_per_second"]),
            multiplications_per_second=float(data["multiplications_per_second"]),
            latency_p50_ms=float(data["latency_p50_ms"]),
            latency_p95_ms=float(data["latency_p95_ms"]),
            latency_p99_ms=float(data["latency_p99_ms"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
            cache_hit_rate=float(data["cache_hit_rate"]),
        )


def reproduce_serving_throughput(
    backend: str = "r4csa-lut",
    curve: str = "bn254",
    tenants: int = 4,
    requests: int = 32,
    pairs_per_request: int = 8,
    graph_every: int = 8,
    graph_leaves: int = 16,
    max_batch: int = 64,
    batch_window_ms: float = 1.0,
    seed: int = 2024,
    workers: int = 0,
) -> ServingThroughputResult:
    """Run the self-test traffic mix and condense its metrics.

    ``workers=N`` shards batch execution across N engine-owning worker
    processes (the :class:`~repro.service.pool.PoolExecutor`); products
    stay bit-identical to inline serving, so only the wall-clock figures
    move.
    """
    from repro.service.selftest import run_self_test

    summary = run_self_test(
        backend=backend,
        curve=curve,
        tenants=int(tenants),
        requests=int(requests),
        pairs_per_request=int(pairs_per_request),
        graph_every=int(graph_every),
        graph_leaves=int(graph_leaves),
        max_batch=int(max_batch),
        batch_window_ms=float(batch_window_ms),
        seed=int(seed),
        workers=int(workers),
    )
    latency = summary["latency"]
    cache = summary["context_cache"]
    return ServingThroughputResult(
        backend=str(summary["backend"]),
        tenants=int(summary["tenants"]),
        requests_per_tenant=int(summary["requests_per_tenant"]),
        pairs_per_request=int(summary["pairs_per_request"]),
        workers=int(summary["workers"]),
        completed_requests=int(summary["completed_requests"]),
        verified_requests=int(summary["verified_requests"]),
        rejected_requests=int(summary["rejected_requests"]),
        deadline_misses=int(summary["deadline_misses"]),
        completed_multiplications=int(summary["completed_multiplications"]),
        batches=int(summary["batches"]),
        mean_batch_size=float(summary["mean_batch_size"]),
        elapsed_seconds=float(summary["elapsed_seconds"]),
        requests_per_second=float(summary["requests_per_second"]),
        multiplications_per_second=float(summary["multiplications_per_second"]),
        latency_p50_ms=float(latency["p50_ms"]),
        latency_p95_ms=float(latency["p95_ms"]),
        latency_p99_ms=float(latency["p99_ms"]),
        cache_hits=int(cache["hits"]),
        cache_misses=int(cache["misses"]),
        cache_hit_rate=float(cache["hit_rate"]),
    )
