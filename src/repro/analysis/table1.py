"""Reproduction of Tables 1a, 1b and 2 (the algorithm's truth table and LUTs).

These are not evaluation results but definitional tables; regenerating them
from the implementation (rather than hard-coding them) is the check that the
encoder and LUT builders match the paper.

Registered as experiment ``table1`` in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import render_table
from repro.core.booth import encoder_truth_table
from repro.core.luts import build_overflow_lut, build_radix4_lut
from repro.ecc.curves_data import CURVE_SPECS

__all__ = ["TableOneResult", "reproduce_tables"]


@dataclass(frozen=True)
class TableOneResult:
    """The three generated tables for a concrete multiplicand/modulus pair."""

    multiplicand: int
    modulus: int
    bitwidth: int
    encoder_rows: List[Tuple[int, int, int, int]]
    radix4_rows: List[Tuple[int, int]]
    overflow_rows: List[Tuple[int, int]]

    def render(self) -> str:
        """All three tables as text."""
        sections = [
            render_table(
                ("a_{i+1}", "a_i", "a_{i-1}", "ENC"),
                self.encoder_rows,
                title="Table 1a: radix-4 Booth encoder",
            ),
            render_table(
                ("ENC", "LUT-radix4 value"),
                [(f"{digit:+d}" if digit else "0", value) for digit, value in self.radix4_rows],
                title=f"Table 1b: radix-4 LUT (B={self.multiplicand:#x})",
            ),
            render_table(
                ("overflow", "LUT-overflow value"),
                self.overflow_rows,
                title="Table 2: carry-overflow LUT",
            ),
        ]
        return "\n\n".join(sections)

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "multiplicand": self.multiplicand,
            "modulus": self.modulus,
            "bitwidth": self.bitwidth,
            "encoder_rows": [list(row) for row in self.encoder_rows],
            "radix4_rows": [list(row) for row in self.radix4_rows],
            "overflow_rows": [list(row) for row in self.overflow_rows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TableOneResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            multiplicand=int(data["multiplicand"]),
            modulus=int(data["modulus"]),
            bitwidth=int(data["bitwidth"]),
            encoder_rows=[tuple(row) for row in data["encoder_rows"]],
            radix4_rows=[tuple(row) for row in data["radix4_rows"]],
            overflow_rows=[tuple(row) for row in data["overflow_rows"]],
        )


def reproduce_tables(
    multiplicand: int | None = None, modulus: int | None = None
) -> TableOneResult:
    """Generate Tables 1a/1b/2 for a multiplicand/modulus pair.

    Defaults to a small multiplicand over the BN254 base field so the values
    are meaningful for the paper's target application.
    """
    if modulus is None:
        modulus = CURVE_SPECS["bn254"].field_modulus
    if multiplicand is None:
        multiplicand = 0x1234567890ABCDEF % modulus
    bitwidth = modulus.bit_length()
    radix4 = build_radix4_lut(multiplicand, modulus)
    overflow = build_overflow_lut(modulus, bitwidth + 1, entry_count=8)
    return TableOneResult(
        multiplicand=multiplicand,
        modulus=modulus,
        bitwidth=bitwidth,
        encoder_rows=encoder_truth_table(),
        radix4_rows=radix4.rows(),
        overflow_rows=overflow.paper_rows(),
    )
