"""Experiment reproductions: one module per table/figure of the paper.

The canonical way to run these is the Experiment API
(:mod:`repro.experiments`): every entry point below is registered as a
named experiment — ``table1``, ``figure1``, ``figure5``, ``figure6``,
``figure7``, ``table3``, ``headline``, ``energy``, ``design-point`` — so it
can be parameterised, swept over a grid, executed across a process pool
and cached to disk as structured JSON::

    from repro.experiments import Runner

    runner = Runner(parallel=True)
    print(runner.run("table3", quick=True).render())
    sweep = runner.sweep("design-point", {"bitwidth": [64, 128, 256]})

or, from the shell, ``repro experiment run table3 --json`` and
``repro report --parallel``.  The ``reproduce_*`` functions remain the
thin, direct entry points the experiments wrap: calling them yields the
same result objects (now JSON round-trippable via ``to_dict`` /
``from_dict``) without caching or parallelism.
"""

from repro.analysis.chip_scaling import (
    ChipScalingPoint,
    ChipScalingResult,
    reproduce_chip_scaling,
)
from repro.analysis.design_point import DesignPointResult, reproduce_design_point
from repro.analysis.energy import (
    EnergyAnalysisResult,
    EnergyResult,
    measure_energy_per_multiplication,
    reproduce_energy,
    reproduce_energy_analysis,
)
from repro.analysis.figure1 import Figure1Result, measure_modsram_cycles, reproduce_figure1
from repro.analysis.figure5 import Figure5Result, reproduce_figure5
from repro.analysis.figure6 import Figure6Result, reproduce_figure6
from repro.analysis.figure7 import (
    Figure7Result,
    measure_msm_counts,
    measure_ntt_counts,
    reproduce_figure7,
)
from repro.analysis.headline import HeadlineClaim, HeadlineResult, reproduce_headline_claims
from repro.analysis.report import REPORT_EXPERIMENTS, build_report
from repro.analysis.table1 import TableOneResult, reproduce_tables
from repro.analysis.table3 import DESIGN_ORDER, Table3Result, reproduce_table3
from repro.analysis.tables import format_value, render_table

__all__ = [
    "ChipScalingPoint",
    "ChipScalingResult",
    "DESIGN_ORDER",
    "DesignPointResult",
    "EnergyAnalysisResult",
    "EnergyResult",
    "Figure1Result",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "HeadlineClaim",
    "HeadlineResult",
    "REPORT_EXPERIMENTS",
    "Table3Result",
    "TableOneResult",
    "build_report",
    "format_value",
    "measure_energy_per_multiplication",
    "measure_modsram_cycles",
    "measure_msm_counts",
    "measure_ntt_counts",
    "render_table",
    "reproduce_chip_scaling",
    "reproduce_design_point",
    "reproduce_energy",
    "reproduce_energy_analysis",
    "reproduce_figure1",
    "reproduce_figure5",
    "reproduce_figure6",
    "reproduce_figure7",
    "reproduce_headline_claims",
    "reproduce_table3",
    "reproduce_tables",
]
