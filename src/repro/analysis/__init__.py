"""Experiment reproductions: one module per table/figure of the paper."""

from repro.analysis.energy import (
    EnergyResult,
    measure_energy_per_multiplication,
    reproduce_energy_analysis,
)
from repro.analysis.figure1 import Figure1Result, measure_modsram_cycles, reproduce_figure1
from repro.analysis.figure5 import Figure5Result, reproduce_figure5
from repro.analysis.figure6 import Figure6Result, reproduce_figure6
from repro.analysis.figure7 import (
    Figure7Result,
    measure_msm_counts,
    measure_ntt_counts,
    reproduce_figure7,
)
from repro.analysis.headline import HeadlineClaim, HeadlineResult, reproduce_headline_claims
from repro.analysis.report import build_report
from repro.analysis.table1 import TableOneResult, reproduce_tables
from repro.analysis.table3 import DESIGN_ORDER, Table3Result, reproduce_table3
from repro.analysis.tables import format_value, render_table

__all__ = [
    "DESIGN_ORDER",
    "EnergyResult",
    "Figure1Result",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "HeadlineClaim",
    "HeadlineResult",
    "Table3Result",
    "TableOneResult",
    "build_report",
    "format_value",
    "measure_energy_per_multiplication",
    "measure_modsram_cycles",
    "measure_msm_counts",
    "measure_ntt_counts",
    "render_table",
    "reproduce_energy_analysis",
    "reproduce_figure1",
    "reproduce_figure5",
    "reproduce_figure6",
    "reproduce_figure7",
    "reproduce_headline_claims",
    "reproduce_table3",
    "reproduce_tables",
]
