"""Run every experiment reproduction and print one consolidated report.

Usage::

    python -m repro.analysis.report            # full report (runs the
                                               # cycle-accurate sweeps)
    python -m repro.analysis.report --quick    # skip the cycle-accurate runs
"""

from __future__ import annotations

import argparse
from typing import List

from repro.analysis.figure1 import reproduce_figure1
from repro.analysis.figure5 import reproduce_figure5
from repro.analysis.figure6 import reproduce_figure6
from repro.analysis.figure7 import reproduce_figure7
from repro.analysis.headline import reproduce_headline_claims
from repro.analysis.table1 import reproduce_tables
from repro.analysis.table3 import reproduce_table3

__all__ = ["build_report", "main"]


def build_report(quick: bool = False) -> str:
    """Produce the full text report covering every table and figure."""
    sections: List[str] = []
    sections.append(reproduce_tables().render())
    sections.append(reproduce_figure1(measure=not quick).render())
    sections.append(reproduce_figure5().render())
    sections.append(reproduce_figure6().render())
    sections.append(reproduce_figure7().render())
    sections.append(reproduce_table3(measure=not quick).render())
    sections.append(reproduce_headline_claims(measure=not quick).render())
    divider = "\n\n" + "=" * 78 + "\n\n"
    return divider.join(sections)


def main(argv: List[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the ModSRAM paper."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the cycle-accurate accelerator runs (analytic models only)",
    )
    arguments = parser.parse_args(argv)
    print(build_report(quick=arguments.quick))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
