"""Run every experiment reproduction and print one consolidated report.

The report is composed from the Experiment API
(:mod:`repro.experiments`): each section is one registered experiment, so
the sections can execute in parallel across a process pool and reuse the
runner's content-hash disk cache.  The rendered text is byte-identical to
the legacy serial path regardless of those flags.

Usage::

    python -m repro.analysis.report              # full report (runs the
                                                 # cycle-accurate sweeps)
    python -m repro.analysis.report --quick      # skip cycle-accurate runs
    python -m repro.analysis.report --parallel   # sections across a pool
    python -m repro.analysis.report --no-cache   # force recomputation
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.registry import REPORT_EXPERIMENTS
from repro.experiments.runner import Runner
from repro.experiments.spec import ExperimentSpec

__all__ = ["REPORT_EXPERIMENTS", "build_report", "main"]

#: Separator between report sections.
REPORT_DIVIDER = "\n\n" + "=" * 78 + "\n\n"


def build_report(
    quick: bool = False,
    parallel: bool = False,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    runner: Optional[Runner] = None,
) -> str:
    """Produce the full text report covering every table and figure.

    ``parallel`` runs the report's experiments across a process pool and
    ``use_cache`` reuses/populates the experiment disk cache; both leave
    the rendered text byte-identical to the serial, uncached path.  Pass
    either a configured ``runner`` or the individual flags, not both.
    """
    if runner is None:
        runner = Runner(parallel=parallel, use_cache=use_cache, cache_dir=cache_dir)
    elif parallel or use_cache or cache_dir is not None:
        raise ConfigurationError(
            "pass either runner= or the parallel/use_cache/cache_dir flags, "
            "not both (the flags would be silently ignored)"
        )
    specs = [ExperimentSpec(name) for name in REPORT_EXPERIMENTS]
    results = runner.run_specs(specs, quick=quick)
    return REPORT_DIVIDER.join(result.render() for result in results)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the ModSRAM paper."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the cycle-accurate accelerator runs (analytic models only)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run the report sections across a process pool",
    )
    parser.add_argument(
        "--no-cache",
        dest="no_cache",
        action="store_true",
        help="do not read or write the experiment result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="experiment cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    arguments = parser.parse_args(argv)
    print(
        build_report(
            quick=arguments.quick,
            parallel=arguments.parallel,
            use_cache=not arguments.no_cache,
            cache_dir=arguments.cache_dir,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
