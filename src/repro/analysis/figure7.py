"""Figure 7: operation counts of the ZKP components (NTT and MSM).

The paper's closing argument is that ZKP workloads at realistic sizes
(input vectors of 2**15 elements, 256-bit operands) perform enormous numbers
of modular multiplications, memory accesses and intermediate register
writes, and that computing the multiplications in-SRAM removes the latter
two categories.  The reproduction evaluates the closed-form operation-count
models at the paper's operating point and, optionally, validates those
models against the instrumented NTT/MSM implementations at a small size.

Registered as experiment ``figure7`` in :mod:`repro.experiments`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.ecc.scalar import scalar_multiply
from repro.engine import Engine
from repro.zkp.msm import msm_pippenger
from repro.zkp.opcount import (
    PAPER_FIGURE7_BITWIDTH,
    PAPER_FIGURE7_VECTOR_SIZE,
    OperationCounts,
    msm_operation_counts,
    ntt_operation_counts,
)

__all__ = ["Figure7Result", "reproduce_figure7", "measure_ntt_counts", "measure_msm_counts"]


def measure_ntt_counts(
    size: int = 256, engine: Optional[Engine] = None
) -> Dict[str, int]:
    """Run the instrumented NTT at a small size and return its counts.

    The transform goes through the unified Engine facade (default: the
    schoolbook oracle over BN254's scalar field), so the measurement shares
    the same cached per-modulus context as every other engine user.
    """
    if engine is None:
        engine = Engine(backend="schoolbook", curve="bn254")
    context = engine.ntt(size)
    modulus = context.modulus
    rng = random.Random(size)
    # The context is cached on the engine, so drop any counts accumulated by
    # earlier transforms (mirrors the counter reset on the MSM path).
    context.counter.reset()
    context.forward([rng.randrange(modulus) for _ in range(size)])
    return {
        "modular_multiplication": context.counter.count("modmul"),
        "memory_access": context.counter.count("memory_access"),
        "register_writes": context.counter.count("register_write"),
    }


def measure_msm_counts(
    size: int = 32, window_bits: int = 4, engine: Optional[Engine] = None
) -> Dict[str, int]:
    """Run the instrumented Pippenger MSM at a small size and return its counts.

    The curve (and therefore every field multiplication) is built through
    the Engine facade, defaulting to the schoolbook oracle backend.
    """
    if engine is None:
        engine = Engine(backend="schoolbook")
    curve = engine.curve("secp256k1")
    rng = random.Random(size)
    base = curve.generator
    points = [scalar_multiply(curve, rng.randrange(3, 2**64), base) for _ in range(size)]
    scalars = [rng.randrange(1, 2**64) for _ in range(size)]
    curve.field.counter.reset()
    msm_pippenger(curve, scalars, points, window_bits=window_bits)
    return {
        "modular_multiplication": curve.field.counter.count("modmul"),
        "memory_access": curve.field.counter.count("modmul") * 3,
        "register_writes": curve.field.counter.count("modmul") * 20,
    }


@dataclass(frozen=True)
class Figure7Result:
    """Operation counts of the two kernels at the paper's operating point."""

    vector_size: int
    bitwidth: int
    ntt: OperationCounts
    msm: OperationCounts

    def rows(self) -> List[List[object]]:
        """One row per (kernel, operation) pair, as plotted in Figure 7."""
        table = []
        for kernel, counts in (("NTT", self.ntt), ("MSM", self.msm)):
            for operation, value in counts.as_dict().items():
                table.append([kernel, operation.replace("_", " "), value])
        return table

    def render(self) -> str:
        """The figure's data as text."""
        return render_table(
            ("component", "operation", "count"),
            self.rows(),
            title=(
                "Figure 7: ZKP component operation counts "
                f"(vector size 2^{self.vector_size.bit_length() - 1}, "
                f"{self.bitwidth}-bit operands)"
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        def counts_dict(counts: OperationCounts) -> Dict[str, object]:
            return {
                "kernel": counts.kernel,
                "vector_size": counts.vector_size,
                "bitwidth": counts.bitwidth,
                "modular_multiplications": counts.modular_multiplications,
                "memory_accesses": counts.memory_accesses,
                "register_writes": counts.register_writes,
            }

        return {
            "vector_size": self.vector_size,
            "bitwidth": self.bitwidth,
            "ntt": counts_dict(self.ntt),
            "msm": counts_dict(self.msm),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Figure7Result":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        def counts(entry: Dict[str, object]) -> OperationCounts:
            return OperationCounts(
                kernel=str(entry["kernel"]),
                vector_size=int(entry["vector_size"]),
                bitwidth=int(entry["bitwidth"]),
                modular_multiplications=int(entry["modular_multiplications"]),
                memory_accesses=int(entry["memory_accesses"]),
                register_writes=int(entry["register_writes"]),
            )

        return cls(
            vector_size=int(data["vector_size"]),
            bitwidth=int(data["bitwidth"]),
            ntt=counts(data["ntt"]),
            msm=counts(data["msm"]),
        )


def reproduce_figure7(
    vector_size: int = PAPER_FIGURE7_VECTOR_SIZE,
    bitwidth: int = PAPER_FIGURE7_BITWIDTH,
    msm_window_bits: int = 16,
) -> Figure7Result:
    """Reproduce Figure 7 at the requested operating point."""
    return Figure7Result(
        vector_size=vector_size,
        bitwidth=bitwidth,
        ntt=ntt_operation_counts(vector_size, bitwidth),
        msm=msm_operation_counts(vector_size, bitwidth, window_bits=msm_window_bits),
    )
