"""One ModSRAM design point: cycles, latency, area and energy together.

The paper evaluates a single operating point (64 x 256 array, 65 nm,
256-bit operands).  Design-space exploration asks the same four questions —
how many cycles, how fast, how big, how many picojoules — at *other*
points, so this module bundles them into one structured, sweepable result.

Registered as experiment ``design-point`` in :mod:`repro.experiments`;
``Runner().sweep(...)`` over ``bitwidth`` / ``technology_nm`` replaces the
hand-rolled loops ``examples/design_space_exploration.py`` used to carry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.area import AreaModel
from repro.modsram.config import ModSRAMConfig
from repro.modsram.geometry import MacroGeometry

__all__ = ["DesignPointResult", "reproduce_design_point"]


@dataclass(frozen=True)
class DesignPointResult:
    """Cycles / latency / area / energy of one ModSRAM configuration."""

    bitwidth: int
    rows: int
    technology_nm: int
    #: Whether the cycle count came from a cycle-accurate run (vs the schedule).
    measured: bool
    iteration_cycles: int
    frequency_mhz: float
    latency_us: float
    area_mm2: float
    #: Modelled energy of one multiplication; ``None`` without a measured run.
    energy_pj: Optional[float]
    #: Array width in bit lines (defaults to the operand width, as in the
    #: paper's macro sizing).
    columns: int = 0
    #: Independently addressable sub-arrays (1 = the paper's design).
    banks: int = 1

    def as_row(self) -> List[object]:
        """One table row for sweeps over bitwidth or technology."""
        return [
            self.bitwidth,
            f"{self.rows}x{self.columns or self.bitwidth}"
            + (f"/{self.banks}b" if self.banks != 1 else ""),
            f"{self.technology_nm} nm",
            self.iteration_cycles,
            round(self.frequency_mhz, 0),
            round(self.latency_us, 2),
            round(self.area_mm2, 4),
            None if self.energy_pj is None else round(self.energy_pj, 1),
        ]

    def render(self) -> str:
        """The design point as a one-row text table."""
        return render_table(
            (
                "bitwidth",
                "geometry",
                "tech",
                "cycles",
                "freq (MHz)",
                "latency (us)",
                "area (mm^2)",
                "energy/op (pJ)",
            ),
            [self.as_row()],
            title="ModSRAM design point"
            + (" (measured)" if self.measured else " (scheduled)"),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "bitwidth": self.bitwidth,
            "rows": self.rows,
            "columns": self.columns,
            "banks": self.banks,
            "technology_nm": self.technology_nm,
            "measured": self.measured,
            "iteration_cycles": self.iteration_cycles,
            "frequency_mhz": self.frequency_mhz,
            "latency_us": self.latency_us,
            "area_mm2": self.area_mm2,
            "energy_pj": self.energy_pj,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DesignPointResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        energy = data["energy_pj"]
        return cls(
            bitwidth=int(data["bitwidth"]),
            rows=int(data["rows"]),
            columns=int(data.get("columns", 0)),
            banks=int(data.get("banks", 1)),
            technology_nm=int(data["technology_nm"]),
            measured=bool(data["measured"]),
            iteration_cycles=int(data["iteration_cycles"]),
            frequency_mhz=float(data["frequency_mhz"]),
            latency_us=float(data["latency_us"]),
            area_mm2=float(data["area_mm2"]),
            energy_pj=None if energy is None else float(energy),
        )


def build_design_config(
    bitwidth: int = 256,
    rows: Optional[int] = None,
    technology_nm: int = 65,
    columns: Optional[int] = None,
) -> ModSRAMConfig:
    """A paper-schedule configuration at the requested design point."""
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(
        bitwidth, columns=columns
    )
    if rows is not None:
        config = replace(config, rows=rows)
    if technology_nm != config.technology_nm:
        config = replace(
            config,
            technology_nm=technology_nm,
            timing=config.timing.scaled_to(technology_nm),
        )
    return config


def reproduce_design_point(
    bitwidth: int = 256,
    rows: Optional[int] = None,
    technology_nm: int = 65,
    measure: bool = True,
    seed: int = 5,
    columns: Optional[int] = None,
    banks: int = 1,
) -> DesignPointResult:
    """Evaluate one ModSRAM design point.

    ``measure=True`` runs a random multiplication through the cycle-accurate
    model (checked against the oracle) and reports the measured cycles,
    latency and energy; ``measure=False`` uses the scheduled cycle count and
    skips the energy figure.  ``columns``/``banks`` extend the sweepable
    geometry (:class:`~repro.modsram.geometry.MacroGeometry`); banking
    overlaps operand/LUT writes and leaves the main loop — the quantity
    reported here — untouched, so measured runs stay valid at any bank
    count.
    """
    config = build_design_config(
        bitwidth, rows=rows, technology_nm=technology_nm, columns=columns
    )
    geometry = MacroGeometry(
        rows=config.rows, columns=config.columns, banks=banks
    )
    area_mm2 = AreaModel(config).total_mm2()
    if measure:
        rng = random.Random(seed)
        accelerator = ModSRAMAccelerator(config)
        modulus = ((1 << bitwidth) - rng.randrange(3, 1 << 8)) | 1
        a = rng.randrange(modulus) >> 1  # paper schedule: top bit clear
        b = rng.randrange(modulus)
        result = accelerator.multiply(a, b, modulus)
        if result.product != (a * b) % modulus:
            raise AssertionError(
                "cycle-accurate model disagrees with the oracle at design "
                f"point ({bitwidth}b, {config.rows} rows, {technology_nm} nm)"
            )
        cycles = result.report.iteration_cycles
        latency_us = result.report.latency_us
        energy_pj: Optional[float] = accelerator.energy_report().total_pj
    else:
        cycles = config.expected_iteration_cycles
        latency_us = cycles / config.frequency_mhz
        energy_pj = None
    return DesignPointResult(
        bitwidth=bitwidth,
        rows=config.rows,
        columns=geometry.columns,
        banks=geometry.banks,
        technology_nm=technology_nm,
        measured=measure,
        iteration_cycles=cycles,
        frequency_mhz=config.frequency_mhz,
        latency_us=latency_us,
        area_mm2=area_mm2,
        energy_pj=energy_pj,
    )
