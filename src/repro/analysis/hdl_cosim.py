"""HDL co-simulation agreement: event-driven RTL vs the modeled tiers.

The exhibit behind experiment ``hdl-cosim`` (and ``repro hdl cosim``): for
each bitwidth, run the same operand stream through the event-driven RTL
simulator (:class:`~repro.hdl.eventsim.HdlModSRAM`), the cycle-accurate
tier and the analytical tier, and check that products are bit-identical and
the per-phase cycle reports agree field by field.  The paper's design point
(256-bit, ``n/2`` schedule, 767 main-loop cycles) is always included, and
the result records the co-simulation cost — simulator events per second and
the slowdown against the cycle tier — so the price of the machine-checked
cycle model is visible.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.modsram.analytical import AnalyticalModSRAM
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG

__all__ = ["HdlCosimRow", "HdlCosimResult", "reproduce_hdl_cosim"]


@dataclass(frozen=True)
class HdlCosimRow:
    """Agreement + cost figures of one bitwidth's co-simulation run."""

    bitwidth: int
    cases: int
    iterations: int
    iteration_cycles: int
    products_match: bool
    cycles_match: bool
    sim_events: int
    events_per_second: float
    hdl_seconds: float
    cycle_seconds: float

    @property
    def slowdown(self) -> float:
        """Wall-clock cost of the HDL tier relative to the cycle tier."""
        if self.cycle_seconds <= 0.0:
            return float("inf")
        return self.hdl_seconds / self.cycle_seconds

    def as_row(self) -> List[object]:
        """One row of the agreement table."""
        return [
            self.bitwidth,
            self.cases,
            self.iteration_cycles,
            "yes" if self.products_match else "NO",
            "yes" if self.cycles_match else "NO",
            self.sim_events,
            round(self.events_per_second / 1e3, 1),
            round(self.slowdown, 1),
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation."""
        return {
            "bitwidth": self.bitwidth,
            "cases": self.cases,
            "iterations": self.iterations,
            "iteration_cycles": self.iteration_cycles,
            "products_match": self.products_match,
            "cycles_match": self.cycles_match,
            "sim_events": self.sim_events,
            "events_per_second": self.events_per_second,
            "hdl_seconds": self.hdl_seconds,
            "cycle_seconds": self.cycle_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HdlCosimRow":
        """Rebuild a row from :meth:`to_dict` output."""
        return cls(
            bitwidth=int(data["bitwidth"]),
            cases=int(data["cases"]),
            iterations=int(data["iterations"]),
            iteration_cycles=int(data["iteration_cycles"]),
            products_match=bool(data["products_match"]),
            cycles_match=bool(data["cycles_match"]),
            sim_events=int(data["sim_events"]),
            events_per_second=float(data["events_per_second"]),
            hdl_seconds=float(data["hdl_seconds"]),
            cycle_seconds=float(data["cycle_seconds"]),
        )


@dataclass(frozen=True)
class HdlCosimResult:
    """The full cycle-agreement sweep plus the paper-point check."""

    rows: Tuple[HdlCosimRow, ...]
    seed: int
    #: Main-loop cycles measured from the RTL at the paper's design point.
    paper_iteration_cycles: int

    @property
    def all_match(self) -> bool:
        """Whether every bitwidth agreed on products and cycle reports."""
        return all(row.products_match and row.cycles_match for row in self.rows)

    @property
    def paper_point_ok(self) -> bool:
        """Whether the RTL reproduces the paper's 767 main-loop cycles."""
        return self.paper_iteration_cycles == PAPER_CONFIG.expected_iteration_cycles

    def render(self) -> str:
        """Human-readable agreement table."""
        table = render_table(
            (
                "bitwidth",
                "cases",
                "loop cycles",
                "products",
                "cycle report",
                "sim events",
                "kevents/s",
                "slowdown vs cycle tier",
            ),
            [row.as_row() for row in self.rows],
            title="HDL co-simulation vs modeled tiers",
        )
        verdict = "AGREE" if self.all_match else "DISAGREE"
        paper = (
            f"paper point (256b, n/2 schedule): measured "
            f"{self.paper_iteration_cycles} main-loop cycles, expected "
            f"{PAPER_CONFIG.expected_iteration_cycles} -> "
            f"{'ok' if self.paper_point_ok else 'MISMATCH'}"
        )
        return f"{table}\n{paper}\nverdict: {verdict}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "rows": [row.to_dict() for row in self.rows],
            "seed": self.seed,
            "paper_iteration_cycles": self.paper_iteration_cycles,
            "all_match": self.all_match,
            "paper_point_ok": self.paper_point_ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HdlCosimResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            rows=tuple(HdlCosimRow.from_dict(row) for row in data["rows"]),
            seed=int(data["seed"]),
            paper_iteration_cycles=int(data["paper_iteration_cycles"]),
        )


def _modulus_for(bitwidth: int, rng: random.Random) -> int:
    """An odd modulus filling the macro's operand width."""
    modulus = (1 << bitwidth) - rng.randrange(3, 1 << min(bitwidth - 2, 8))
    return modulus | 1


def _operands(
    config: ModSRAMConfig, modulus: int, cases: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """Random pairs plus the degenerate corners, within operand bounds."""
    a_limit = modulus
    if not config.extend_for_full_range:
        a_limit = min(modulus, 1 << (2 * config.iterations - 1))
    pairs = [(0, modulus - 1), (1, 1), (a_limit - 1, modulus - 1)]
    while len(pairs) < cases:
        pairs.append((rng.randrange(a_limit), rng.randrange(modulus)))
    return pairs[: max(cases, 1)]


def reproduce_hdl_cosim(
    bitwidths: Sequence[int] = (16, 32, 64),
    cases: int = 5,
    seed: int = 2024,
) -> HdlCosimResult:
    """Run the co-simulation agreement sweep.

    For every bitwidth the same operands go through the HDL, cycle and
    analytical tiers; products must be bit-identical (and equal to the
    big-integer oracle) and the three cycle reports equal field by field.
    The paper design point is measured unconditionally at the end.
    """
    from repro.hdl.eventsim import HdlModSRAM

    rng = random.Random(seed)
    rows: List[HdlCosimRow] = []
    for bitwidth in bitwidths:
        config = ModSRAMConfig().with_bitwidth(int(bitwidth))
        hdl = HdlModSRAM(config)
        cycle = ModSRAMAccelerator(config)
        analytical = AnalyticalModSRAM(config)
        modulus = _modulus_for(int(bitwidth), rng)
        pairs = _operands(config, modulus, cases, rng)

        events_before = hdl.macro.sim.events
        products_match = True
        cycles_match = True
        loop_cycles = config.expected_iteration_cycles
        hdl_seconds = 0.0
        cycle_seconds = 0.0
        for a, b in pairs:
            began = time.perf_counter()
            hdl_result = hdl.multiply(a, b, modulus)
            hdl_seconds += time.perf_counter() - began
            began = time.perf_counter()
            cycle_result = cycle.multiply(a, b, modulus)
            cycle_seconds += time.perf_counter() - began
            analytical_result = analytical.multiply(a, b, modulus)
            oracle = (a * b) % modulus
            if not (
                hdl_result.product == cycle_result.product == oracle
            ):
                products_match = False
            if not (
                hdl_result.report.as_dict()
                == cycle_result.report.as_dict()
                == analytical_result.report.as_dict()
            ):
                cycles_match = False
            loop_cycles = hdl_result.report.iteration_cycles
        sim_events = hdl.macro.sim.events - events_before
        rows.append(
            HdlCosimRow(
                bitwidth=int(bitwidth),
                cases=len(pairs),
                iterations=config.iterations,
                iteration_cycles=loop_cycles,
                products_match=products_match,
                cycles_match=cycles_match,
                sim_events=sim_events,
                events_per_second=(
                    sim_events / hdl_seconds if hdl_seconds > 0 else 0.0
                ),
                hdl_seconds=hdl_seconds,
                cycle_seconds=cycle_seconds,
            )
        )

    paper = HdlModSRAM(PAPER_CONFIG)
    paper_modulus = _modulus_for(PAPER_CONFIG.bitwidth, rng)
    a = rng.randrange(1 << (2 * PAPER_CONFIG.iterations - 1))
    b = rng.randrange(paper_modulus)
    paper_cycles = paper.multiply(a, b, paper_modulus).report.iteration_cycles
    return HdlCosimResult(
        rows=tuple(rows), seed=seed, paper_iteration_cycles=paper_cycles
    )
