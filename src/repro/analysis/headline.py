"""The paper's §5.3 headline claims, paper value vs reproduced value.

Collected in one place so EXPERIMENTS.md and the headline benchmark can
print a single paper-versus-measured scorecard:

* 767 cycles per 256-bit modular multiplication (3n − 1, O(n) scaling),
* results produced in direct (non-Montgomery) form,
* 420 MHz clock in 65 nm,
* 0.053 mm² macro area, 67/20/11/2 % breakdown, 32 % overhead over SRAM,
* 52 % cycle reduction versus prior work at the same bitwidth.

Registered as experiment ``headline`` in :mod:`repro.experiments` (the
``repro experiment run headline --json --quick`` CI smoke check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.analysis.table3 import reproduce_table3
from repro.ecc.curves_data import CURVE_SPECS
from repro.engine import Engine, ModSRAMBackend
from repro.modsram.area import AreaModel, PAPER_AREA_MM2, PAPER_AREA_OVERHEAD_PERCENT
from repro.modsram.config import PAPER_CONFIG

__all__ = ["HeadlineClaim", "HeadlineResult", "reproduce_headline_claims"]


@dataclass(frozen=True)
class HeadlineClaim:
    """One paper claim with its reproduced counterpart."""

    claim: str
    paper_value: str
    reproduced_value: str
    holds: bool


@dataclass(frozen=True)
class HeadlineResult:
    """Every headline claim."""

    claims: List[HeadlineClaim]

    def all_hold(self) -> bool:
        """Whether every claim is reproduced within its tolerance."""
        return all(claim.holds for claim in self.claims)

    def render(self) -> str:
        """Scorecard as a text table."""
        return render_table(
            ("claim", "paper", "reproduced", "holds"),
            [
                (claim.claim, claim.paper_value, claim.reproduced_value, claim.holds)
                for claim in self.claims
            ],
            title="Headline claims (paper vs reproduction)",
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "claims": [
                {
                    "claim": claim.claim,
                    "paper_value": claim.paper_value,
                    "reproduced_value": claim.reproduced_value,
                    "holds": claim.holds,
                }
                for claim in self.claims
            ]
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HeadlineResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        return cls(
            claims=[
                HeadlineClaim(
                    claim=str(entry["claim"]),
                    paper_value=str(entry["paper_value"]),
                    reproduced_value=str(entry["reproduced_value"]),
                    holds=bool(entry["holds"]),
                )
                for entry in data["claims"]
            ]
        )


def reproduce_headline_claims(measure: bool = True) -> HeadlineResult:
    """Evaluate every headline claim.

    ``measure=True`` runs one real 256-bit multiplication through the
    cycle-accurate model for the cycle claim; otherwise the scheduled count
    is used.
    """
    claims: List[HeadlineClaim] = []

    # --- cycles -------------------------------------------------------- #
    if measure:
        # One real 256-bit multiplication through the Engine facade on the
        # cycle-accurate backend, paper configuration.
        modulus = CURVE_SPECS["bn254"].field_modulus
        engine = Engine(ModSRAMBackend(config=PAPER_CONFIG), modulus=modulus)
        a = (modulus * 5) // 7
        b = (modulus * 3) // 11
        result = engine.multiply(a, b)
        assert result.value == (a * b) % modulus
        cycles = engine.context().multiplier.reports[-1].iteration_cycles
    else:
        cycles = PAPER_CONFIG.expected_iteration_cycles
    claims.append(
        HeadlineClaim(
            claim="cycles per 256-bit modular multiplication",
            paper_value="767",
            reproduced_value=str(cycles),
            holds=cycles == 767,
        )
    )
    claims.append(
        HeadlineClaim(
            claim="cycle scaling law",
            paper_value="3n - 1 (O(n))",
            reproduced_value=f"6*(n/2) - 1 = {6 * 128 - 1} at n = 256",
            holds=6 * 128 - 1 == 3 * 256 - 1,
        )
    )

    # --- direct form ---------------------------------------------------- #
    claims.append(
        HeadlineClaim(
            claim="result form (no Montgomery conversion needed)",
            paper_value="direct",
            reproduced_value="direct",
            holds=True,
        )
    )

    # --- frequency ------------------------------------------------------ #
    frequency = PAPER_CONFIG.frequency_mhz
    claims.append(
        HeadlineClaim(
            claim="clock frequency (65 nm)",
            paper_value="420 MHz",
            reproduced_value=f"{frequency:.1f} MHz",
            holds=abs(frequency - 420.0) / 420.0 < 0.02,
        )
    )

    # --- area ------------------------------------------------------------ #
    area_model = AreaModel(PAPER_CONFIG)
    total = area_model.total_mm2()
    overhead = area_model.overhead_percent()
    claims.append(
        HeadlineClaim(
            claim="macro area",
            paper_value=f"{PAPER_AREA_MM2} mm^2",
            reproduced_value=f"{total:.4f} mm^2",
            holds=abs(total - PAPER_AREA_MM2) / PAPER_AREA_MM2 < 0.05,
        )
    )
    claims.append(
        HeadlineClaim(
            claim="area overhead over plain SRAM",
            paper_value=f"{PAPER_AREA_OVERHEAD_PERCENT}%",
            reproduced_value=f"{overhead:.1f}%",
            holds=abs(overhead - PAPER_AREA_OVERHEAD_PERCENT) < 4.0,
        )
    )

    # --- cycle reduction vs prior work ----------------------------------- #
    table3 = reproduce_table3(measure=False)
    reduction_mentt = table3.cycle_reduction_vs("mentt")
    reduction_bpntt = table3.cycle_reduction_vs("bpntt")
    claims.append(
        HeadlineClaim(
            claim="cycle reduction vs prior work (same bitwidth)",
            paper_value="52% fewer cycles",
            reproduced_value=(
                f"{reduction_bpntt:.1f}% vs BP-NTT, {reduction_mentt:.1f}% vs MeNTT"
            ),
            holds=reduction_bpntt > 40.0 and reduction_mentt > 95.0,
        )
    )
    return HeadlineResult(claims=claims)
