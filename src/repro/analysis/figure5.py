"""Figure 5: area breakdown of the ModSRAM macro.

The paper reports a 0.053 mm² macro (65 nm, 64 × 256) split 67 % SRAM
array / 20 % in-memory circuit / 11 % near-memory circuit / 2 % decoders,
and a 32 % area overhead over a plain SRAM macro.  The reproduction computes
the same breakdown from the parametric area model and reports the deltas
against the published numbers.

Registered as experiment ``figure5`` in :mod:`repro.experiments` (with
``rows`` / ``bitwidth`` / ``technology_nm`` as sweep axes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.modsram.area import (
    PAPER_AREA_MM2,
    PAPER_AREA_OVERHEAD_PERCENT,
    PAPER_BREAKDOWN_PERCENT,
    AreaBreakdown,
    AreaModel,
)
from repro.modsram.config import PAPER_CONFIG, ModSRAMConfig

__all__ = ["Figure5Result", "reproduce_figure5"]


@dataclass(frozen=True)
class Figure5Result:
    """Modelled breakdown alongside the paper's published numbers."""

    breakdown: AreaBreakdown
    overhead_percent: float
    paper_total_mm2: float
    paper_breakdown_percent: Dict[str, float]
    paper_overhead_percent: float

    @property
    def total_mm2(self) -> float:
        """Modelled total macro area."""
        return self.breakdown.total_mm2

    @property
    def total_error_percent(self) -> float:
        """Relative deviation of the modelled total from the paper's total."""
        return 100.0 * (self.total_mm2 - self.paper_total_mm2) / self.paper_total_mm2

    def rows(self) -> List[List[object]]:
        """One row per component: modelled share vs published share."""
        modelled = self.breakdown.percentages
        table = []
        for component in ("sram_array", "in_memory_circuit", "near_memory_circuit", "decoder"):
            table.append(
                [
                    component.replace("_", " "),
                    round(self.breakdown.as_dict()[f"{component}_mm2"], 4),
                    round(modelled[component], 1),
                    self.paper_breakdown_percent[component],
                ]
            )
        return table

    def render(self) -> str:
        """The figure's data as a text table plus the summary lines."""
        table = render_table(
            ("component", "area (mm^2)", "model share (%)", "paper share (%)"),
            self.rows(),
            title="Figure 5: ModSRAM area breakdown",
        )
        summary = (
            f"total: {self.total_mm2:.4f} mm^2 (paper {self.paper_total_mm2} mm^2, "
            f"{self.total_error_percent:+.1f}%)\n"
            f"PIM overhead over plain SRAM: {self.overhead_percent:.1f}% "
            f"(paper {self.paper_overhead_percent}%)"
        )
        return f"{table}\n{summary}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "breakdown": {
                "sram_array_mm2": self.breakdown.sram_array_mm2,
                "in_memory_circuit_mm2": self.breakdown.in_memory_circuit_mm2,
                "near_memory_circuit_mm2": self.breakdown.near_memory_circuit_mm2,
                "decoder_mm2": self.breakdown.decoder_mm2,
            },
            "overhead_percent": self.overhead_percent,
            "paper_total_mm2": self.paper_total_mm2,
            "paper_breakdown_percent": dict(self.paper_breakdown_percent),
            "paper_overhead_percent": self.paper_overhead_percent,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Figure5Result":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        breakdown = data["breakdown"]
        return cls(
            breakdown=AreaBreakdown(
                sram_array_mm2=float(breakdown["sram_array_mm2"]),
                in_memory_circuit_mm2=float(breakdown["in_memory_circuit_mm2"]),
                near_memory_circuit_mm2=float(breakdown["near_memory_circuit_mm2"]),
                decoder_mm2=float(breakdown["decoder_mm2"]),
            ),
            overhead_percent=float(data["overhead_percent"]),
            # The paper constants render verbatim (``{value}%``), so their
            # original int/float type must survive the round trip untouched.
            paper_total_mm2=data["paper_total_mm2"],
            paper_breakdown_percent=dict(data["paper_breakdown_percent"]),
            paper_overhead_percent=data["paper_overhead_percent"],
        )


def reproduce_figure5(config: Optional[ModSRAMConfig] = None) -> Figure5Result:
    """Reproduce the area breakdown for a configuration (default: the paper's)."""
    model = AreaModel(config or PAPER_CONFIG)
    return Figure5Result(
        breakdown=model.breakdown(),
        overhead_percent=model.overhead_percent(),
        paper_total_mm2=PAPER_AREA_MM2,
        paper_breakdown_percent=dict(PAPER_BREAKDOWN_PERCENT),
        paper_overhead_percent=PAPER_AREA_OVERHEAD_PERCENT,
    )
