"""RTL elaboration + event-driven co-simulation for the ModSRAM macro.

The fourth fidelity tier: the R4CSA-LUT schedule of
:mod:`repro.modsram.kernel` elaborated into a structural hardware IR
(:mod:`repro.hdl.ir` / :mod:`repro.hdl.elaborate`), emitted as
synthesizable Verilog-2001 (:mod:`repro.hdl.verilog`) and executed by a
pure-Python event-driven simulator (:mod:`repro.hdl.eventsim`) whose
per-phase cycle counts are asserted equal to
:class:`~repro.modsram.analytical.AnalyticalCostModel` field by field —
a machine-checked cycle model instead of a trusted one.

Entry points:

* :func:`~repro.hdl.elaborate.elaborate_macro` — build the macro IR for a
  :class:`~repro.modsram.config.ModSRAMConfig`;
* :func:`~repro.hdl.verilog.emit_design` — deterministic Verilog files;
* :class:`~repro.hdl.eventsim.HdlModSRAM` — the co-simulation tier
  (``Fidelity.HDL`` / the ``modsram-hdl`` backend).
"""

from repro.hdl.elaborate import MacroDesign, STATE_ENCODING, elaborate_macro
from repro.hdl.eventsim import (
    EventSimulator,
    HdlMacroSim,
    HdlModSRAM,
    HdlRunTrace,
)
from repro.hdl.ir import HdlError, Module
from repro.hdl.multiplier import ModSRAMHdlBackend, ModSRAMHdlMultiplier
from repro.hdl.verilog import design_file_names, emit_design, emit_module

__all__ = [
    "MacroDesign",
    "STATE_ENCODING",
    "elaborate_macro",
    "EventSimulator",
    "HdlMacroSim",
    "HdlModSRAM",
    "HdlRunTrace",
    "HdlError",
    "Module",
    "ModSRAMHdlBackend",
    "ModSRAMHdlMultiplier",
    "design_file_names",
    "emit_design",
    "emit_module",
]
