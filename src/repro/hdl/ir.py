"""Structural hardware IR for the ModSRAM macro.

A deliberately small register-transfer IR: enough to describe the macro's
controller FSM, near-memory datapath and SRAM row storage so that one
description can be *both* emitted as synthesizable Verilog-2001
(:mod:`repro.hdl.verilog`) and executed by the event-driven simulator
(:mod:`repro.hdl.eventsim`).  Everything is a frozen dataclass with explicit
bit-widths; there is no inference magic beyond :func:`expr_width`.

Design rules (enforced by :meth:`Module.validate` and kept simple on
purpose so the Verilog emission is trivially faithful):

* every wire is driven by exactly one continuous assignment, every reg by
  exactly one clocked process, every memory by exactly one process;
* :class:`Slice` applies only to named signals (Verilog-2001 cannot part-
  select an expression), so elaboration materialises intermediates as
  named wires — which keeps expression widths explicit on both sides;
* assignment masks the right-hand side to the target's width, matching
  Verilog's context-determined sizing for the single-operation right-hand
  sides elaboration produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple, Union

from repro.errors import ReproError

__all__ = [
    "HdlError",
    "Port",
    "Reg",
    "Wire",
    "Memory",
    "FsmState",
    "Const",
    "Ref",
    "UnOp",
    "BinOp",
    "Mux",
    "Slice",
    "Cat",
    "MemRead",
    "Assign",
    "SAssign",
    "MemWrite",
    "SIf",
    "Process",
    "Instance",
    "Module",
    "expr_width",
]


class HdlError(ReproError):
    """A malformed IR construct (bad width, duplicate driver, bad ref)."""


# --------------------------------------------------------------------------- #
# declarations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Port:
    """A module port with direction ``"in"`` or ``"out"`` and a bit-width."""

    name: str
    width: int
    direction: str = "in"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise HdlError(f"port {self.name}: direction must be in/out")
        if self.width <= 0:
            raise HdlError(f"port {self.name}: width must be positive")


@dataclass(frozen=True)
class Reg:
    """A clocked register (posedge-updated, masked to ``width`` bits)."""

    name: str
    width: int
    reset: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise HdlError(f"reg {self.name}: width must be positive")
        if not 0 <= self.reset < (1 << self.width):
            raise HdlError(f"reg {self.name}: reset value does not fit")


@dataclass(frozen=True)
class Wire:
    """A combinationally-driven signal (one continuous assignment)."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise HdlError(f"wire {self.name}: width must be positive")


@dataclass(frozen=True)
class Memory:
    """A word-addressed register array (the SRAM rows of the macro)."""

    name: str
    width: int
    depth: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.depth <= 0:
            raise HdlError(f"memory {self.name}: width/depth must be positive")


@dataclass(frozen=True)
class FsmState:
    """A named FSM state constant (emitted as a Verilog ``localparam``)."""

    name: str
    value: int
    width: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << self.width):
            raise HdlError(f"state {self.name}: value does not fit in width")


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Const:
    """A sized literal value."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise HdlError("const width must be positive")
        if not 0 <= self.value < (1 << self.width):
            raise HdlError(f"const {self.value} does not fit in {self.width} bits")


@dataclass(frozen=True)
class Ref:
    """A reference to a named signal (port, reg, wire or FSM state)."""

    name: str


@dataclass(frozen=True)
class UnOp:
    """A unary operation; only logical ``"not"`` (1-bit result)."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class BinOp:
    """A binary operation.

    Arithmetic/bitwise: ``add sub and or xor shl shr``; comparisons
    (1-bit results): ``eq ne lt le gt ge``.  Shift amounts must be
    :class:`Const` so widths stay static.
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Mux:
    """A 2:1 multiplexer: ``cond ? if_true : if_false``."""

    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"


@dataclass(frozen=True)
class Slice:
    """A bit-slice ``signal[msb:lsb]`` of a *named* signal."""

    ref: Ref
    msb: int
    lsb: int

    def __post_init__(self) -> None:
        if self.lsb < 0 or self.msb < self.lsb:
            raise HdlError(f"bad slice [{self.msb}:{self.lsb}] of {self.ref.name}")


@dataclass(frozen=True)
class Cat:
    """Concatenation ``{parts...}``, most-significant part first."""

    parts: Tuple["Expr", ...]


@dataclass(frozen=True)
class MemRead:
    """An asynchronous memory-row read ``memory[addr]``."""

    memory: str
    addr: "Expr"


Expr = Union[Const, Ref, UnOp, BinOp, Mux, Slice, Cat, MemRead]

_CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_ARITH_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr")


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Assign:
    """A continuous assignment driving a wire (``assign target = expr``)."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class SAssign:
    """A nonblocking register assignment inside a process (``r <= expr``)."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class MemWrite:
    """A nonblocking memory-row write inside a process."""

    memory: str
    addr: Expr
    data: Expr


@dataclass(frozen=True)
class SIf:
    """A conditional inside a process, with optional else branch."""

    cond: Expr
    then: Tuple["Stmt", ...]
    orelse: Tuple["Stmt", ...] = ()


Stmt = Union[SAssign, MemWrite, SIf]


@dataclass(frozen=True)
class Process:
    """A clocked process (``always @(posedge clk)``) of sequential statements."""

    name: str
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Instance:
    """A child-module instantiation.

    ``bindings`` maps every child port name to a parent signal name; input
    ports read the parent signal, output ports drive it (the parent signal
    must be a wire with no other driver).
    """

    module: "Module"
    name: str
    bindings: Mapping[str, str]


# --------------------------------------------------------------------------- #
# module
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Module:
    """One hardware module: declarations, continuous assigns, processes.

    The implicit clock is the 1-bit input port ``clk``; every
    :class:`Process` is clocked by it.  Ordering of ``assigns`` is the
    emission order (and the initial evaluation order hint for the
    simulator, which re-sorts topologically).
    """

    name: str
    ports: Tuple[Port, ...] = ()
    regs: Tuple[Reg, ...] = ()
    wires: Tuple[Wire, ...] = ()
    memories: Tuple[Memory, ...] = ()
    fsm_states: Tuple[FsmState, ...] = ()
    assigns: Tuple[Assign, ...] = ()
    processes: Tuple[Process, ...] = ()
    instances: Tuple[Instance, ...] = ()

    # -- symbol tables --------------------------------------------------- #
    def signal_widths(self) -> Dict[str, int]:
        """Width of every named signal (ports, regs, wires, FSM states)."""
        widths: Dict[str, int] = {}
        for port in self.ports:
            widths[port.name] = port.width
        for reg in self.regs:
            widths[reg.name] = reg.width
        for wire in self.wires:
            widths[wire.name] = wire.width
        for state in self.fsm_states:
            widths[state.name] = state.width
        return widths

    def memory_table(self) -> Dict[str, Memory]:
        """Name → :class:`Memory` declaration table."""
        return {memory.name: memory for memory in self.memories}

    # -- validation ------------------------------------------------------ #
    def validate(self) -> None:
        """Check naming, driver-uniqueness and reference rules.

        Raises :class:`HdlError` on the first violation.  Called by the
        emitter and the simulator so a malformed elaboration cannot produce
        silently-wrong Verilog or simulation results.
        """
        names: List[str] = (
            [p.name for p in self.ports]
            + [r.name for r in self.regs]
            + [w.name for w in self.wires]
            + [m.name for m in self.memories]
            + [s.name for s in self.fsm_states]
        )
        seen = set()
        for name in names:
            if name in seen:
                raise HdlError(f"{self.name}: duplicate signal name {name!r}")
            seen.add(name)

        widths = self.signal_widths()
        memories = self.memory_table()
        state_names = {s.name for s in self.fsm_states}
        reg_names = {r.name for r in self.regs}
        wire_names = {w.name for w in self.wires}
        out_ports = {p.name for p in self.ports if p.direction == "out"}

        def check_expr(expr: Expr, where: str) -> None:
            if isinstance(expr, Const):
                return
            if isinstance(expr, Ref):
                if expr.name not in widths:
                    raise HdlError(
                        f"{self.name}.{where}: unknown signal {expr.name!r}"
                    )
                return
            if isinstance(expr, UnOp):
                if expr.op != "not":
                    raise HdlError(f"{self.name}.{where}: bad unop {expr.op!r}")
                check_expr(expr.operand, where)
                return
            if isinstance(expr, BinOp):
                if expr.op not in _CMP_OPS + _ARITH_OPS:
                    raise HdlError(f"{self.name}.{where}: bad op {expr.op!r}")
                if expr.op in ("shl", "shr") and not isinstance(expr.right, Const):
                    raise HdlError(
                        f"{self.name}.{where}: shift amounts must be constants"
                    )
                check_expr(expr.left, where)
                check_expr(expr.right, where)
                return
            if isinstance(expr, Mux):
                check_expr(expr.cond, where)
                check_expr(expr.if_true, where)
                check_expr(expr.if_false, where)
                return
            if isinstance(expr, Slice):
                check_expr(expr.ref, where)
                if expr.msb >= widths[expr.ref.name]:
                    raise HdlError(
                        f"{self.name}.{where}: slice [{expr.msb}:{expr.lsb}] "
                        f"exceeds {expr.ref.name!r} "
                        f"({widths[expr.ref.name]} bits)"
                    )
                return
            if isinstance(expr, Cat):
                if not expr.parts:
                    raise HdlError(f"{self.name}.{where}: empty concatenation")
                for part in expr.parts:
                    check_expr(part, where)
                return
            if isinstance(expr, MemRead):
                if expr.memory not in memories:
                    raise HdlError(
                        f"{self.name}.{where}: unknown memory {expr.memory!r}"
                    )
                check_expr(expr.addr, where)
                return
            raise HdlError(f"{self.name}.{where}: not an expression: {expr!r}")

        # continuous assigns: targets are wires or output ports, driven once
        comb_driven = set()
        for assign in self.assigns:
            if assign.target not in wire_names and assign.target not in out_ports:
                raise HdlError(
                    f"{self.name}: assign target {assign.target!r} is not a "
                    "wire or output port"
                )
            if assign.target in comb_driven:
                raise HdlError(
                    f"{self.name}: wire {assign.target!r} driven more than once"
                )
            comb_driven.add(assign.target)
            check_expr(assign.expr, f"assign {assign.target}")

        # processes: SAssign targets are regs; memories written in one process
        mem_writer: Dict[str, str] = {}
        reg_writer: Dict[str, str] = {}

        def check_stmt(stmt: Stmt, process: str) -> None:
            if isinstance(stmt, SAssign):
                if stmt.target not in reg_names:
                    raise HdlError(
                        f"{self.name}.{process}: sequential target "
                        f"{stmt.target!r} is not a reg"
                    )
                owner = reg_writer.setdefault(stmt.target, process)
                if owner != process:
                    raise HdlError(
                        f"{self.name}: reg {stmt.target!r} written from both "
                        f"{owner!r} and {process!r}"
                    )
                check_expr(stmt.expr, process)
                return
            if isinstance(stmt, MemWrite):
                if stmt.memory not in memories:
                    raise HdlError(
                        f"{self.name}.{process}: unknown memory {stmt.memory!r}"
                    )
                owner = mem_writer.setdefault(stmt.memory, process)
                if owner != process:
                    raise HdlError(
                        f"{self.name}: memory {stmt.memory!r} written from "
                        f"both {owner!r} and {process!r}"
                    )
                check_expr(stmt.addr, process)
                check_expr(stmt.data, process)
                return
            if isinstance(stmt, SIf):
                check_expr(stmt.cond, process)
                for sub in stmt.then:
                    check_stmt(sub, process)
                for sub in stmt.orelse:
                    check_stmt(sub, process)
                return
            raise HdlError(f"{self.name}.{process}: not a statement: {stmt!r}")

        for process in self.processes:
            for stmt in process.body:
                check_stmt(stmt, process.name)

        # state names must not shadow driven signals
        for name in state_names:
            if name in comb_driven or name in reg_names:
                raise HdlError(f"{self.name}: FSM state {name!r} shadows a signal")

        # instances: bindings cover every child port and target known signals
        for instance in self.instances:
            child_ports = {p.name: p for p in instance.module.ports}
            for port_name in child_ports:
                if port_name not in instance.bindings:
                    raise HdlError(
                        f"{self.name}.{instance.name}: port {port_name!r} "
                        "is unbound"
                    )
            for port_name, signal in instance.bindings.items():
                if port_name not in child_ports:
                    raise HdlError(
                        f"{self.name}.{instance.name}: no child port "
                        f"{port_name!r}"
                    )
                if signal not in widths:
                    raise HdlError(
                        f"{self.name}.{instance.name}: binding target "
                        f"{signal!r} is not a parent signal"
                    )
                if widths[signal] != child_ports[port_name].width:
                    raise HdlError(
                        f"{self.name}.{instance.name}.{port_name}: width "
                        f"{child_ports[port_name].width} bound to "
                        f"{signal!r} of width {widths[signal]}"
                    )

    # -- hierarchy flattening ------------------------------------------- #
    def flatten(self) -> "Module":
        """Inline every instance into one flat module for simulation.

        Child signals are renamed ``u_<instance>__<name>``; child ports
        become wires, with input ports assigned from the bound parent
        signal and output-port bindings assigned from the child's wire.
        The top-level ports are preserved.
        """
        if not self.instances:
            return self
        regs = list(self.regs)
        wires = list(self.wires)
        memories = list(self.memories)
        fsm_states = list(self.fsm_states)
        assigns = list(self.assigns)
        processes = list(self.processes)

        for instance in self.instances:
            child = instance.module.flatten()
            prefix = f"u_{instance.name}__"

            def rn(name: str, prefix: str = prefix) -> str:
                return prefix + name

            child_state_names = {s.name for s in child.fsm_states}

            def rex(expr: Expr, prefix: str = prefix) -> Expr:
                if isinstance(expr, Const):
                    return expr
                if isinstance(expr, Ref):
                    return Ref(prefix + expr.name)
                if isinstance(expr, UnOp):
                    return UnOp(expr.op, rex(expr.operand))
                if isinstance(expr, BinOp):
                    return BinOp(expr.op, rex(expr.left), rex(expr.right))
                if isinstance(expr, Mux):
                    return Mux(rex(expr.cond), rex(expr.if_true), rex(expr.if_false))
                if isinstance(expr, Slice):
                    return Slice(Ref(prefix + expr.ref.name), expr.msb, expr.lsb)
                if isinstance(expr, Cat):
                    return Cat(tuple(rex(part) for part in expr.parts))
                if isinstance(expr, MemRead):
                    return MemRead(prefix + expr.memory, rex(expr.addr))
                raise HdlError(f"cannot rename expression {expr!r}")

            def rst(stmt: Stmt) -> Stmt:
                if isinstance(stmt, SAssign):
                    return SAssign(rn(stmt.target), rex(stmt.expr))
                if isinstance(stmt, MemWrite):
                    return MemWrite(rn(stmt.memory), rex(stmt.addr), rex(stmt.data))
                if isinstance(stmt, SIf):
                    return SIf(
                        rex(stmt.cond),
                        tuple(rst(s) for s in stmt.then),
                        tuple(rst(s) for s in stmt.orelse),
                    )
                raise HdlError(f"cannot rename statement {stmt!r}")

            for reg in child.regs:
                regs.append(Reg(rn(reg.name), reg.width, reg.reset))
            for memory in child.memories:
                memories.append(Memory(rn(memory.name), memory.width, memory.depth))
            for state in child.fsm_states:
                fsm_states.append(FsmState(rn(state.name), state.value, state.width))
            for wire in child.wires:
                wires.append(Wire(rn(wire.name), wire.width))
            for port in child.ports:
                wires.append(Wire(rn(port.name), port.width))
                bound = instance.bindings[port.name]
                if port.direction == "in":
                    assigns.append(Assign(rn(port.name), Ref(bound)))
                else:
                    assigns.append(Assign(bound, Ref(rn(port.name))))
            for assign in child.assigns:
                assigns.append(Assign(rn(assign.target), rex(assign.expr)))
            for process in child.processes:
                processes.append(
                    Process(rn(process.name), tuple(rst(s) for s in process.body))
                )
            # FSM-state refs inside the child were renamed too; the renamed
            # localparams added above keep them resolvable.
            del child_state_names

        flat = Module(
            name=self.name,
            ports=self.ports,
            regs=tuple(regs),
            wires=tuple(wires),
            memories=tuple(memories),
            fsm_states=tuple(fsm_states),
            assigns=tuple(assigns),
            processes=tuple(processes),
            instances=(),
        )
        flat.validate()
        return flat


def expr_width(expr: Expr, widths: Mapping[str, int], mem_widths: Mapping[str, int]) -> int:
    """Natural (loss-free) bit-width of an expression.

    Used by the emitter for literal sizing and by :meth:`Module.validate`
    callers that want width sanity checks; assignment always masks to the
    declared target width regardless.
    """
    if isinstance(expr, Const):
        return expr.width
    if isinstance(expr, Ref):
        return widths[expr.name]
    if isinstance(expr, UnOp):
        return 1
    if isinstance(expr, BinOp):
        if expr.op in _CMP_OPS:
            return 1
        left = expr_width(expr.left, widths, mem_widths)
        right = expr_width(expr.right, widths, mem_widths)
        if expr.op == "add":
            return max(left, right) + 1
        if expr.op == "shl":
            assert isinstance(expr.right, Const)
            return left + expr.right.value
        if expr.op == "shr":
            return left
        return max(left, right)
    if isinstance(expr, Mux):
        return max(
            expr_width(expr.if_true, widths, mem_widths),
            expr_width(expr.if_false, widths, mem_widths),
        )
    if isinstance(expr, Slice):
        return expr.msb - expr.lsb + 1
    if isinstance(expr, Cat):
        return sum(expr_width(part, widths, mem_widths) for part in expr.parts)
    if isinstance(expr, MemRead):
        return mem_widths[expr.memory]
    raise HdlError(f"not an expression: {expr!r}")
