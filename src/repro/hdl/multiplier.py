"""The HDL co-simulation tier behind the multiplier/backend interfaces.

``modsram-hdl`` runs every multiplication through the event-driven
simulator over the elaborated RTL (:class:`~repro.hdl.eventsim.HdlModSRAM`)
— the slowest tier, but the only one whose cycle reports are *measured from
a structural hardware description* rather than modeled.  Products and
per-phase cycle counts are asserted (by the parity test suite) to be
identical to every other tier.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algorithms.base import register_multiplier
from repro.engine.backend import MultiplierBackend
from repro.errors import ConfigurationError
from repro.hdl.eventsim import HdlModSRAM
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig
from repro.modsram.multiplier import ModSRAMMultiplier, _config_for

__all__ = ["ModSRAMHdlMultiplier", "ModSRAMHdlBackend"]


@register_multiplier
class ModSRAMHdlMultiplier(ModSRAMMultiplier):
    """Runs every multiplication through the RTL event simulator."""

    name = "modsram-hdl"
    description = (
        "HDL co-simulation tier: the elaborated ModSRAM RTL executed by the "
        "event-driven simulator, cycle counts measured from the netlist."
    )
    direct_form = True

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        super().__init__(config)
        self._macros: Dict[int, HdlModSRAM] = {}

    def macro_for(self, modulus: int) -> HdlModSRAM:
        """Return (and cache) an elaborated macro sized for ``modulus``."""
        config = _config_for(self._config, modulus)
        key = config.bitwidth
        if key not in self._macros:
            self._macros[key] = HdlModSRAM(config)
        return self._macros[key]

    def accelerator_for(self, modulus: int) -> ModSRAMAccelerator:
        raise ConfigurationError(
            "the HDL tier has no cycle-level SRAM accelerator; use macro_for()"
        )

    def prepare(self, modulus: int) -> None:
        """Elaborate and compile the macro for ``modulus`` eagerly."""
        self.macro_for(modulus)

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        macro = self.macro_for(modulus)
        result = macro.multiply(a, b, modulus)
        self.reports.append(result.report)
        self._account(result.report)
        return result.product


class ModSRAMHdlBackend(MultiplierBackend):
    """The HDL co-simulation tier (``modsram-hdl``) behind the Engine API.

    Context creation elaborates the macro RTL for the modulus bitwidth and
    compiles it for event-driven execution; the analytic ``cycles()`` model
    (identical by construction, enforced by the parity suite) keeps backend
    metadata queries cheap.
    """

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        kwargs = {"config": config} if config is not None else {}
        super().__init__(
            "modsram-hdl", kind="accelerator", info_fidelity="hdl", **kwargs
        )
