"""Elaborate the R4CSA-LUT schedule into structural IR.

This module walks the algorithm body of :mod:`repro.modsram.kernel` —
load, LUT precompute, Booth/carry-save main loop, finalise — and builds the
same schedule as explicit hardware: a controller FSM
(``modsram_ctrl``), a datapath with the SRAM row array, the redundant
sum/carry registers and the near-memory ALU (``modsram_datapath``), and a
top-level macro (``modsram_macro``) wiring the two together, all
parameterised by :class:`~repro.modsram.config.ModSRAMConfig` and placed
per :class:`~repro.modsram.memory_map.MemoryMap`.

The controller executes exactly the cycle budget of
:class:`~repro.modsram.analytical.AnalyticalCostModel`:

* ``LOAD`` — 6 cycles (five row writes, one multiplier read);
* ``PRECOMPUTE`` — a 33-step microprogram (2 cycles per computed radix-4
  entry, 2 per non-trivial overflow entry, one write per LUT row), skipped
  entirely when ``skip_pc`` signals resident LUTs;
* ``ITERATE`` — six sub-states per iteration (logic-SA radix-4 access, sum
  and carry write-backs, overflow access, shifted sum/carry write-backs),
  the final iteration eliding the carry write-back, each pathological
  extra overflow fold inserting three sub-states;
* ``FINALIZE`` — sum-row read, full add, then one conditional subtraction
  per cycle until the result is below the modulus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.booth import RADIX4_ENCODER_TABLE
from repro.hdl.ir import (
    Assign,
    BinOp,
    Cat,
    Const,
    Expr,
    FsmState,
    Instance,
    Memory,
    MemRead,
    MemWrite,
    Module,
    Mux,
    Port,
    Process,
    Ref,
    Reg,
    SAssign,
    SIf,
    Slice,
    Stmt,
    UnOp,
    Wire,
)
from repro.modsram.config import ModSRAMConfig
from repro.modsram.memory_map import MemoryMap

__all__ = ["MacroDesign", "elaborate_macro", "STATE_ENCODING"]

#: Controller state encoding (3 bits), shared by ctrl, datapath and tests.
STATE_ENCODING = {
    "ST_IDLE": 0,
    "ST_LOAD": 1,
    "ST_PRECOMPUTE": 2,
    "ST_ITERATE": 3,
    "ST_FINALIZE": 4,
    "ST_DONE": 5,
}

#: Iterate sub-state encoding (4 bits): radix-4 access, sum/carry
#: write-backs, overflow access, extra-fold write-backs, shifted
#: write-backs, final sum write-back.
_IT_ENCODING = {
    "IT_RAD": 0,
    "IT_WS": 1,
    "IT_WC": 2,
    "IT_OVF": 3,
    "IT_EWS": 4,
    "IT_EWC": 5,
    "IT_WS2": 6,
    "IT_WC2": 7,
    "IT_WSF": 8,
}

#: Finalise sub-state encoding (2 bits).
_FIN_ENCODING = {"F_READ": 0, "F_ADD": 1, "F_SUB": 2}

_STATE_W = 3
_IT_W = 4
_FIN_W = 2
_LOAD_W = 3
_PC_W = 6


def _c(value: int, width: int) -> Const:
    return Const(value, width)


def _eq(a: Expr, b: Expr) -> BinOp:
    return BinOp("eq", a, b)


def _and(a: Expr, b: Expr) -> BinOp:
    return BinOp("and", a, b)


def _or(a: Expr, b: Expr) -> BinOp:
    return BinOp("or", a, b)


def _add(a: Expr, b: Expr) -> BinOp:
    return BinOp("add", a, b)


def _sub(a: Expr, b: Expr) -> BinOp:
    return BinOp("sub", a, b)


def _states(encoding: Dict[str, int], width: int) -> Tuple[FsmState, ...]:
    return tuple(
        FsmState(name, value, width) for name, value in encoding.items()
    )


def _build_controller(config: ModSRAMConfig) -> Module:
    """The controller FSM: one reg per schedule counter, no datapath."""
    iterations = config.iterations
    iter_w = max(1, (iterations - 1).bit_length())
    pc_last = 32  # the microprogram always has 33 steps (constant structure)

    ports = (
        Port("clk", 1, "in"),
        Port("rst", 1, "in"),
        Port("start", 1, "in"),
        Port("skip_pc", 1, "in"),
        Port("ovf_rem_zero", 1, "in"),
        Port("fin_ge_p", 1, "in"),
        Port("state", _STATE_W, "out"),
        Port("load_step", _LOAD_W, "out"),
        Port("pc_step", _PC_W, "out"),
        Port("it_sub", _IT_W, "out"),
        Port("fin_sub", _FIN_W, "out"),
        Port("done", 1, "out"),
        Port("extra_fold", 1, "out"),
    )
    regs = (
        Reg("r_state", _STATE_W, STATE_ENCODING["ST_IDLE"]),
        Reg("r_load", _LOAD_W),
        Reg("r_pc", _PC_W),
        Reg("r_it", _IT_W),
        Reg("r_iter", iter_w),
        Reg("r_fin", _FIN_W),
    )
    wires = (Wire("w_last", 1), Wire("w_in_ovf", 1))
    fsm_states = _states(STATE_ENCODING, _STATE_W) + _states(
        _IT_ENCODING, _IT_W
    ) + _states(_FIN_ENCODING, _FIN_W)

    assigns = (
        Assign("state", Ref("r_state")),
        Assign("load_step", Ref("r_load")),
        Assign("pc_step", Ref("r_pc")),
        Assign("it_sub", Ref("r_it")),
        Assign("fin_sub", Ref("r_fin")),
        Assign("w_last", _eq(Ref("r_iter"), _c(iterations - 1, iter_w))),
        Assign("done", _eq(Ref("r_state"), Ref("ST_DONE"))),
        Assign(
            "w_in_ovf",
            _and(
                _eq(Ref("r_state"), Ref("ST_ITERATE")),
                _eq(Ref("r_it"), Ref("IT_OVF")),
            ),
        ),
        Assign(
            "extra_fold",
            _and(Ref("w_in_ovf"), UnOp("not", Ref("ovf_rem_zero"))),
        ),
    )

    st = Ref("r_state")
    it = Ref("r_it")
    fin = Ref("r_fin")
    body: Tuple[Stmt, ...] = (
        SIf(
            Ref("rst"),
            (
                SAssign("r_state", Ref("ST_IDLE")),
                SAssign("r_load", _c(0, _LOAD_W)),
                SAssign("r_pc", _c(0, _PC_W)),
                SAssign("r_it", Ref("IT_RAD")),
                SAssign("r_iter", _c(0, iter_w)),
                SAssign("r_fin", Ref("F_READ")),
            ),
            (
                SIf(
                    _eq(st, Ref("ST_IDLE")),
                    (
                        SIf(
                            Ref("start"),
                            (
                                SAssign("r_state", Ref("ST_LOAD")),
                                SAssign("r_load", _c(0, _LOAD_W)),
                                SAssign("r_pc", _c(0, _PC_W)),
                                SAssign("r_it", Ref("IT_RAD")),
                                SAssign("r_iter", _c(0, iter_w)),
                                SAssign("r_fin", Ref("F_READ")),
                            ),
                        ),
                    ),
                ),
                SIf(
                    _eq(st, Ref("ST_LOAD")),
                    (
                        SIf(
                            _eq(Ref("r_load"), _c(5, _LOAD_W)),
                            (
                                SAssign(
                                    "r_state",
                                    Mux(
                                        Ref("skip_pc"),
                                        Ref("ST_ITERATE"),
                                        Ref("ST_PRECOMPUTE"),
                                    ),
                                ),
                            ),
                            (SAssign("r_load", _add(Ref("r_load"), _c(1, 1))),),
                        ),
                    ),
                ),
                SIf(
                    _eq(st, Ref("ST_PRECOMPUTE")),
                    (
                        SIf(
                            _eq(Ref("r_pc"), _c(pc_last, _PC_W)),
                            (SAssign("r_state", Ref("ST_ITERATE")),),
                            (SAssign("r_pc", _add(Ref("r_pc"), _c(1, 1))),),
                        ),
                    ),
                ),
                SIf(
                    _eq(st, Ref("ST_ITERATE")),
                    (
                        SIf(_eq(it, Ref("IT_RAD")), (SAssign("r_it", Ref("IT_WS")),)),
                        SIf(_eq(it, Ref("IT_WS")), (SAssign("r_it", Ref("IT_WC")),)),
                        SIf(_eq(it, Ref("IT_WC")), (SAssign("r_it", Ref("IT_OVF")),)),
                        SIf(
                            _eq(it, Ref("IT_OVF")),
                            (
                                SIf(
                                    Ref("ovf_rem_zero"),
                                    (
                                        SAssign(
                                            "r_it",
                                            Mux(
                                                Ref("w_last"),
                                                Ref("IT_WSF"),
                                                Ref("IT_WS2"),
                                            ),
                                        ),
                                    ),
                                    (SAssign("r_it", Ref("IT_EWS")),),
                                ),
                            ),
                        ),
                        SIf(_eq(it, Ref("IT_EWS")), (SAssign("r_it", Ref("IT_EWC")),)),
                        SIf(_eq(it, Ref("IT_EWC")), (SAssign("r_it", Ref("IT_OVF")),)),
                        SIf(_eq(it, Ref("IT_WS2")), (SAssign("r_it", Ref("IT_WC2")),)),
                        SIf(
                            _eq(it, Ref("IT_WC2")),
                            (
                                SAssign("r_it", Ref("IT_RAD")),
                                SAssign("r_iter", _add(Ref("r_iter"), _c(1, 1))),
                            ),
                        ),
                        SIf(
                            _eq(it, Ref("IT_WSF")),
                            (
                                SAssign("r_state", Ref("ST_FINALIZE")),
                                SAssign("r_fin", Ref("F_READ")),
                                SAssign("r_it", Ref("IT_RAD")),
                            ),
                        ),
                    ),
                ),
                SIf(
                    _eq(st, Ref("ST_FINALIZE")),
                    (
                        SIf(_eq(fin, Ref("F_READ")), (SAssign("r_fin", Ref("F_ADD")),)),
                        SIf(
                            _eq(fin, Ref("F_ADD")),
                            (
                                SIf(
                                    Ref("fin_ge_p"),
                                    (SAssign("r_fin", Ref("F_SUB")),),
                                    (SAssign("r_state", Ref("ST_DONE")),),
                                ),
                            ),
                        ),
                        SIf(
                            _eq(fin, Ref("F_SUB")),
                            (
                                SIf(
                                    UnOp("not", Ref("fin_ge_p")),
                                    (SAssign("r_state", Ref("ST_DONE")),),
                                ),
                            ),
                        ),
                    ),
                ),
                SIf(
                    _eq(st, Ref("ST_DONE")),
                    (SAssign("r_state", Ref("ST_IDLE")),),
                ),
            ),
        ),
    )

    module = Module(
        name="modsram_ctrl",
        ports=ports,
        regs=regs,
        wires=wires,
        fsm_states=fsm_states,
        assigns=assigns,
        processes=(Process("ctrl_seq", body),),
    )
    module.validate()
    return module


# --------------------------------------------------------------------------- #
# precompute microprogram
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _PcStep:
    """One cycle of the LUT-fill microprogram."""

    write_row: Optional[int]  # row written this cycle (None = compute cycle)
    write_data: Optional[Expr]
    updates: Tuple[Tuple[str, Expr], ...]  # register <= expr this cycle


def _precompute_steps(config: ModSRAMConfig, mm: MemoryMap) -> List[_PcStep]:
    """The 33-cycle LUT-fill schedule (same totals as the cost model).

    Writes land in :data:`~repro.core.luts.RADIX4_DIGIT_ORDER` then
    overflow-index order; each computed entry spends two near-memory ALU
    cycles (operate, then conditionally correct into ``[0, p)``) before its
    write, matching ``lut_fill_cycles`` = 2·3 + 2·7 + 13 = 33 exactly.
    """
    n = config.bitwidth
    t_lo = Slice(Ref("pc_t"), n - 1, 0)
    corr_lo = Slice(Ref("w_pc_corr"), n - 1, 0)
    red_lo = Slice(Ref("w_red4"), n - 1, 0)
    steps: List[_PcStep] = []

    def compute(*updates: Tuple[str, Expr]) -> None:
        steps.append(_PcStep(None, None, tuple(updates)))

    def write(row: int, data: Expr, *updates: Tuple[str, Expr]) -> None:
        steps.append(_PcStep(row, data, tuple(updates)))

    # radix-4 LUT in digit order (0, +1, +2, -2, -1)
    write(mm.radix4_row(0), _c(0, n))
    write(mm.radix4_row(+1), Ref("b_reg"))
    compute(("pc_t", Ref("w_pc_bb")))  # t = B + B
    compute(("pc_t", Ref("w_pc_corr")), ("pc_b2", corr_lo))  # t = 2B mod p
    write(mm.radix4_row(+2), t_lo)
    compute(("pc_t", Ref("w_pc_pb2")))  # t = p - (2B mod p)
    compute(("pc_t", Ref("w_pc_corr")))  # fold t == p to 0
    write(mm.radix4_row(-2), t_lo)
    compute(("pc_t", Ref("w_pc_pb")))  # t = p - B
    compute(("pc_t", Ref("w_pc_corr")))
    write(mm.radix4_row(-1), t_lo)

    # overflow LUT: entry k holds k * 2^(n+1) mod p
    overflow_rows = mm.overflow_rows
    write(overflow_rows[0], _c(0, n))
    compute(("pc_t", _c(1 << (n + 1), n + 2)))
    compute(("pc_t", red_lo))  # 2^(n+1) mod p via the subtract chain
    write(overflow_rows[1], t_lo, ("pc_o1", t_lo), ("pc_oprev", t_lo))
    for index in range(2, len(overflow_rows)):
        compute(("pc_t", Ref("w_pc_oo")))  # t = o_{k-1} + o_1
        compute(("pc_t", Ref("w_pc_corr")))
        write(overflow_rows[index], t_lo, ("pc_oprev", t_lo))
    assert len(steps) == 33, f"microprogram has {len(steps)} steps, wanted 33"
    return steps


def _build_datapath(config: ModSRAMConfig, mm: MemoryMap) -> Module:
    """The datapath: SRAM rows, redundant registers, near-memory ALU."""
    n = config.bitwidth
    rw = config.register_width  # n + 1
    iterations = config.iterations
    shreg_w = 2 * iterations + 1
    rows = config.rows
    aw = max(1, (rows - 1).bit_length())
    pc_steps = _precompute_steps(config, mm)

    ports = (
        Port("clk", 1, "in"),
        Port("rst", 1, "in"),
        Port("op_a", n, "in"),
        Port("op_b", n, "in"),
        Port("op_p", n, "in"),
        Port("state", _STATE_W, "in"),
        Port("load_step", _LOAD_W, "in"),
        Port("pc_step", _PC_W, "in"),
        Port("it_sub", _IT_W, "in"),
        Port("fin_sub", _FIN_W, "in"),
        Port("ovf_rem_zero", 1, "out"),
        Port("fin_ge_p", 1, "out"),
        Port("product", n, "out"),
    )
    regs = (
        Reg("b_reg", n),
        Reg("p_reg", n),
        Reg("mult_sh", shreg_w),
        Reg("sum_ff", rw),
        Reg("carry_ff", rw),
        Reg("sum_msb", 1),
        Reg("carry_msb", 1),
        Reg("shift_ovf", 6),
        Reg("pend", 1),
        Reg("pend_acc", 4),
        Reg("rem", 6),
        Reg("sum_ovf2", 2),
        Reg("pend_fin", 4),
        Reg("pc_t", n + 2),
        Reg("pc_b2", n),
        Reg("pc_o1", n),
        Reg("pc_oprev", n),
        Reg("fin_sum", rw),
        Reg("total", n + 6),
    )
    memories = (Memory("mem", n, rows),)
    fsm_states = _states(STATE_ENCODING, _STATE_W) + _states(
        _IT_ENCODING, _IT_W
    ) + _states(_FIN_ENCODING, _FIN_W)

    wires: List[Wire] = []
    assigns: List[Assign] = []

    def wire(name: str, width: int, expr: Expr) -> Ref:
        wires.append(Wire(name, width))
        assigns.append(Assign(name, expr))
        return Ref(name)

    # ---- operand-load write port ------------------------------------- #
    ld = Ref("load_step")
    wire(
        "w_ld_data",
        n,
        Mux(
            _eq(ld, _c(0, _LOAD_W)),
            Ref("op_a"),
            Mux(
                _eq(ld, _c(1, _LOAD_W)),
                Ref("op_b"),
                Mux(_eq(ld, _c(2, _LOAD_W)), Ref("op_p"), _c(0, n)),
            ),
        ),
    )
    wire(
        "w_ld_addr",
        aw,
        Mux(
            _eq(ld, _c(0, _LOAD_W)),
            _c(mm.multiplier_row, aw),
            Mux(
                _eq(ld, _c(1, _LOAD_W)),
                _c(mm.multiplicand_row, aw),
                Mux(
                    _eq(ld, _c(2, _LOAD_W)),
                    _c(mm.modulus_row, aw),
                    Mux(
                        _eq(ld, _c(3, _LOAD_W)),
                        _c(mm.sum_row, aw),
                        _c(mm.carry_row, aw),
                    ),
                ),
            ),
        ),
    )
    wire("w_ld_wen", 1, BinOp("lt", ld, _c(5, _LOAD_W)))

    # ---- single-row read port ----------------------------------------- #
    wire(
        "w_raddr",
        aw,
        Mux(
            _eq(Ref("state"), Ref("ST_LOAD")),
            _c(mm.multiplier_row, aw),
            _c(mm.sum_row, aw),
        ),
    )
    rdata = wire("w_rdata", n, MemRead("mem", Ref("w_raddr")))
    wire("w_ld_mult", shreg_w, BinOp("shl", rdata, _c(1, 1)))

    # ---- Booth window -> radix-4 LUT row ------------------------------- #
    wire("w_bw", 3, Slice(Ref("mult_sh"), shreg_w - 1, shreg_w - 3))
    window_row: Expr = _c(mm.radix4_row(RADIX4_ENCODER_TABLE[(1, 1, 1)]), aw)
    for value in range(6, -1, -1):
        bits = ((value >> 2) & 1, (value >> 1) & 1, value & 1)
        digit = RADIX4_ENCODER_TABLE[bits]
        window_row = Mux(
            _eq(Ref("w_bw"), _c(value, 3)),
            _c(mm.radix4_row(digit), aw),
            window_row,
        )
    wire("w_rad_addr", aw, window_row)

    # ---- overflow fold address ----------------------------------------- #
    overflow_base = mm.overflow_rows[0]
    gt7 = wire("w_rem_gt7", 1, BinOp("gt", Ref("rem"), _c(7, 6)))
    fold = wire("w_fold", 3, Mux(gt7, _c(7, 3), Slice(Ref("rem"), 2, 0)))
    wire("w_ovf_addr", aw, _add(_c(overflow_base, aw), fold))
    wire(
        "w_imc_addr",
        aw,
        Mux(_eq(Ref("it_sub"), Ref("IT_RAD")), Ref("w_rad_addr"), Ref("w_ovf_addr")),
    )

    # ---- logic-SA access: XOR3 / MAJ over three rows ------------------- #
    r0 = wire("w_r0", n, MemRead("mem", Ref("w_imc_addr")))
    r1 = wire("w_r1", n, MemRead("mem", _c(mm.sum_row, aw)))
    r2 = wire("w_r2", n, MemRead("mem", _c(mm.carry_row, aw)))
    wire("w_xor_low", n, BinOp("xor", BinOp("xor", r0, r1), r2))
    wire(
        "w_maj_low",
        n,
        _or(_or(_and(r0, r1), _and(r0, r2)), _and(r1, r2)),
    )
    wire("w_xor_top", 1, BinOp("xor", Ref("sum_msb"), Ref("carry_msb")))
    wire("w_maj_top", 1, _and(Ref("sum_msb"), Ref("carry_msb")))
    wire("w_new_sum", rw, Cat((Ref("w_xor_top"), Ref("w_xor_low"))))
    wire("w_maj_word", rw, Cat((Ref("w_maj_top"), Ref("w_maj_low"))))
    wire("w_sh_carry", n + 2, BinOp("shl", Ref("w_maj_word"), _c(1, 1)))
    esc = wire("w_esc", 1, Slice(Ref("w_sh_carry"), n + 1, n + 1))
    wire("w_new_carry", rw, Slice(Ref("w_sh_carry"), n, 0))

    # ---- overflow-index bookkeeping ------------------------------------ #
    pend4 = wire("w_pend4", 3, BinOp("shl", Ref("pend"), _c(2, 2)))
    wire("w_ovf_index", 6, _add(_add(Ref("shift_ovf"), esc), pend4))
    assigns.append(Assign("ovf_rem_zero", UnOp("not", gt7)))
    wire("w_rem_after", 6, _sub(Ref("rem"), fold))
    wire("w_pend_acc_next", 4, _add(Ref("pend_acc"), esc))

    # ---- shifted write-backs ------------------------------------------ #
    wire("w_s_sh", n + 3, BinOp("shl", Ref("sum_ff"), _c(2, 2)))
    wire("w_c_sh", n + 3, BinOp("shl", Ref("carry_ff"), _c(2, 2)))
    s_ovf = wire("w_s_sh_ovf", 2, Slice(Ref("w_s_sh"), n + 2, n + 1))
    c_ovf = wire("w_c_sh_ovf", 2, Slice(Ref("w_c_sh"), n + 2, n + 1))
    pend_gt1 = wire("w_pend_gt1", 1, BinOp("gt", Ref("pend_acc"), _c(1, 4)))
    pend_m1 = wire("w_pend_m1", 4, _sub(Ref("pend_acc"), _c(1, 1)))
    pend_extra = wire(
        "w_pend_extra",
        6,
        Mux(pend_gt1, BinOp("shl", pend_m1, _c(2, 2)), _c(0, 6)),
    )
    wire("w_shovf_next", 6, _add(_add(s_ovf, c_ovf), pend_extra))
    wire("w_pend_next", 1, BinOp("ne", Ref("pend_acc"), _c(0, 4)))
    wire("w_mult_sh2", shreg_w, BinOp("shl", Ref("mult_sh"), _c(2, 2)))

    # ---- precompute ALU ------------------------------------------------ #
    wire("w_pc_bb", n + 1, _add(Ref("b_reg"), Ref("b_reg")))
    wire("w_pc_oo", n + 1, _add(Ref("pc_oprev"), Ref("pc_o1")))
    wire("w_pc_pb", n + 1, _sub(Ref("p_reg"), Ref("b_reg")))
    wire("w_pc_pb2", n + 1, _sub(Ref("p_reg"), Ref("pc_b2")))
    wire(
        "w_pc_corr",
        n + 2,
        Mux(
            BinOp("ge", Ref("pc_t"), Ref("p_reg")),
            _sub(Ref("pc_t"), Ref("p_reg")),
            Ref("pc_t"),
        ),
    )
    # conditional-subtract chain reducing 2^(n+1) below p (p >= 2^(n-3),
    # enforced by validate_operands, so five stages suffice)
    reduce_in: Ref = Ref("pc_t")
    for stage, shift in enumerate((4, 3, 2, 1, 0)):
        shifted_p = wire(
            f"w_psh{shift}", n + 5, BinOp("shl", Ref("p_reg"), _c(shift, 3))
        ) if shift else Ref("p_reg")
        reduce_in = wire(
            f"w_red{stage}",
            n + 2,
            Mux(
                BinOp("ge", reduce_in, shifted_p),
                _sub(reduce_in, shifted_p),
                reduce_in,
            ),
        )

    # precompute write port (microprogram-indexed)
    pc = Ref("pc_step")
    pc_wen: Expr = _c(0, 1)
    pc_addr: Expr = _c(0, aw)
    pc_data: Expr = _c(0, n)
    for index in range(len(pc_steps) - 1, -1, -1):
        step = pc_steps[index]
        if step.write_row is None:
            continue
        is_step = _eq(pc, _c(index, _PC_W))
        pc_wen = Mux(is_step, _c(1, 1), pc_wen)
        pc_addr = Mux(is_step, _c(step.write_row, aw), pc_addr)
        pc_data = Mux(is_step, step.write_data, pc_data)
    wire("w_pc_wen", 1, pc_wen)
    wire("w_pc_addr", aw, pc_addr)
    wire("w_pc_data", n, pc_data)

    # ---- iterate write port -------------------------------------------- #
    it = Ref("it_sub")
    carry12 = wire(
        "w_it_carry",
        1,
        _or(
            _or(_eq(it, Ref("IT_WC")), _eq(it, Ref("IT_EWC"))),
            _eq(it, Ref("IT_WC2")),
        ),
    )
    wire(
        "w_it_wen",
        1,
        _and(
            BinOp("ne", it, Ref("IT_RAD")),
            BinOp("ne", it, Ref("IT_OVF")),
        ),
    )
    wire(
        "w_it_addr",
        aw,
        Mux(carry12, _c(mm.carry_row, aw), _c(mm.sum_row, aw)),
    )
    wire(
        "w_it_data",
        n,
        Mux(
            _eq(it, Ref("IT_WS2")),
            Slice(Ref("w_s_sh"), n - 1, 0),
            Mux(
                _eq(it, Ref("IT_WC2")),
                Slice(Ref("w_c_sh"), n - 1, 0),
                Mux(
                    carry12,
                    Slice(Ref("carry_ff"), n - 1, 0),
                    Slice(Ref("sum_ff"), n - 1, 0),
                ),
            ),
        ),
    )

    # ---- merged write port --------------------------------------------- #
    in_load = wire("w_in_load", 1, _eq(Ref("state"), Ref("ST_LOAD")))
    in_pc = wire("w_in_pc", 1, _eq(Ref("state"), Ref("ST_PRECOMPUTE")))
    in_it = wire("w_in_it", 1, _eq(Ref("state"), Ref("ST_ITERATE")))
    wire(
        "wen",
        1,
        _or(
            _or(
                _and(in_load, Ref("w_ld_wen")),
                _and(in_pc, Ref("w_pc_wen")),
            ),
            _and(in_it, Ref("w_it_wen")),
        ),
    )
    wire(
        "waddr",
        aw,
        Mux(
            in_load,
            Ref("w_ld_addr"),
            Mux(in_pc, Ref("w_pc_addr"), Ref("w_it_addr")),
        ),
    )
    wire(
        "wdata",
        n,
        Mux(
            in_load,
            Ref("w_ld_data"),
            Mux(in_pc, Ref("w_pc_data"), Ref("w_it_data")),
        ),
    )

    # ---- finalisation -------------------------------------------------- #
    wire("w_pf_sh", n + 6, BinOp("shl", Ref("pend_fin"), _c(n + 1, 10)))
    wire(
        "w_fin_add",
        n + 6,
        _add(_add(Ref("fin_sum"), Ref("carry_ff")), Ref("w_pf_sh")),
    )
    wire("w_fin_subv", n + 6, _sub(Ref("total"), Ref("p_reg")))
    wire(
        "w_fin_next",
        n + 6,
        Mux(
            _eq(Ref("fin_sub"), Ref("F_ADD")),
            Ref("w_fin_add"),
            Ref("w_fin_subv"),
        ),
    )
    assigns.append(Assign("fin_ge_p", BinOp("ge", Ref("w_fin_next"), Ref("p_reg"))))
    assigns.append(Assign("product", Slice(Ref("total"), n - 1, 0)))

    # ---- sequential process -------------------------------------------- #
    clear_flags = (
        SAssign("sum_msb", _c(0, 1)),
        SAssign("carry_msb", _c(0, 1)),
        SAssign("shift_ovf", _c(0, 6)),
        SAssign("pend", _c(0, 1)),
        SAssign("pend_acc", _c(0, 4)),
    )
    pc_body: List[Stmt] = []
    for index, step in enumerate(pc_steps):
        if not step.updates:
            continue
        pc_body.append(
            SIf(
                _eq(pc, _c(index, _PC_W)),
                tuple(SAssign(target, expr) for target, expr in step.updates),
            )
        )

    body: Tuple[Stmt, ...] = (
        SIf(
            Ref("rst"),
            clear_flags,
            (
                SIf(
                    _eq(Ref("state"), Ref("ST_LOAD")),
                    (
                        SIf(_eq(ld, _c(1, _LOAD_W)), (SAssign("b_reg", Ref("op_b")),)),
                        SIf(_eq(ld, _c(2, _LOAD_W)), (SAssign("p_reg", Ref("op_p")),)),
                        SIf(
                            _eq(ld, _c(5, _LOAD_W)),
                            (SAssign("mult_sh", Ref("w_ld_mult")),) + clear_flags,
                        ),
                    ),
                ),
                SIf(_eq(Ref("state"), Ref("ST_PRECOMPUTE")), tuple(pc_body)),
                SIf(
                    _eq(Ref("state"), Ref("ST_ITERATE")),
                    (
                        SIf(
                            _eq(it, Ref("IT_RAD")),
                            (
                                SAssign("sum_ff", Ref("w_new_sum")),
                                SAssign("carry_ff", Ref("w_new_carry")),
                                SAssign("rem", Ref("w_ovf_index")),
                            ),
                        ),
                        SIf(
                            _eq(it, Ref("IT_OVF")),
                            (
                                SAssign("sum_ff", Ref("w_new_sum")),
                                SAssign("carry_ff", Ref("w_new_carry")),
                                SAssign("pend_acc", Ref("w_pend_acc_next")),
                                SAssign("rem", Ref("w_rem_after")),
                            ),
                        ),
                        SIf(
                            _or(_eq(it, Ref("IT_WS")), _eq(it, Ref("IT_EWS"))),
                            (SAssign("sum_msb", Slice(Ref("sum_ff"), n, n)),),
                        ),
                        SIf(
                            _or(_eq(it, Ref("IT_WC")), _eq(it, Ref("IT_EWC"))),
                            (SAssign("carry_msb", Slice(Ref("carry_ff"), n, n)),),
                        ),
                        SIf(
                            _eq(it, Ref("IT_WS2")),
                            (
                                SAssign("sum_msb", Slice(Ref("w_s_sh"), n, n)),
                                SAssign("sum_ovf2", Ref("w_s_sh_ovf")),
                            ),
                        ),
                        SIf(
                            _eq(it, Ref("IT_WC2")),
                            (
                                SAssign("carry_msb", Slice(Ref("w_c_sh"), n, n)),
                                SAssign("shift_ovf", Ref("w_shovf_next")),
                                SAssign("pend", Ref("w_pend_next")),
                                SAssign("pend_acc", _c(0, 4)),
                                SAssign("mult_sh", Ref("w_mult_sh2")),
                            ),
                        ),
                        SIf(
                            _eq(it, Ref("IT_WSF")),
                            (
                                SAssign("sum_msb", Slice(Ref("sum_ff"), n, n)),
                                SAssign("pend_fin", Ref("pend_acc")),
                            ),
                        ),
                    ),
                ),
                SIf(
                    _eq(Ref("state"), Ref("ST_FINALIZE")),
                    (
                        SIf(
                            _eq(Ref("fin_sub"), Ref("F_READ")),
                            (
                                SAssign(
                                    "fin_sum",
                                    Cat((Ref("sum_msb"), Ref("w_rdata"))),
                                ),
                            ),
                            (SAssign("total", Ref("w_fin_next")),),
                        ),
                    ),
                ),
                SIf(
                    Ref("wen"),
                    (MemWrite("mem", Ref("waddr"), Ref("wdata")),),
                ),
            ),
        ),
    )

    module = Module(
        name="modsram_datapath",
        ports=ports,
        regs=regs,
        wires=tuple(wires),
        memories=memories,
        fsm_states=fsm_states,
        assigns=tuple(assigns),
        processes=(Process("dp_seq", body),),
    )
    module.validate()
    return module


def _build_top(config: ModSRAMConfig, ctrl: Module, datapath: Module) -> Module:
    """The macro top level: controller + datapath, handshake pins out."""
    n = config.bitwidth
    ports = (
        Port("clk", 1, "in"),
        Port("rst", 1, "in"),
        Port("start", 1, "in"),
        Port("skip_pc", 1, "in"),
        Port("op_a", n, "in"),
        Port("op_b", n, "in"),
        Port("op_p", n, "in"),
        Port("product", n, "out"),
        Port("done", 1, "out"),
        Port("state", _STATE_W, "out"),
        Port("extra_fold", 1, "out"),
    )
    wires = (
        Wire("s_state", _STATE_W),
        Wire("s_load", _LOAD_W),
        Wire("s_pc", _PC_W),
        Wire("s_it", _IT_W),
        Wire("s_fin", _FIN_W),
        Wire("s_rem_zero", 1),
        Wire("s_ge", 1),
        Wire("s_done", 1),
        Wire("s_extra", 1),
        Wire("s_product", n),
    )
    assigns = (
        Assign("state", Ref("s_state")),
        Assign("done", Ref("s_done")),
        Assign("extra_fold", Ref("s_extra")),
        Assign("product", Ref("s_product")),
    )
    instances = (
        Instance(
            ctrl,
            "ctrl",
            {
                "clk": "clk",
                "rst": "rst",
                "start": "start",
                "skip_pc": "skip_pc",
                "ovf_rem_zero": "s_rem_zero",
                "fin_ge_p": "s_ge",
                "state": "s_state",
                "load_step": "s_load",
                "pc_step": "s_pc",
                "it_sub": "s_it",
                "fin_sub": "s_fin",
                "done": "s_done",
                "extra_fold": "s_extra",
            },
        ),
        Instance(
            datapath,
            "dp",
            {
                "clk": "clk",
                "rst": "rst",
                "op_a": "op_a",
                "op_b": "op_b",
                "op_p": "op_p",
                "state": "s_state",
                "load_step": "s_load",
                "pc_step": "s_pc",
                "it_sub": "s_it",
                "fin_sub": "s_fin",
                "ovf_rem_zero": "s_rem_zero",
                "fin_ge_p": "s_ge",
                "product": "s_product",
            },
        ),
    )
    module = Module(
        name="modsram_macro",
        ports=ports,
        wires=wires,
        assigns=assigns,
        instances=instances,
    )
    module.validate()
    return module


@dataclass(frozen=True)
class MacroDesign:
    """One elaborated macro: the module hierarchy plus its encodings."""

    config: ModSRAMConfig
    ctrl: Module
    datapath: Module
    top: Module

    @property
    def modules(self) -> Tuple[Module, ...]:
        """Every module, leaves first (the Verilog emission order)."""
        return (self.ctrl, self.datapath, self.top)

    @property
    def state_values(self) -> Dict[str, int]:
        """Controller state name → encoded value (for testbenches)."""
        return dict(STATE_ENCODING)


def elaborate_macro(config: Optional[ModSRAMConfig] = None) -> MacroDesign:
    """Elaborate one ModSRAM macro for a configuration (geometry-aware)."""
    config = config or ModSRAMConfig()
    mm = MemoryMap(config)
    ctrl = _build_controller(config)
    datapath = _build_datapath(config, mm)
    top = _build_top(config, ctrl, datapath)
    return MacroDesign(config=config, ctrl=ctrl, datapath=datapath, top=top)
