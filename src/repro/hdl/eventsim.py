"""Event-driven simulation of the structural IR, and the HDL fidelity tier.

:class:`EventSimulator` executes a flattened :class:`~repro.hdl.ir.Module`
with classic discrete-event semantics: an event wheel keyed on the cycle
number for scheduled stimulus, delta-cycle settling of the combinational
network between clock edges, and nonblocking register/memory commits at the
edge.  Expressions are compiled once to Python closures, so a multiply on
the elaborated macro runs in milliseconds, not minutes.

On top of the simulator sit the co-simulation harness
(:class:`HdlMacroSim`, the start/done handshake protocol of the macro) and
:class:`HdlModSRAM`, the fourth fidelity tier: it drives the elaborated RTL
testbench-style and reports the *measured* per-phase cycle counts in the
same :class:`~repro.modsram.report.CycleReport` shape as the other tiers —
which the tests then assert equal to
:class:`~repro.modsram.analytical.AnalyticalCostModel` field by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ControllerError
from repro.hdl.elaborate import MacroDesign, elaborate_macro
from repro.hdl.ir import (
    Assign,
    BinOp,
    Cat,
    Const,
    Expr,
    HdlError,
    MemRead,
    MemWrite,
    Module,
    Mux,
    Ref,
    SAssign,
    SIf,
    Slice,
    Stmt,
    UnOp,
)
from repro.modsram.config import ModSRAMConfig
from repro.modsram.kernel import LutResidency, validate_operands
from repro.modsram.report import CycleReport, MultiplicationResult
from repro.modsram.trace import ExecutionTrace

__all__ = ["EventSimulator", "HdlMacroSim", "HdlRunTrace", "HdlModSRAM"]

_ExprFn = Callable[[Dict[str, int], Dict[str, List[int]]], int]


def _mask(width: int) -> int:
    return (1 << width) - 1


class EventSimulator:
    """Discrete-event simulator for one (flattened) IR module.

    The public surface is testbench-shaped: :meth:`poke` inputs,
    :meth:`peek` any signal, :meth:`at` to schedule a poke on the event
    wheel, :meth:`step` to advance whole clock cycles.  ``events`` counts
    every signal-value change (combinational settling plus register and
    memory commits) — the quantity ``benchmarks/bench_hdl.py`` reports as
    events per second.
    """

    def __init__(self, module: Module) -> None:
        module.validate()
        flat = module.flatten()
        self.module = flat
        self._widths = flat.signal_widths()
        self._mem_decls = flat.memory_table()
        self.values: Dict[str, int] = {name: 0 for name in self._widths}
        for state in flat.fsm_states:
            self.values[state.name] = state.value
        for reg in flat.regs:
            self.values[reg.name] = reg.reset
        self.memories: Dict[str, List[int]] = {
            name: [0] * decl.depth for name, decl in self._mem_decls.items()
        }
        self._reg_masks = {reg.name: _mask(reg.width) for reg in flat.regs}
        self._input_ports = {
            port.name for port in flat.ports if port.direction == "in"
        }
        self.cycle = 0
        self.events = 0
        self.delta_passes = 0
        self._wheel: Dict[int, List[Tuple[str, int]]] = {}
        self._assign_fns = self._compile_assigns()
        self._process_fns = [
            self._compile_stmts(process.body) for process in flat.processes
        ]
        self.settle()

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def _compile_expr(self, expr: Expr) -> _ExprFn:
        if isinstance(expr, Const):
            value = expr.value
            return lambda s, m: value
        if isinstance(expr, Ref):
            name = expr.name
            return lambda s, m: s[name]
        if isinstance(expr, UnOp):
            fn = self._compile_expr(expr.operand)
            return lambda s, m: 0 if fn(s, m) else 1
        if isinstance(expr, BinOp):
            left = self._compile_expr(expr.left)
            right = self._compile_expr(expr.right)
            op = expr.op
            if op == "add":
                return lambda s, m: left(s, m) + right(s, m)
            if op == "sub":
                return lambda s, m: left(s, m) - right(s, m)
            if op == "and":
                return lambda s, m: left(s, m) & right(s, m)
            if op == "or":
                return lambda s, m: left(s, m) | right(s, m)
            if op == "xor":
                return lambda s, m: left(s, m) ^ right(s, m)
            if op == "shl":
                amount = expr.right.value  # Const, enforced by validate()
                return lambda s, m: left(s, m) << amount
            if op == "shr":
                amount = expr.right.value
                return lambda s, m: left(s, m) >> amount
            if op == "eq":
                return lambda s, m: 1 if left(s, m) == right(s, m) else 0
            if op == "ne":
                return lambda s, m: 1 if left(s, m) != right(s, m) else 0
            if op == "lt":
                return lambda s, m: 1 if left(s, m) < right(s, m) else 0
            if op == "le":
                return lambda s, m: 1 if left(s, m) <= right(s, m) else 0
            if op == "gt":
                return lambda s, m: 1 if left(s, m) > right(s, m) else 0
            if op == "ge":
                return lambda s, m: 1 if left(s, m) >= right(s, m) else 0
            raise HdlError(f"unknown binary op {op!r}")
        if isinstance(expr, Mux):
            cond = self._compile_expr(expr.cond)
            if_true = self._compile_expr(expr.if_true)
            if_false = self._compile_expr(expr.if_false)
            return lambda s, m: if_true(s, m) if cond(s, m) else if_false(s, m)
        if isinstance(expr, Slice):
            fn = self._compile_expr(expr.ref)
            lsb = expr.lsb
            mask = _mask(expr.msb - expr.lsb + 1)
            return lambda s, m: (fn(s, m) >> lsb) & mask
        if isinstance(expr, Cat):
            parts = [
                (
                    self._compile_expr(part),
                    expr_width_of(part, self._widths, self._mem_decls),
                )
                for part in expr.parts
            ]

            def cat(s: Dict[str, int], m: Dict[str, List[int]]) -> int:
                acc = 0
                for fn, width in parts:
                    acc = (acc << width) | (fn(s, m) & _mask(width))
                return acc

            return cat
        if isinstance(expr, MemRead):
            name = expr.memory
            addr = self._compile_expr(expr.addr)
            depth = self._mem_decls[name].depth

            def read(s: Dict[str, int], m: Dict[str, List[int]]) -> int:
                index = addr(s, m)
                if not 0 <= index < depth:
                    raise HdlError(
                        f"memory {name!r} read out of range: {index}"
                    )
                return m[name][index]

            return read
        raise HdlError(f"not an expression: {expr!r}")

    def _expr_deps(self, expr: Expr, out: set) -> None:
        if isinstance(expr, Ref):
            out.add(expr.name)
        elif isinstance(expr, UnOp):
            self._expr_deps(expr.operand, out)
        elif isinstance(expr, BinOp):
            self._expr_deps(expr.left, out)
            self._expr_deps(expr.right, out)
        elif isinstance(expr, Mux):
            self._expr_deps(expr.cond, out)
            self._expr_deps(expr.if_true, out)
            self._expr_deps(expr.if_false, out)
        elif isinstance(expr, Slice):
            self._expr_deps(expr.ref, out)
        elif isinstance(expr, Cat):
            for part in expr.parts:
                self._expr_deps(part, out)
        elif isinstance(expr, MemRead):
            self._expr_deps(expr.addr, out)

    def _compile_assigns(self) -> List[Tuple[str, int, _ExprFn]]:
        """Topologically order the continuous assigns and compile them.

        Memory contents only change at clock edges, so a ``MemRead`` does
        not create a combinational dependency; a cycle among the wires is a
        genuine combinational loop and raises :class:`HdlError`.
        """
        assigns = list(self.module.assigns)
        driven = {assign.target for assign in assigns}
        deps: Dict[str, set] = {}
        for assign in assigns:
            refs: set = set()
            self._expr_deps(assign.expr, refs)
            deps[assign.target] = {name for name in refs if name in driven}
        ordered: List[Assign] = []
        placed: set = set()
        pending = assigns
        while pending:
            progress = []
            stuck = []
            for assign in pending:
                if deps[assign.target] <= placed:
                    progress.append(assign)
                else:
                    stuck.append(assign)
            if not progress:
                loop = sorted(assign.target for assign in stuck)
                raise HdlError(f"combinational loop through {loop}")
            for assign in progress:
                ordered.append(assign)
                placed.add(assign.target)
            pending = stuck
        return [
            (
                assign.target,
                _mask(self._widths[assign.target]),
                self._compile_expr(assign.expr),
            )
            for assign in ordered
        ]

    def _compile_stmts(
        self, body: Tuple[Stmt, ...]
    ) -> Callable[[Dict[str, int], Dict[str, List[int]], Dict[str, int], list], None]:
        compiled = []
        for stmt in body:
            if isinstance(stmt, SAssign):
                target = stmt.target
                fn = self._compile_expr(stmt.expr)
                compiled.append(
                    lambda s, m, regs, mems, target=target, fn=fn: regs.__setitem__(
                        target, fn(s, m)
                    )
                )
            elif isinstance(stmt, MemWrite):
                name = stmt.memory
                addr = self._compile_expr(stmt.addr)
                data = self._compile_expr(stmt.data)
                compiled.append(
                    lambda s, m, regs, mems, name=name, addr=addr, data=data: mems.append(
                        (name, addr(s, m), data(s, m))
                    )
                )
            elif isinstance(stmt, SIf):
                cond = self._compile_expr(stmt.cond)
                then = self._compile_stmts(stmt.then)
                orelse = self._compile_stmts(stmt.orelse) if stmt.orelse else None

                def run_if(s, m, regs, mems, cond=cond, then=then, orelse=orelse):
                    if cond(s, m):
                        then(s, m, regs, mems)
                    elif orelse is not None:
                        orelse(s, m, regs, mems)

                compiled.append(run_if)
            else:
                raise HdlError(f"not a statement: {stmt!r}")

        def run(s, m, regs, mems, compiled=tuple(compiled)):
            for fn in compiled:
                fn(s, m, regs, mems)

        return run

    # ------------------------------------------------------------------ #
    # testbench surface
    # ------------------------------------------------------------------ #
    def poke(self, name: str, value: int) -> None:
        """Drive an input port (takes effect at the next :meth:`settle`)."""
        if name not in self._input_ports:
            raise HdlError(f"{name!r} is not an input port")
        self.values[name] = value & _mask(self._widths[name])

    def peek(self, name: str) -> int:
        """Read the settled value of any signal."""
        try:
            return self.values[name]
        except KeyError:
            raise HdlError(f"unknown signal {name!r}") from None

    def peek_memory(self, name: str, addr: int) -> int:
        """Read one memory row directly (backdoor, no cycle charged)."""
        return self.memories[name][addr]

    def at(self, cycle: int, name: str, value: int) -> None:
        """Schedule a poke on the event wheel for a future cycle."""
        if cycle < self.cycle:
            raise HdlError(
                f"cannot schedule at cycle {cycle}; now at {self.cycle}"
            )
        self._wheel.setdefault(cycle, []).append((name, value))

    def settle(self) -> int:
        """Run delta cycles until the combinational network is stable.

        Assigns are evaluated in topological order, so the first pass
        normally settles everything and the second confirms the fixpoint;
        the pass count is bounded to catch oscillation through future IR
        extensions.  Returns the number of delta passes taken.
        """
        values = self.values
        memories = self.memories
        passes = 0
        limit = len(self._assign_fns) + 2
        while True:
            passes += 1
            changed = 0
            for target, mask, fn in self._assign_fns:
                value = fn(values, memories) & mask
                if values[target] != value:
                    values[target] = value
                    changed += 1
            self.events += changed
            if not changed:
                break
            if passes > limit:
                raise HdlError("combinational network failed to settle")
        self.delta_passes += passes
        return passes

    def step(self, cycles: int = 1) -> None:
        """Advance whole clock cycles (wheel → settle → edge → settle)."""
        for _ in range(cycles):
            for name, value in self._wheel.pop(self.cycle, ()):
                self.poke(name, value)
            self.settle()
            reg_updates: Dict[str, int] = {}
            mem_updates: list = []
            for process in self._process_fns:
                process(self.values, self.memories, reg_updates, mem_updates)
            for name, value in reg_updates.items():
                value &= self._reg_masks[name]
                if self.values[name] != value:
                    self.values[name] = value
                    self.events += 1
            for name, addr, data in mem_updates:
                decl = self._mem_decls[name]
                if not 0 <= addr < decl.depth:
                    raise HdlError(f"memory {name!r} write out of range: {addr}")
                data &= _mask(decl.width)
                if self.memories[name][addr] != data:
                    self.memories[name][addr] = data
                    self.events += 1
            self.cycle += 1
            self.settle()

    def run_until(self, predicate: Callable[["EventSimulator"], bool], max_cycles: int) -> int:
        """Step until ``predicate(self)`` holds; returns cycles consumed."""
        for consumed in range(max_cycles + 1):
            if predicate(self):
                return consumed
            self.step()
        raise HdlError(f"predicate still false after {max_cycles} cycles")


def expr_width_of(expr: Expr, widths, mem_decls) -> int:
    """Width helper bridging :func:`repro.hdl.ir.expr_width` to Memory decls."""
    from repro.hdl.ir import expr_width

    return expr_width(
        expr, widths, {name: decl.width for name, decl in mem_decls.items()}
    )


# --------------------------------------------------------------------------- #
# co-simulation harness
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class HdlRunTrace:
    """Measured outcome of one multiplication on the simulated macro."""

    product: int
    load_cycles: int
    precompute_cycles: int
    iteration_cycles: int
    finalize_cycles: int
    extra_folds: int

    @property
    def total_cycles(self) -> int:
        """Every cycle from the start pulse to ``done``."""
        return (
            self.load_cycles
            + self.precompute_cycles
            + self.iteration_cycles
            + self.finalize_cycles
        )


class HdlMacroSim:
    """Protocol driver for the elaborated macro (start/done handshake).

    Owns one :class:`EventSimulator` over the flattened macro and knows the
    top-level pin protocol: present operands, pulse ``start``, count cycles
    per controller state until ``done``, read ``product``.
    """

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or ModSRAMConfig()
        self.design: MacroDesign = elaborate_macro(self.config)
        self.sim = EventSimulator(self.design.top)
        self._states = self.design.state_values

    def run(self, a: int, b: int, modulus: int, skip_precompute: bool) -> HdlRunTrace:
        """Execute one multiplication and measure its per-phase schedule."""
        sim = self.sim
        states = self._states
        if sim.peek("state") != states["ST_IDLE"]:
            raise ControllerError("macro is not idle at start of run")
        sim.poke("op_a", a)
        sim.poke("op_b", b)
        sim.poke("op_p", modulus)
        sim.poke("skip_pc", 1 if skip_precompute else 0)
        sim.poke("start", 1)
        sim.step()  # IDLE -> LOAD edge
        sim.poke("start", 0)

        counts = {
            states["ST_LOAD"]: 0,
            states["ST_PRECOMPUTE"]: 0,
            states["ST_ITERATE"]: 0,
            states["ST_FINALIZE"]: 0,
        }
        extra_folds = 0
        # Generous bound: the schedule is ~9 cycles per iteration even with
        # one extra fold per iteration, plus load/LUT-fill/finalise slack.
        guard = 12 * self.config.iterations + 4 * self.config.rows + 64
        done = states["ST_DONE"]
        while sim.peek("state") != done:
            state = sim.peek("state")
            if state not in counts:
                raise ControllerError(f"macro in unexpected state {state}")
            counts[state] += 1
            extra_folds += sim.peek("extra_fold")
            sim.step()
            guard -= 1
            if guard < 0:
                raise ControllerError(
                    "HDL macro did not reach DONE within the cycle budget"
                )
        product = sim.peek("product")
        sim.step()  # DONE -> IDLE, ready for the next run
        return HdlRunTrace(
            product=product,
            load_cycles=counts[states["ST_LOAD"]],
            precompute_cycles=counts[states["ST_PRECOMPUTE"]],
            iteration_cycles=counts[states["ST_ITERATE"]],
            finalize_cycles=counts[states["ST_FINALIZE"]],
            extra_folds=extra_folds,
        )


class HdlModSRAM:
    """The ``hdl`` fidelity tier: co-simulation of the elaborated RTL.

    Same ``multiply`` / ``multiply_many`` surface as the other tiers, but
    the product comes out of the simulated datapath and the
    :class:`~repro.modsram.report.CycleReport` fields are *measured* by
    counting controller states — nothing is taken from the closed-form
    algebra, which is exactly what makes the field-by-field comparison
    against :class:`~repro.modsram.analytical.AnalyticalCostModel` a real
    cross-check.
    """

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or ModSRAMConfig()
        self.macro = HdlMacroSim(self.config)
        self.lut_residency = LutResidency()

    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Compute ``a * b mod modulus`` on the simulated macro."""
        validate_operands(self.config, a, b, modulus)
        reused = self.lut_residency.matches(b, modulus)
        trace = self.macro.run(a, b, modulus, skip_precompute=reused)
        self.lut_residency.retain(b, modulus)
        report = CycleReport(
            iterations=self.config.iterations,
            load_cycles=trace.load_cycles,
            precompute_cycles=trace.precompute_cycles,
            iteration_cycles=trace.iteration_cycles,
            finalize_cycles=trace.finalize_cycles,
            extra_overflow_folds=trace.extra_folds,
            lut_reused=reused,
            frequency_mhz=self.config.frequency_mhz,
        )
        return MultiplicationResult(
            product=trace.product,
            report=report,
            trace=ExecutionTrace(enabled=False),
        )

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Multiply a batch of operand pairs, reusing resident LUTs."""
        return [self.multiply(a, b, modulus) for a, b in pairs]
