"""Operation counting shared by all subsystems."""

from repro.instrumentation.counters import OperationCounter, ScopedCounter

__all__ = ["OperationCounter", "ScopedCounter"]
