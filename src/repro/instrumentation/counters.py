"""Hierarchical operation counters.

The paper's application-level argument (Figure 7) is about operation counts:
how many modular multiplications, memory accesses and register writes the
ZKP kernels perform, and which of those ModSRAM eliminates.  Every subsystem
in this library that executes work therefore reports into an
:class:`OperationCounter`, so the analysis layer can aggregate counts the
same way for the reference software, for the PIM model and for the
application kernels.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["OperationCounter", "ScopedCounter"]


class OperationCounter:
    """A named multiset of operation counts with optional nested scopes.

    Counts are plain string-keyed integers (``"modmul"``, ``"memory_read"``,
    ``"register_write"`` ...).  Scopes let a kernel attribute counts to a
    phase (e.g. ``"ntt/stage3"``) while still rolling everything up into the
    totals.
    """

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self._totals: Counter = Counter()
        self._scoped: Dict[str, Counter] = {}
        self._scope_stack: List[str] = []

    # ------------------------------------------------------------------ #
    # counting
    # ------------------------------------------------------------------ #
    def add(self, operation: str, amount: int = 1) -> None:
        """Add ``amount`` occurrences of ``operation``."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._totals[operation] += amount
        if self._scope_stack:
            scope = self._scope_stack[-1]
            self._scoped.setdefault(scope, Counter())[operation] += amount

    def increment(self, operation: str) -> None:
        """Add a single occurrence of ``operation``."""
        self.add(operation, 1)

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Attribute counts recorded inside the ``with`` block to ``name``."""
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def count(self, operation: str) -> int:
        """Total occurrences of ``operation``."""
        return self._totals.get(operation, 0)

    def total(self) -> int:
        """Sum of every counter."""
        return sum(self._totals.values())

    def operations(self) -> List[str]:
        """Sorted operation names seen so far."""
        return sorted(self._totals)

    def as_dict(self) -> Dict[str, int]:
        """All totals as a plain dictionary."""
        return dict(sorted(self._totals.items()))

    def scoped(self, scope: str) -> Dict[str, int]:
        """Counts attributed to one scope."""
        return dict(sorted(self._scoped.get(scope, Counter()).items()))

    def scopes(self) -> List[str]:
        """Sorted scope names seen so far."""
        return sorted(self._scoped)

    # ------------------------------------------------------------------ #
    # management
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear every counter and scope."""
        self._totals.clear()
        self._scoped.clear()

    def merged_with(self, other: "OperationCounter") -> "OperationCounter":
        """Return a new counter with summed totals (scopes are kept separate)."""
        merged = OperationCounter(name=f"{self.name}+{other.name}")
        merged._totals = self._totals + other._totals
        for scope, counts in self._scoped.items():
            merged._scoped[scope] = Counter(counts)
        for scope, counts in other._scoped.items():
            merged._scoped.setdefault(scope, Counter())
            merged._scoped[scope] += counts
        return merged

    def __repr__(self) -> str:
        return f"OperationCounter(name={self.name!r}, totals={dict(self._totals)})"


@dataclass
class ScopedCounter:
    """A lightweight view adding counts to a parent under a fixed scope."""

    parent: OperationCounter
    scope_name: str

    def add(self, operation: str, amount: int = 1) -> None:
        """Add ``amount`` of ``operation`` under this view's scope."""
        with self.parent.scope(self.scope_name):
            self.parent.add(operation, amount)

    def increment(self, operation: str) -> None:
        """Add one occurrence of ``operation`` under this view's scope."""
        self.add(operation, 1)
