"""Graph constructors for the ECC / ZKP workloads the paper motivates.

These builders are the canonical, dependency-aware form of the flat-stream
generators in ``ecc/streams.py`` and ``zkp/streams.py``: the node
*emission order* is byte-identical to the streams — so ``graph.to_jobs()``
reproduces each stream exactly — while every node additionally carries the
dependency edges the streams cannot express.  The streams remain
independent O(1)-memory generators (huge workloads schedule without
materialising a graph); the equivalence is pinned both ways by
``tests/workloads/test_builders.py``, so edit the two sides together.

The dependency model follows the point-operation formulas of
:mod:`repro.modsram.scheduler`: within an operation, a multiplication
depends on the in-operation nodes producing its operands (including
derived values like ``h = u2 - x1``, whose addition/subtraction chains are
folded into the edges); across operations, the nodes consuming the running
point depend on the previous operation's exit nodes.  That is conservative
— it never under-synchronises — yet still exposes the intra-request
parallelism that matters: independent multiplications inside one doubling,
the ECDSA nonce inversion running concurrently with ``k·G``, whole NTT
stages of independent butterflies, and MSM bucket chains that only meet at
the window reduction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import OperandRangeError
from repro.modsram.scheduler import DOUBLING_SEQUENCE, MIXED_ADDITION_SEQUENCE
from repro.workloads.graph import Operand, Ref, WorkloadGraph

__all__ = [
    "point_operation_graph",
    "scalar_multiplication_graph",
    "ecdsa_sign_graph",
    "ntt_graph",
    "msm_graph",
    "product_tree_graph",
]

#: Operand names that are per-ladder state: nodes consuming them depend on
#: the previous point operation (they are the running point's coordinates).
_RUNNING_POINT = frozenset({"x1", "y1", "z1"})

#: Operand names that are constants or affine base-point inputs: consuming
#: them creates no cross-operation dependency.
_CONSTANT_INPUTS = frozenset({"x2", "y2", "three", "modulus"})

#: Derived (addition/subtraction) values of the doubling formula, mapped to
#: the multiplication products they are computed from: ``m = 3·xx`` and
#: ``x3 = mm - 2s`` (so ``s_minus_x3`` needs both ``mm`` and ``s``).
_DOUBLING_DERIVED: Mapping[str, Tuple[str, ...]] = {
    "m": ("xx",),
    "s_minus_x3": ("mm", "s"),
}

#: Derived values of the mixed addition: ``h = u2 - x1``, ``r = s2 - y1``
#: and ``x3 = rr - hhh - 2v`` (behind ``v_minus_x3``).
_MIXED_DERIVED: Mapping[str, Tuple[str, ...]] = {
    "h": ("u2",),
    "r": ("s2",),
    "v_minus_x3": ("v", "rr", "hhh"),
}

_DERIVED_BY_SEQUENCE = {
    id(DOUBLING_SEQUENCE): _DOUBLING_DERIVED,
    id(MIXED_ADDITION_SEQUENCE): _MIXED_DERIVED,
}


def _append_point_operation(
    graph: WorkloadGraph,
    sequence: Sequence[Tuple[str, str, str]],
    scope: str,
    tag: Optional[str] = None,
    entry_deps: Sequence[int] = (),
    derived: Optional[Mapping[str, Tuple[str, ...]]] = None,
    field_name: str = "",
    priority: int = 0,
) -> List[int]:
    """Append one point operation's multiplications; return its exit nodes.

    ``scope`` prefixes every multiplicand key (LUT names are per operation
    instance, exactly like the legacy streams); ``entry_deps`` are the
    previous operation's exits, inherited by every node that consumes the
    running point.  Exit nodes are those no later node of the *same*
    operation depends on — the next ladder step chains off them.
    """
    if derived is None:
        derived = _DERIVED_BY_SEQUENCE.get(id(sequence), {})
    if tag is None:
        tag = scope
    producer: Dict[str, int] = {}
    added: List[int] = []
    used_in_op: set = set()
    for product, multiplier, multiplicand in sequence:
        deps: set = set()
        for operand in (multiplier, multiplicand):
            if operand in producer:
                deps.add(producer[operand])
                continue
            sources = [
                producer[source]
                for source in derived.get(operand, ())
                if source in producer
            ]
            if sources:
                deps.update(sources)
            elif operand in _RUNNING_POINT or operand not in _CONSTANT_INPUTS:
                deps.update(entry_deps)
        index = graph.add(
            multiplicand=f"{scope}.{multiplicand}",
            deps=deps,
            tag=tag,
            field_name=field_name,
            priority=priority,
        )
        used_in_op.update(deps)
        producer[product] = index
        added.append(index)
    return [index for index in added if index not in used_in_op]


def point_operation_graph(
    sequence: Sequence[Tuple[str, str, str]],
    tag: str = "point-op",
    field_name: str = "",
) -> WorkloadGraph:
    """One point operation (doubling / mixed addition) as a graph."""
    graph = WorkloadGraph(name=tag)
    _append_point_operation(graph, sequence, scope=tag, field_name=field_name)
    return graph


def _append_scalar_multiplication(
    graph: WorkloadGraph,
    scalar_bits: int,
    additions: int = -1,
    scope: str = "",
    field_name: str = "",
    priority: int = 0,
) -> List[int]:
    """Append a double-and-add ladder; return the final operation's exits.

    Emission order matches the legacy stream: ``scalar_bits`` doublings
    with a mixed addition after every second doubling until ``additions``
    (default: half the bit length) are placed, stragglers at the end.
    """
    if scalar_bits <= 0:
        raise OperandRangeError(
            f"scalar_bits must be positive, got {scalar_bits}"
        )
    if additions < 0:
        additions = scalar_bits // 2
    emitted = 0
    exits: List[int] = []
    for index in range(scalar_bits):
        exits = _append_point_operation(
            graph,
            DOUBLING_SEQUENCE,
            scope=f"{scope}dbl[{index}]",
            tag=f"dbl[{index}]",
            entry_deps=exits,
            field_name=field_name,
            priority=priority,
        )
        if emitted < additions and index % 2 == 1:
            exits = _append_point_operation(
                graph,
                MIXED_ADDITION_SEQUENCE,
                scope=f"{scope}add[{emitted}]",
                tag=f"add[{emitted}]",
                entry_deps=exits,
                field_name=field_name,
                priority=priority,
            )
            emitted += 1
    while emitted < additions:
        exits = _append_point_operation(
            graph,
            MIXED_ADDITION_SEQUENCE,
            scope=f"{scope}add[{emitted}]",
            tag=f"add[{emitted}]",
            entry_deps=exits,
            field_name=field_name,
            priority=priority,
        )
        emitted += 1
    return exits


def scalar_multiplication_graph(
    scalar_bits: int = 256,
    additions: int = -1,
    field_name: str = "",
) -> WorkloadGraph:
    """Double-and-add scalar multiplication as a dependency graph.

    Sequential across ladder steps (each step consumes the running point),
    parallel within a step: the independent multiplications of one
    doubling or addition land in the same topological level.
    """
    graph = WorkloadGraph(name=f"scalar-mult[{scalar_bits}]")
    _append_scalar_multiplication(
        graph, scalar_bits, additions, field_name=field_name
    )
    return graph


def ecdsa_sign_graph(
    scalar_bits: int = 256,
    signatures: int = 1,
    field_name: str = "",
) -> WorkloadGraph:
    """One or more full ECDSA signing operations as a dependency graph.

    Each signature is one ``k·G`` ladder, a Fermat inversion of the nonce
    (a sequential square-and-multiply chain — but *independent* of the
    ladder, so the two run concurrently on a graph-aware chip) and the two
    scalar-field products forming ``s``, which join both strands.
    Signatures are mutually independent, so batched signing is
    embarrassingly wide.
    """
    if signatures <= 0:
        raise OperandRangeError(
            f"signatures must be positive, got {signatures}"
        )
    if scalar_bits <= 0:
        raise OperandRangeError(
            f"scalar_bits must be positive, got {scalar_bits}"
        )
    graph = WorkloadGraph(name=f"ecdsa-sign[{signatures}x{scalar_bits}]")
    for signature in range(signatures):
        prefix = f"sig[{signature}]"
        ladder_exits = _append_scalar_multiplication(
            graph, scalar_bits, scope=f"{prefix}.", field_name=field_name
        )
        # Fermat inversion of the nonce: a serial square-and-multiply chain
        # over the scalar field, independent of the ladder above.
        chain: List[int] = []
        for index in range(scalar_bits):
            square = graph.add(
                multiplicand=f"{prefix}.inv.sq[{index}]",
                deps=chain,
                tag="inversion",
                field_name=field_name,
            )
            chain = [square]
            if index % 2 == 1:
                multiply = graph.add(
                    multiplicand=f"{prefix}.inv.k",
                    deps=chain,
                    tag="inversion",
                    field_name=field_name,
                )
                chain = [multiply]
        # r·d needs r (the ladder's x-coordinate); k⁻¹·(z + r·d) joins the
        # inversion chain with it.
        r_times_d = graph.add(
            multiplicand=f"{prefix}.d",
            deps=ladder_exits,
            tag="s-computation",
            field_name=field_name,
        )
        graph.add(
            multiplicand=f"{prefix}.kinv",
            deps=[r_times_d] + chain,
            tag="s-computation",
            field_name=field_name,
        )
    return graph


def ntt_graph(size: int, tag: str = "ntt", field_name: str = "") -> WorkloadGraph:
    """A ``size``-point iterative NTT as a dependency graph.

    ``log2(size)`` stages of ``size / 2`` butterflies; the butterfly
    multiplication at stage ``s`` depends on the two stage ``s-1``
    butterflies that last wrote its input positions, so every stage is one
    topological level of mutually independent multiplications (width
    ``size / 2``).  Emission stays twiddle-major within a stage — the
    ordering under which the paper's LUT-reuse argument applies.
    """
    if size < 2 or size & (size - 1):
        raise OperandRangeError(
            f"NTT size must be a power of two >= 2, got {size}"
        )
    graph = WorkloadGraph(name=f"{tag}[{size}]")
    stages = size.bit_length() - 1
    owner: List[Optional[int]] = [None] * size
    for stage in range(stages):
        twiddles = 1 << stage
        group = size // (2 * twiddles)  # butterflies sharing one twiddle
        span = 2 * twiddles  # butterfly block length at this stage
        key_tag = f"{tag}:s{stage}"
        for twiddle in range(twiddles):
            key = f"{tag}.w[{stage}][{twiddle}]"
            for block in range(group):
                upper = block * span + twiddle
                lower = upper + twiddles
                deps = {
                    dep
                    for dep in (owner[upper], owner[lower])
                    if dep is not None
                }
                index = graph.add(
                    multiplicand=key,
                    deps=deps,
                    tag=key_tag,
                    field_name=field_name,
                )
                owner[upper] = owner[lower] = index
    return graph


def msm_graph(
    points: int,
    window_bits: int = 0,
    scalar_bits: int = 256,
    tag: str = "msm",
    field_name: str = "",
) -> WorkloadGraph:
    """A ``points``-element bucket-method MSM as a dependency graph.

    Mirrors :func:`repro.zkp.msm.msm_pippenger` structurally: per window,
    every point is accumulated into a bucket (additions into the same
    bucket chain, different buckets run concurrently), the running-sum
    reduction walks the buckets sequentially, and the window results fold
    through a sequential Horner chain of doublings.  Windows are
    independent until the Horner fold joins them.
    """
    from repro.zkp.msm import default_window_bits

    if points <= 0:
        raise OperandRangeError(f"points must be positive, got {points}")
    if scalar_bits <= 0:
        raise OperandRangeError(
            f"scalar_bits must be positive, got {scalar_bits}"
        )
    c = window_bits or default_window_bits(points)
    if c < 1:
        raise OperandRangeError(f"window size must be positive, got {c}")
    windows = -(-scalar_bits // c)
    buckets = (1 << c) - 1

    graph = WorkloadGraph(name=f"{tag}[{points}]")
    reduce_tail: List[List[int]] = []
    for window in range(windows):
        bucket_tail: List[List[int]] = [[] for _ in range(buckets)]
        for point in range(points):
            bucket = point % buckets  # deterministic stand-in assignment
            bucket_tail[bucket] = _append_point_operation(
                graph,
                MIXED_ADDITION_SEQUENCE,
                scope=f"{tag}.w{window}.bucket[{point}]",
                entry_deps=bucket_tail[bucket],
                field_name=field_name,
            )
        # Running-sum reduction: two Jacobian additions per bucket slot,
        # walking the buckets from the top down.
        exits: List[int] = []
        for slot in range(2 * buckets):
            bucket = buckets - 1 - slot // 2
            exits = _append_point_operation(
                graph,
                MIXED_ADDITION_SEQUENCE,
                scope=f"{tag}.w{window}.reduce[{slot}]",
                entry_deps=exits + bucket_tail[bucket],
                field_name=field_name,
            )
        reduce_tail.append(exits)
    carry: List[int] = []
    for window in range(windows):
        for doubling in range(c):
            carry = _append_point_operation(
                graph,
                DOUBLING_SEQUENCE,
                scope=f"{tag}.horner[{window}][{doubling}]",
                entry_deps=carry,
                field_name=field_name,
            )
        carry = _append_point_operation(
            graph,
            MIXED_ADDITION_SEQUENCE,
            scope=f"{tag}.horner-add[{window}]",
            entry_deps=carry + reduce_tail[window],
            field_name=field_name,
        )
    return graph


def product_tree_graph(
    values: Iterable[int],
    tag: str = "product-tree",
    field_name: str = "",
) -> WorkloadGraph:
    """A balanced product tree over concrete values — an *executable* graph.

    The kernel behind Montgomery batch inversion: ``n`` leaves reduce
    pairwise over ``ceil(log2 n)`` levels to one running product.  Every
    node carries operands (leaf constants or :class:`Ref` s to earlier
    products), so the graph evaluates through
    :func:`repro.workloads.execute.execute_graph` or
    :meth:`repro.modsram.chip.Chip.run_graph` with bit-identical products,
    while its depth-limited shape (width ``n/2``, depth ``log2 n``) is the
    canonical scheduling win over a serial flat stream.
    """
    leaves: List[Operand] = [int(value) for value in values]
    if len(leaves) < 2:
        raise OperandRangeError(
            f"product tree needs at least two values, got {len(leaves)}"
        )
    graph = WorkloadGraph(name=f"{tag}[{len(leaves)}]")
    current = leaves
    level = 0
    while len(current) > 1:
        reduced: List[Operand] = []
        for pair in range(len(current) // 2):
            left, right = current[2 * pair], current[2 * pair + 1]
            index = graph.add(
                multiplicand=f"{tag}.n[{level}][{pair}]",
                tag=f"{tag}:l{level}",
                field_name=field_name,
                a=left,
                b=right,
            )
            reduced.append(Ref(index))
        if len(current) % 2:
            reduced.append(current[-1])
        current = reduced
        level += 1
    return graph
