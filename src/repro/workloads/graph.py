"""The dependency-aware workload graph.

One :class:`WorkloadGraph` is one *request*: a DAG whose nodes are modular
multiplications and whose edges are data (or conservative control)
dependencies.  Nodes are appended in a valid topological order — every
dependency must name an already-added node — so the graph is acyclic by
construction and its insertion order doubles as the legacy flat stream
order (:meth:`WorkloadGraph.to_jobs`).

Two views matter to schedulers:

* :meth:`WorkloadGraph.topological_levels` groups nodes by longest-path
  depth — every node in a level is independent of every other, so a whole
  level can dispatch concurrently (the ready fronts the graph-aware chip
  scheduler and the serving layer batch on);
* :meth:`WorkloadGraph.linearized` chains the same nodes serially — the
  dependency structure a flat stream implies, used as the honest baseline
  when measuring what graph awareness buys.

Nodes may carry concrete operands (``a``/``b`` as integers or
:class:`Ref` erences to earlier products), in which case the graph is
*executable*: :func:`repro.workloads.execute.execute_graph` evaluates it
level-batched through the Engine and
:meth:`repro.modsram.chip.Chip.run_graph` on a multi-macro chip, with
bit-identical products either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.modsram.chip import MultiplicationJob

__all__ = ["Ref", "Operand", "MulNode", "WorkloadGraph"]


class Ref(NamedTuple):
    """A reference to the product of an earlier node in the same graph."""

    node: int


#: An operand of a multiplication node: a concrete value or a :class:`Ref`.
Operand = Union[int, Ref]


@dataclass(frozen=True)
class MulNode:
    """One modular multiplication of a workload graph.

    ``multiplicand`` is the LUT-reuse group: two nodes with equal keys can
    share a resident radix-4 LUT on the same macro.  ``deps`` are indices
    of earlier nodes that must finish before this one may start; operand
    :class:`Ref` s are folded into ``deps`` automatically by
    :meth:`WorkloadGraph.add`.
    """

    index: int
    multiplicand: str
    deps: Tuple[int, ...] = ()
    tag: str = ""
    #: Field/curve the multiplication lives in (``"bn254.base"``, ...).
    field_name: str = ""
    #: Scheduling priority; higher dispatches earlier among ready nodes.
    priority: int = 0
    a: Optional[Operand] = None
    b: Optional[Operand] = None

    @property
    def executable(self) -> bool:
        """Whether both operands are known (directly or by reference)."""
        return self.a is not None and self.b is not None

    def job(self) -> MultiplicationJob:
        """This node as a flat-stream :class:`MultiplicationJob`."""
        return MultiplicationJob(multiplicand=self.multiplicand, tag=self.tag)


class WorkloadGraph:
    """A DAG of modular-multiplication nodes with LUT-reuse metadata."""

    def __init__(self, name: str = "workload") -> None:
        self.name = name
        self._nodes: List[MulNode] = []
        self._levels: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(
        self,
        multiplicand: str,
        deps: Iterable[int] = (),
        tag: str = "",
        field_name: str = "",
        priority: int = 0,
        a: Optional[Operand] = None,
        b: Optional[Operand] = None,
    ) -> int:
        """Append one node and return its index.

        Dependencies (explicit ``deps`` plus any operand :class:`Ref` s)
        must name already-added nodes, which keeps the graph acyclic by
        construction and makes insertion order a valid topological order.
        """
        index = len(self._nodes)
        merged = set(deps)
        for operand in (a, b):
            if isinstance(operand, Ref):
                merged.add(operand.node)
        for dep in merged:
            if not 0 <= dep < index:
                raise ConfigurationError(
                    f"node {index} of graph {self.name!r} depends on "
                    f"{dep}, which is not an earlier node"
                )
        self._nodes.append(
            MulNode(
                index=index,
                multiplicand=multiplicand,
                deps=tuple(sorted(merged)),
                tag=tag,
                field_name=field_name,
                priority=priority,
                a=a,
                b=b,
            )
        )
        self._levels = None
        return index

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple[MulNode, ...]:
        """Every node, in insertion (topological) order."""
        return tuple(self._nodes)

    def node(self, index: int) -> MulNode:
        """One node by index."""
        return self._nodes[index]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[MulNode]:
        return iter(self._nodes)

    def dependents(self) -> List[List[int]]:
        """For every node, the indices of the nodes that depend on it."""
        result: List[List[int]] = [[] for _ in self._nodes]
        for node in self._nodes:
            for dep in node.deps:
                result[dep].append(node.index)
        return result

    def roots(self) -> List[int]:
        """Nodes with no dependencies (the initial ready front)."""
        return [node.index for node in self._nodes if not node.deps]

    def sinks(self) -> List[int]:
        """Nodes nothing depends on (the request's results)."""
        depended_on = {dep for node in self._nodes for dep in node.deps}
        return [
            node.index for node in self._nodes if node.index not in depended_on
        ]

    def topological_levels(self) -> List[List[int]]:
        """Nodes grouped by longest-path depth, shallowest first.

        Level ``k`` holds every node whose longest dependency chain has
        ``k`` predecessors; all nodes within a level are mutually
        independent, so a level is exactly one concurrent dispatch front.
        """
        if self._levels is None:
            level_of: List[int] = [0] * len(self._nodes)
            levels: List[List[int]] = []
            for node in self._nodes:
                level = 0
                for dep in node.deps:
                    level = max(level, level_of[dep] + 1)
                level_of[node.index] = level
                while len(levels) <= level:
                    levels.append([])
                levels[level].append(node.index)
            self._levels = levels
        return [list(level) for level in self._levels]

    @property
    def depth(self) -> int:
        """Number of topological levels (the critical-path length in nodes)."""
        return len(self.topological_levels())

    @property
    def width(self) -> int:
        """Size of the largest level (peak available parallelism)."""
        levels = self.topological_levels()
        return max((len(level) for level in levels), default=0)

    @property
    def parallelism(self) -> float:
        """Average nodes per level — what an ideal chip could overlap."""
        depth = self.depth
        return len(self._nodes) / depth if depth else 0.0

    @property
    def executable(self) -> bool:
        """Whether every node carries operands (the graph can be evaluated)."""
        return bool(self._nodes) and all(
            node.executable for node in self._nodes
        )

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def to_jobs(self) -> Iterator[MultiplicationJob]:
        """The legacy flat stream: jobs in insertion order, no dependencies.

        This is what the pre-graph stream generators emitted; the
        stream-based chip scheduler and parity tests consume it.
        """
        for node in self._nodes:
            yield node.job()

    def linearized(self) -> "WorkloadGraph":
        """The same nodes chained serially (node ``i`` depends on ``i-1``).

        A flat stream carries no dependency structure, so the only schedule
        that is *always* correct for it is fully sequential; this view
        makes that baseline explicit for benchmarks and parity tests.
        """
        chain = WorkloadGraph(name=f"{self.name}:linearized")
        for node in self._nodes:
            chain.add(
                multiplicand=node.multiplicand,
                deps=(node.index - 1,) if node.index else (),
                tag=node.tag,
                field_name=node.field_name,
                priority=node.priority,
                a=node.a,
                b=node.b,
            )
        return chain

    def as_dict(self) -> Dict[str, object]:
        """Structural summary for reports and ``--json`` payloads."""
        return {
            "name": self.name,
            "nodes": len(self._nodes),
            "edges": sum(len(node.deps) for node in self._nodes),
            "depth": self.depth,
            "width": self.width,
            "parallelism": self.parallelism,
            "executable": self.executable,
            "lut_groups": len({node.multiplicand for node in self._nodes}),
        }

    def to_payload(self) -> Dict[str, object]:
        """Full, JSON-safe serialization (the cluster wire format).

        Unlike :meth:`as_dict` (a structural *summary*), the payload
        carries every node — operands included, with :class:`Ref` s
        encoded as ``{"ref": index}`` — so :meth:`from_payload`
        reconstructs an arithmetically identical graph on another host.
        """
        def encode(operand: Optional[Operand]) -> object:
            if isinstance(operand, Ref):
                return {"ref": operand.node}
            return operand

        return {
            "name": self.name,
            "nodes": [
                {
                    "multiplicand": node.multiplicand,
                    "deps": list(node.deps),
                    "tag": node.tag,
                    "field_name": node.field_name,
                    "priority": node.priority,
                    "a": encode(node.a),
                    "b": encode(node.b),
                }
                for node in self._nodes
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "WorkloadGraph":
        """Rebuild a graph from :meth:`to_payload` output.

        Round-trips exactly: node order, dependencies, operands and
        LUT-reuse metadata all survive, so a graph executed on a remote
        cluster node yields bit-identical products to local execution.
        """
        def decode(value: object) -> Optional[Operand]:
            if isinstance(value, dict):
                return Ref(int(value["ref"]))
            return None if value is None else int(value)

        graph = cls(name=str(payload.get("name", "workload")))
        for node in payload["nodes"]:  # type: ignore[index]
            graph.add(
                multiplicand=str(node["multiplicand"]),
                deps=tuple(int(dep) for dep in node.get("deps", ())),
                tag=str(node.get("tag", "")),
                field_name=str(node.get("field_name", "")),
                priority=int(node.get("priority", 0)),
                a=decode(node.get("a")),
                b=decode(node.get("b")),
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"WorkloadGraph(name={self.name!r}, nodes={len(self._nodes)}, "
            f"depth={self.depth}, width={self.width})"
        )
