"""Workload Graph API: declarative, dependency-aware multiplication jobs.

A :class:`WorkloadGraph` represents one request — an ECDSA signature, an
NTT, a bucket MSM, a batch inversion — as a DAG of modular-multiplication
nodes.  Each node names the multiplicand whose radix-4 LUT it needs (the
LUT-reuse group of :mod:`repro.modsram.chip`), carries op metadata
(tag, field, priority) and lists the nodes it depends on, so schedulers
and the serving layer can exploit *intra-request* parallelism the flat
multiplication streams cannot express::

    from repro.workloads import ntt_graph

    graph = ntt_graph(1024)
    graph.depth            # 10 topological levels (the NTT stages)
    graph.width            # 512 independent butterflies per level
    graph.to_jobs()        # the legacy flat stream, for linear dispatch

The graph constructors in :mod:`repro.workloads.builders` are the
canonical dependency-aware form of the flat streams in ``ecc/streams.py``
and ``zkp/streams.py`` (independent O(1)-memory generators whose emission
order is parity-tested against the builders); operand-carrying graphs are
executed level-batched through the Engine by
:func:`repro.workloads.execute.execute_graph` or on a multi-macro chip by
:meth:`repro.modsram.chip.Chip.run_graph`.
"""

from repro.workloads.builders import (
    ecdsa_sign_graph,
    msm_graph,
    ntt_graph,
    point_operation_graph,
    product_tree_graph,
    scalar_multiplication_graph,
)
from repro.workloads.execute import GraphExecution, execute_graph
from repro.workloads.graph import MulNode, Ref, WorkloadGraph

__all__ = [
    "GraphExecution",
    "MulNode",
    "Ref",
    "WorkloadGraph",
    "ecdsa_sign_graph",
    "execute_graph",
    "msm_graph",
    "ntt_graph",
    "point_operation_graph",
    "product_tree_graph",
    "scalar_multiplication_graph",
]
