"""Level-batched execution of operand-carrying workload graphs.

:func:`execute_graph` evaluates an *executable* :class:`WorkloadGraph`
through the unified :class:`~repro.engine.Engine`: every topological level
is one :meth:`~repro.engine.Engine.multiply_batch` call (independent nodes
share a single validated, context-cached batch), and operand
:class:`~repro.workloads.graph.Ref` s resolve against the products of
earlier levels.  Products are bit-identical to evaluating the nodes one by
one in insertion order — the batching changes the dispatch, never the
arithmetic — which is what lets the serving layer and the chip-level graph
scheduler share this path as their functional oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.workloads.graph import Ref, WorkloadGraph

__all__ = ["GraphExecution", "execute_graph"]


@dataclass(frozen=True)
class GraphExecution:
    """Products and dispatch statistics of one graph evaluation."""

    graph_name: str
    #: Product of every node, indexed like the graph's nodes.
    values: Tuple[int, ...]
    #: Node indices nothing depends on (the request's results).
    sinks: Tuple[int, ...]
    backend: str
    modulus: int
    #: One batch per topological level.
    batches: int
    #: Nodes in the largest single batch.
    max_batch: int
    #: Analytic hardware cycles summed over every batch (``None`` without
    #: a cycle model).
    modeled_cycles: Optional[int]

    @property
    def results(self) -> Tuple[int, ...]:
        """The sink products, in node order."""
        return tuple(self.values[index] for index in self.sinks)

    @property
    def result(self) -> int:
        """The single sink product (raises unless exactly one sink)."""
        if len(self.sinks) != 1:
            raise ConfigurationError(
                f"graph {self.graph_name!r} has {len(self.sinks)} sinks; "
                "use .results"
            )
        return self.values[self.sinks[0]]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (products elided to the sinks)."""
        return {
            "graph": self.graph_name,
            "nodes": len(self.values),
            "sinks": list(self.sinks),
            "results": [self.values[index] for index in self.sinks],
            "backend": self.backend,
            "modulus": self.modulus,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "modeled_cycles": self.modeled_cycles,
        }


def execute_graph(
    engine,
    graph: WorkloadGraph,
    modulus: Optional[int] = None,
) -> GraphExecution:
    """Evaluate an executable graph level-batched through an Engine.

    Each topological level's operand pairs go through one
    ``engine.multiply_batch`` call; constants are reduced modulo ``p`` on
    entry (graph builders accept raw values), references resolve to the
    referenced node's product.
    """
    if not graph.executable:
        raise ConfigurationError(
            f"graph {graph.name!r} is structural (nodes without operands); "
            "only operand-carrying graphs can be executed"
        )
    nodes = graph.nodes
    values: List[Optional[int]] = [None] * len(nodes)

    first_batch = None
    batches = 0
    max_batch = 0
    modeled: Optional[int] = 0
    backend = ""
    resolved_modulus = 0
    for level in graph.topological_levels():
        pairs = []
        for index in level:
            node = nodes[index]
            pairs.append(
                (_resolve(node.a, values, resolved_modulus or None),
                 _resolve(node.b, values, resolved_modulus or None))
            )
        if first_batch is None:
            # Resolve the context once so constants of later levels can be
            # range-reduced against the actual modulus.
            context = engine.context(modulus)
            resolved_modulus = context.modulus
            backend = context.info.name
            pairs = [(a % resolved_modulus, b % resolved_modulus) for a, b in pairs]
            first_batch = True
        batch = engine.multiply_batch(pairs, resolved_modulus)
        for index, value in zip(level, batch.values):
            values[index] = value
        batches += 1
        max_batch = max(max_batch, len(pairs))
        if modeled is not None:
            modeled = (
                None
                if batch.modeled_cycles is None
                else modeled + batch.modeled_cycles
            )
    return GraphExecution(
        graph_name=graph.name,
        values=tuple(value for value in values),  # type: ignore[arg-type]
        sinks=tuple(graph.sinks()),
        backend=backend,
        modulus=resolved_modulus,
        batches=batches,
        max_batch=max_batch,
        modeled_cycles=modeled,
    )


def _resolve(operand, values: List[Optional[int]], modulus: Optional[int]) -> int:
    if isinstance(operand, Ref):
        value = values[operand.node]
        if value is None:  # pragma: no cover - levels guarantee ordering
            raise ConfigurationError(
                f"operand references node {operand.node} before it executed"
            )
        return value
    value = int(operand)
    return value % modulus if modulus else value
