"""Command-line interface for the ModSRAM reproduction.

Four subcommands cover the things a user wants without writing code::

    python -m repro.cli report   [--quick]          # every table and figure
    python -m repro.cli multiply A B [--modulus P] [--backend NAME] [--curve NAME]
    python -m repro.cli cycles   [--bitwidth N]     # cycle model + comparison
    python -m repro.cli area     [--rows R] [--bitwidth N] [--technology NM]
    python -m repro.cli verify   [--bitwidth N] [--cases K]   # equivalence check

Values may be given in decimal or ``0x``-prefixed hexadecimal.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.report import build_report
from repro.analysis.tables import render_table
from repro.core import available_multipliers, create_multiplier
from repro.core.complexity import COMPLEXITY_MODELS
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram.area import AreaModel
from repro.modsram.config import ModSRAMConfig
from repro.modsram.verification import EquivalenceChecker

__all__ = ["main", "build_parser"]


def _parse_int(text: str) -> int:
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ModSRAM (DAC 2024) reproduction command-line interface.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="reproduce every table and figure")
    report.add_argument("--quick", action="store_true", help="skip cycle-accurate runs")

    multiply = subparsers.add_parser("multiply", help="one modular multiplication")
    multiply.add_argument("a", type=_parse_int, help="multiplier (decimal or 0x...)")
    multiply.add_argument("b", type=_parse_int, help="multiplicand")
    multiply.add_argument("--modulus", type=_parse_int, default=None, help="modulus p")
    multiply.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="use this curve's base-field prime when --modulus is not given",
    )
    multiply.add_argument(
        "--backend",
        default="r4csa-lut",
        help="multiplier backend (see 'repro cycles' for the list)",
    )

    cycles = subparsers.add_parser("cycles", help="cycle models at a bitwidth")
    cycles.add_argument("--bitwidth", type=int, default=256)

    area = subparsers.add_parser("area", help="area model for a configuration")
    area.add_argument("--rows", type=int, default=64)
    area.add_argument("--bitwidth", type=int, default=256)
    area.add_argument("--technology", type=int, default=65)

    verify = subparsers.add_parser(
        "verify", help="equivalence-check the accelerator against the oracle"
    )
    verify.add_argument("--bitwidth", type=int, default=32)
    verify.add_argument("--cases", type=int, default=8)
    return parser


def _command_report(arguments: argparse.Namespace) -> int:
    print(build_report(quick=arguments.quick))
    return 0


def _command_multiply(arguments: argparse.Namespace) -> int:
    modulus = arguments.modulus
    if modulus is None:
        modulus = CURVE_SPECS[arguments.curve].field_modulus
    if arguments.backend not in available_multipliers():
        print(f"unknown backend {arguments.backend!r}; available: "
              f"{', '.join(available_multipliers())}")
        return 2
    multiplier = create_multiplier(arguments.backend)
    product = multiplier.multiply(arguments.a % modulus, arguments.b % modulus, modulus)
    print(f"backend : {arguments.backend}")
    print(f"modulus : {modulus:#x}")
    print(f"product : {product:#x}")
    expected_cycles = multiplier.cycles(modulus.bit_length())
    if expected_cycles is not None:
        print(f"cycle model at {modulus.bit_length()} bits: {expected_cycles}")
    return 0


def _command_cycles(arguments: argparse.Namespace) -> int:
    bitwidth = arguments.bitwidth
    rows = []
    for key, model in sorted(COMPLEXITY_MODELS.items()):
        rows.append((model.label, model.order, model.cycles(bitwidth)))
    print(render_table(
        ("algorithm / design", "order", f"cycles @ {bitwidth}b"),
        rows,
        title="Cycle models",
    ))
    print("\nregistered multiplier backends: " + ", ".join(available_multipliers()))
    return 0


def _command_area(arguments: argparse.Namespace) -> int:
    config = ModSRAMConfig(
        rows=arguments.rows,
        bitwidth=arguments.bitwidth,
        columns=max(arguments.bitwidth, 4),
        technology_nm=arguments.technology,
    )
    model = AreaModel(config)
    breakdown = model.breakdown()
    rows = [
        (name.replace("_mm2", "").replace("_", " "), round(value, 5))
        for name, value in breakdown.as_dict().items()
    ]
    print(render_table(("component", "area (mm^2)"), rows,
                       title=f"ModSRAM area model ({arguments.rows}x{arguments.bitwidth}, "
                             f"{arguments.technology} nm)"))
    print(f"overhead over plain SRAM: {model.overhead_percent():.1f}%")
    return 0


def _command_verify(arguments: argparse.Namespace) -> int:
    bitwidth = arguments.bitwidth
    config = ModSRAMConfig().with_bitwidth(bitwidth)
    checker = EquivalenceChecker(config)
    modulus = ((1 << bitwidth) - 5) | 1
    report = checker.run(modulus, random_cases=arguments.cases)
    print(report.summary())
    return 0 if report.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "report": _command_report,
        "multiply": _command_multiply,
        "cycles": _command_cycles,
        "area": _command_area,
        "verify": _command_verify,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":
    raise SystemExit(main())
