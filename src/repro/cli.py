"""Command-line interface for the ModSRAM reproduction.

The arithmetic subcommands go through the unified :class:`repro.engine.Engine`
facade, so every registered backend — software algorithms, the cycle-level
ModSRAM model and the Table 3 PIM baselines — is reachable from the shell::

    python -m repro.cli report   [--quick]          # every table and figure
    python -m repro.cli multiply A B [--modulus P] [--backend NAME] [--curve NAME] [--json]
    python -m repro.cli batch    [--count N] [--backend NAME] [--seed S] [--json]
    python -m repro.cli backends [--json]           # backend capability matrix
    python -m repro.cli cycles   [--bitwidth N]     # cycle model + comparison
    python -m repro.cli area     [--rows R] [--bitwidth N] [--technology NM]
    python -m repro.cli verify   [--bitwidth N] [--cases K]   # equivalence check

Values may be given in decimal or ``0x``-prefixed hexadecimal.
"""

from __future__ import annotations

import argparse
import json
import random
from typing import List, Optional

from repro.analysis.report import build_report
from repro.analysis.tables import render_table
from repro.core.complexity import COMPLEXITY_MODELS
from repro.ecc.curves_data import CURVE_SPECS
from repro.engine import Engine, available_backends, get_backend
from repro.errors import ReproError
from repro.modsram.area import AreaModel
from repro.modsram.config import ModSRAMConfig
from repro.modsram.verification import EquivalenceChecker

__all__ = ["main", "build_parser"]


def _parse_int(text: str) -> int:
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ModSRAM (DAC 2024) reproduction command-line interface.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="reproduce every table and figure")
    report.add_argument("--quick", action="store_true", help="skip cycle-accurate runs")

    multiply = subparsers.add_parser("multiply", help="one modular multiplication")
    multiply.add_argument("a", type=_parse_int, help="multiplier (decimal or 0x...)")
    multiply.add_argument("b", type=_parse_int, help="multiplicand")
    multiply.add_argument("--modulus", type=_parse_int, default=None, help="modulus p")
    multiply.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="use this curve's base-field prime when --modulus is not given",
    )
    multiply.add_argument(
        "--backend",
        default="r4csa-lut",
        help="engine backend (see 'repro backends' for the list)",
    )
    multiply.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )

    batch = subparsers.add_parser(
        "batch", help="batched multiplication through the engine's context cache"
    )
    batch.add_argument(
        "--count", type=int, default=256, help="number of operand pairs"
    )
    batch.add_argument("--modulus", type=_parse_int, default=None, help="modulus p")
    batch.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="use this curve's base-field prime when --modulus is not given",
    )
    batch.add_argument(
        "--backend",
        default="r4csa-lut",
        help="engine backend (see 'repro backends' for the list)",
    )
    batch.add_argument(
        "--seed", type=int, default=2024, help="seed for the random operand pairs"
    )
    batch.add_argument(
        "--json", action="store_true", help="emit the batch result as JSON"
    )

    backends = subparsers.add_parser(
        "backends", help="capability matrix of every registered engine backend"
    )
    backends.add_argument(
        "--json", action="store_true", help="emit the backend metadata as JSON"
    )

    cycles = subparsers.add_parser("cycles", help="cycle models at a bitwidth")
    cycles.add_argument("--bitwidth", type=int, default=256)

    area = subparsers.add_parser("area", help="area model for a configuration")
    area.add_argument("--rows", type=int, default=64)
    area.add_argument("--bitwidth", type=int, default=256)
    area.add_argument("--technology", type=int, default=65)

    verify = subparsers.add_parser(
        "verify", help="equivalence-check the accelerator against the oracle"
    )
    verify.add_argument("--bitwidth", type=int, default=32)
    verify.add_argument("--cases", type=int, default=8)
    return parser


def _command_report(arguments: argparse.Namespace) -> int:
    print(build_report(quick=arguments.quick))
    return 0


def _make_engine(arguments: argparse.Namespace) -> Optional[Engine]:
    """Build the engine a subcommand asked for, or report a usage error."""
    if arguments.backend not in available_backends():
        print(f"unknown backend {arguments.backend!r}; available: "
              f"{', '.join(available_backends())}")
        return None
    return Engine(
        backend=arguments.backend,
        curve=arguments.curve,
        modulus=arguments.modulus,
    )


def _command_multiply(arguments: argparse.Namespace) -> int:
    engine = _make_engine(arguments)
    if engine is None:
        return 2
    modulus = engine.default_modulus
    assert modulus is not None
    result = engine.multiply(arguments.a % modulus, arguments.b % modulus)
    if arguments.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0
    print(f"backend : {result.backend}")
    print(f"modulus : {result.modulus:#x}")
    print(f"product : {result.value:#x}")
    if result.modeled_cycles is not None:
        print(f"cycle model at {result.bitwidth} bits: {result.modeled_cycles}")
    return 0


def _command_batch(arguments: argparse.Namespace) -> int:
    if arguments.count < 1:
        print(f"--count must be positive, got {arguments.count}")
        return 2
    engine = _make_engine(arguments)
    if engine is None:
        return 2
    modulus = engine.default_modulus
    assert modulus is not None
    rng = random.Random(arguments.seed)
    pairs = [
        (rng.randrange(modulus), rng.randrange(modulus))
        for _ in range(arguments.count)
    ]
    result = engine.multiply_batch(pairs)
    if arguments.json:
        payload = result.as_dict()
        payload["seed"] = arguments.seed
        payload["cache"] = engine.cache_stats.as_dict()
        print(json.dumps(payload, indent=2))
        return 0
    print(f"backend        : {result.backend}")
    print(f"modulus        : {result.modulus:#x}")
    print(f"pairs          : {result.count}")
    print(f"first product  : {result.values[0]:#x}")
    print(f"last product   : {result.values[-1]:#x}")
    if result.modeled_cycles is not None:
        print(f"modeled cycles : {result.modeled_cycles} "
              f"({result.modeled_cycles // result.count} per multiplication)")
    print(f"precomputations: {result.stats.precomputations} during the batch "
          "(per-modulus constants were cached before it started)")
    return 0


def _command_backends(arguments: argparse.Namespace) -> int:
    infos = [get_backend(name).info for name in available_backends()]
    if arguments.json:
        print(json.dumps([info.as_dict() for info in infos], indent=2))
        return 0
    rows = []
    for info in infos:
        bitwidths = (
            "any"
            if info.supported_bitwidths is None
            else ", ".join(str(bits) for bits in info.supported_bitwidths)
        )
        rows.append(
            (
                info.name,
                info.kind,
                "yes" if info.has_cycle_model else "no",
                "direct" if info.direct_form else "montgomery",
                bitwidths,
            )
        )
    print(render_table(
        ("backend", "kind", "cycle model", "result form", "native bitwidths"),
        rows,
        title="Engine backends",
    ))
    return 0


def _command_cycles(arguments: argparse.Namespace) -> int:
    bitwidth = arguments.bitwidth
    rows = []
    for key, model in sorted(COMPLEXITY_MODELS.items()):
        rows.append((model.label, model.order, model.cycles(bitwidth)))
    print(render_table(
        ("algorithm / design", "order", f"cycles @ {bitwidth}b"),
        rows,
        title="Cycle models",
    ))
    print("\nregistered engine backends: " + ", ".join(available_backends()))
    return 0


def _command_area(arguments: argparse.Namespace) -> int:
    config = ModSRAMConfig(
        rows=arguments.rows,
        bitwidth=arguments.bitwidth,
        columns=max(arguments.bitwidth, 4),
        technology_nm=arguments.technology,
    )
    model = AreaModel(config)
    breakdown = model.breakdown()
    rows = [
        (name.replace("_mm2", "").replace("_", " "), round(value, 5))
        for name, value in breakdown.as_dict().items()
    ]
    print(render_table(("component", "area (mm^2)"), rows,
                       title=f"ModSRAM area model ({arguments.rows}x{arguments.bitwidth}, "
                             f"{arguments.technology} nm)"))
    print(f"overhead over plain SRAM: {model.overhead_percent():.1f}%")
    return 0


def _command_verify(arguments: argparse.Namespace) -> int:
    bitwidth = arguments.bitwidth
    config = ModSRAMConfig().with_bitwidth(bitwidth)
    checker = EquivalenceChecker(config)
    modulus = ((1 << bitwidth) - 5) | 1
    report = checker.run(modulus, random_cases=arguments.cases)
    print(report.summary())
    return 0 if report.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "report": _command_report,
        "multiply": _command_multiply,
        "batch": _command_batch,
        "backends": _command_backends,
        "cycles": _command_cycles,
        "area": _command_area,
        "verify": _command_verify,
    }
    try:
        return handlers[arguments.command](arguments)
    except ReproError as error:
        print(f"error: {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
