"""Command-line interface for the ModSRAM reproduction.

The arithmetic subcommands go through the unified :class:`repro.engine.Engine`
facade, so every registered backend — software algorithms, the cycle-level
ModSRAM model and the Table 3 PIM baselines — is reachable from the shell::

    python -m repro.cli report   [--quick] [--parallel] [--no-cache]
    python -m repro.cli experiment list [--json]    # registered experiments
    python -m repro.cli experiment run NAME [--quick] [--set K=V] [--json]
    python -m repro.cli experiment sweep NAME --axis K=V1,V2 [--parallel] [--json]
    python -m repro.cli multiply A B [--modulus P] [--backend NAME] [--curve NAME] [--json]
    python -m repro.cli batch    [--count N] [--backend NAME] [--seed S] [--json]
    python -m repro.cli chip     [--workload W] [--macros 1,2,4] [--json]
    python -m repro.cli serve    --self-test [--quick] [--workers N] [--json]
    python -m repro.cli submit   [--workload batch|product-tree] [--json]
    python -m repro.cli cluster router   [--port P] [--replication R]
    python -m repro.cli cluster worker   --port P [--name N] [--pool-workers W]
    python -m repro.cli cluster loadtest [--workers N] [--kill-worker]
                                         [--wire {1,2}] [--json]
    python -m repro.cli backends [--json]           # backend capability matrix
    python -m repro.cli cycles   [--bitwidth N]     # cycle model + comparison
    python -m repro.cli area     [--rows R] [--bitwidth N] [--technology NM]
    python -m repro.cli verify   [--bitwidth N] [--cases K]   # equivalence check
    python -m repro.cli hdl emit  [--bitwidth N] [--out DIR] [--check]
    python -m repro.cli hdl cosim [--quick] [--json]          # RTL agreement

The same interface is reachable as ``python -m repro`` and as the
``repro`` console script.  The ``experiment`` subcommands drive the
declarative Experiment API (:mod:`repro.experiments`): every paper
table/figure as a parameterisable, sweepable, disk-cached experiment.
Values may be given in decimal or ``0x``-prefixed hexadecimal.
"""

from __future__ import annotations

import argparse
import json
import random
from typing import List, Optional

from repro.analysis.chip_scaling import CHIP_WORKLOADS
from repro.analysis.report import build_report
from repro.analysis.tables import render_table
from repro.core.complexity import COMPLEXITY_MODELS
from repro.ecc.curves_data import CURVE_SPECS
from repro.engine import Engine, available_backends, get_backend
from repro.errors import ReproError
from repro.experiments import Runner, available_experiments, get_experiment
from repro.modsram.area import AreaModel
from repro.modsram.config import ModSRAMConfig
from repro.modsram.verification import EquivalenceChecker

__all__ = ["main", "build_parser"]


def _parse_int(text: str) -> int:
    return int(text, 0)


def _parse_param_value(text: str) -> object:
    """A ``--set``/``--axis`` value: JSON first, then 0x-int, then string."""
    try:
        return json.loads(text)
    except ValueError:
        pass
    try:
        return int(text, 0)
    except ValueError:
        return text


def _parse_assignments(pairs: Optional[List[str]], option: str) -> dict:
    """``KEY=VALUE`` strings into a parameter dictionary."""
    params = {}
    for pair in pairs or []:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ReproError(
                f"{option} expects KEY=VALUE, got {pair!r}"
            )
        params[key] = _parse_param_value(value)
    return params


def _parse_axes(pairs: Optional[List[str]]) -> dict:
    """``KEY=V1,V2,...`` strings into sweep axes."""
    axes = {}
    for pair in pairs or []:
        key, separator, values = pair.partition("=")
        if not separator or not key or not values:
            raise ReproError(
                f"--axis expects KEY=VALUE[,VALUE...], got {pair!r}"
            )
        axes[key] = [_parse_param_value(value) for value in values.split(",")]
    return axes


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """The experiment-cache flags shared by report/run/sweep."""
    parser.add_argument(
        "--no-cache",
        dest="no_cache",
        action="store_true",
        help="do not read or write the experiment result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="experiment cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ModSRAM (DAC 2024) reproduction command-line interface.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="reproduce every table and figure")
    report.add_argument("--quick", action="store_true", help="skip cycle-accurate runs")
    report.add_argument(
        "--parallel",
        action="store_true",
        help="run the report sections across a process pool",
    )
    report.add_argument(
        "--workers", type=int, default=None, help="process pool size cap"
    )
    _add_cache_options(report)

    experiment = subparsers.add_parser(
        "experiment",
        help="declarative experiment API: list, run or sweep any table/figure",
    )
    experiment_commands = experiment.add_subparsers(
        dest="experiment_command", required=True
    )

    experiment_list = experiment_commands.add_parser(
        "list", help="every registered experiment with its parameters"
    )
    experiment_list.add_argument(
        "--json", action="store_true", help="emit the experiment metadata as JSON"
    )

    experiment_run = experiment_commands.add_parser(
        "run", help="run one experiment and print its result"
    )
    experiment_run.add_argument("name", help="experiment name (see 'experiment list')")
    experiment_run.add_argument(
        "--set",
        dest="assignments",
        action="append",
        metavar="KEY=VALUE",
        help="override one parameter (repeatable)",
    )
    experiment_run.add_argument(
        "--quick", action="store_true", help="apply the experiment's quick overrides"
    )
    experiment_run.add_argument(
        "--json", action="store_true", help="emit the structured result as JSON"
    )
    _add_cache_options(experiment_run)

    experiment_sweep = experiment_commands.add_parser(
        "sweep", help="run a cartesian parameter sweep of one experiment"
    )
    experiment_sweep.add_argument(
        "name", help="experiment name (see 'experiment list')"
    )
    experiment_sweep.add_argument(
        "--axis",
        dest="axes",
        action="append",
        metavar="KEY=V1,V2",
        required=True,
        help="sweep axis with its values (repeatable; axes form a grid)",
    )
    experiment_sweep.add_argument(
        "--set",
        dest="assignments",
        action="append",
        metavar="KEY=VALUE",
        help="fix one non-swept parameter (repeatable)",
    )
    experiment_sweep.add_argument(
        "--quick", action="store_true", help="apply the experiment's quick overrides"
    )
    experiment_sweep.add_argument(
        "--parallel",
        action="store_true",
        help="run the grid points across a process pool",
    )
    experiment_sweep.add_argument(
        "--workers", type=int, default=None, help="process pool size cap"
    )
    experiment_sweep.add_argument(
        "--render",
        action="store_true",
        help="print every point's full text view instead of the summary table",
    )
    experiment_sweep.add_argument(
        "--json", action="store_true", help="emit the sweep results as JSON"
    )
    _add_cache_options(experiment_sweep)

    multiply = subparsers.add_parser("multiply", help="one modular multiplication")
    multiply.add_argument("a", type=_parse_int, help="multiplier (decimal or 0x...)")
    multiply.add_argument("b", type=_parse_int, help="multiplicand")
    multiply.add_argument("--modulus", type=_parse_int, default=None, help="modulus p")
    multiply.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="use this curve's base-field prime when --modulus is not given",
    )
    multiply.add_argument(
        "--backend",
        default="r4csa-lut",
        help="engine backend (see 'repro backends' for the list)",
    )
    multiply.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )

    batch = subparsers.add_parser(
        "batch", help="batched multiplication through the engine's context cache"
    )
    batch.add_argument(
        "--count", type=int, default=256, help="number of operand pairs"
    )
    batch.add_argument("--modulus", type=_parse_int, default=None, help="modulus p")
    batch.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="use this curve's base-field prime when --modulus is not given",
    )
    batch.add_argument(
        "--backend",
        default="r4csa-lut",
        help="engine backend (see 'repro backends' for the list)",
    )
    batch.add_argument(
        "--seed", type=int, default=2024, help="seed for the random operand pairs"
    )
    batch.add_argument(
        "--json", action="store_true", help="emit the batch result as JSON"
    )

    chip = subparsers.add_parser(
        "chip",
        help="multi-macro chip scale-out of one workload (the chip-scaling "
             "experiment as a shortcut)",
    )
    chip.add_argument(
        "--workload",
        choices=sorted(CHIP_WORKLOADS),
        default="ecdsa-sign",
        help="multiplication stream to dispatch across the chip",
    )
    chip.add_argument(
        "--macros",
        default="1,2,4,8,16",
        help="comma-separated macro counts to scale across",
    )
    chip.add_argument("--bitwidth", type=int, default=256, help="operand width")
    chip.add_argument(
        "--scalar-bits", type=int, default=256, help="scalar width (ECC/MSM workloads)"
    )
    chip.add_argument(
        "--signatures", type=int, default=1, help="signatures (ecdsa-sign workload)"
    )
    chip.add_argument(
        "--size", type=int, default=4096, help="vector size (ntt workload)"
    )
    chip.add_argument(
        "--points", type=int, default=128, help="point count (msm workload)"
    )
    chip.add_argument(
        "--quick", action="store_true", help="apply the experiment's quick overrides"
    )
    chip.add_argument(
        "--json", action="store_true", help="emit the structured result as JSON"
    )
    _add_cache_options(chip)

    serve = subparsers.add_parser(
        "serve",
        help="the async serving layer (self-test traffic against an "
             "in-process server)",
    )
    serve.add_argument(
        "--self-test",
        dest="self_test",
        action="store_true",
        help="drive the built-in multi-tenant traffic mix and report metrics",
    )
    serve.add_argument(
        "--backend",
        default="r4csa-lut",
        help="engine backend serving the traffic",
    )
    serve.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="curve whose base-field prime the traffic multiplies under",
    )
    serve.add_argument(
        "--tenants", type=int, default=None,
        help="concurrent client tenants (default 4; 2 under --quick)",
    )
    serve.add_argument(
        "--requests", type=int, default=None,
        help="requests per tenant (default 32; 8 under --quick)",
    )
    serve.add_argument(
        "--quick", action="store_true", help="shrink the traffic for CI smoke"
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="shard batch execution across N worker processes "
             "(0 = inline on the event loop)",
    )
    serve.add_argument(
        "--json", action="store_true", help="emit the metrics summary as JSON"
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit one request to an in-process server and await the result",
    )
    submit.add_argument(
        "--workload",
        choices=("batch", "product-tree"),
        default="product-tree",
        help="request shape: a flat operand batch or a workload graph",
    )
    submit.add_argument(
        "--count", type=int, default=16,
        help="operand pairs (batch) or leaves (product-tree)",
    )
    submit.add_argument(
        "--backend",
        default="r4csa-lut",
        help="engine backend (see 'repro backends' for the list)",
    )
    submit.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default="bn254",
        help="use this curve's base-field prime when --modulus is not given",
    )
    submit.add_argument("--modulus", type=_parse_int, default=None, help="modulus p")
    submit.add_argument(
        "--seed", type=int, default=2024, help="seed for the random operands"
    )
    submit.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline in milliseconds",
    )
    submit.add_argument(
        "--json", action="store_true", help="emit the response as JSON"
    )

    cluster = subparsers.add_parser(
        "cluster",
        help="the multi-node serving fleet: router, worker nodes, load tests",
    )
    cluster_commands = cluster.add_subparsers(
        dest="cluster_command", required=True
    )

    cluster_router = cluster_commands.add_parser(
        "router",
        help="run a cluster router (placement, replication, SLOs) until "
             "interrupted",
    )
    cluster_router.add_argument(
        "--host", default="127.0.0.1", help="listen address"
    )
    cluster_router.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral; the bound port is printed)",
    )
    cluster_router.add_argument(
        "--backend", default="compiled",
        help="engine backend every joining worker builds",
    )
    cluster_router.add_argument(
        "--curve",
        choices=sorted(CURVE_SPECS),
        default=None,
        help="default curve of the fleet's engine spec",
    )
    cluster_router.add_argument(
        "--modulus", type=_parse_int, default=None,
        help="default modulus of the fleet's engine spec",
    )
    cluster_router.add_argument(
        "--replication", type=int, default=2,
        help="ring owners a modulus may be placed on (hot-modulus spread)",
    )
    cluster_router.add_argument(
        "--rate-per-tenant", type=float, default=None,
        help="token-bucket rate per tenant in pairs/second (default: unlimited)",
    )
    cluster_router.add_argument(
        "--wire", type=int, choices=(1, 2), default=2,
        help="highest wire protocol version the router negotiates "
             "(2 = binary codec, 1 = JSON only)",
    )

    cluster_worker = cluster_commands.add_parser(
        "worker",
        help="run one worker node against a router until released",
    )
    cluster_worker.add_argument(
        "--host", default="127.0.0.1", help="router address"
    )
    cluster_worker.add_argument(
        "--port", type=int, required=True, help="router port"
    )
    cluster_worker.add_argument(
        "--name", default=None, help="node name (default: worker-<pid>)"
    )
    cluster_worker.add_argument(
        "--pool-workers", type=int, default=0,
        help="process-pool shards under this node's server (0 = inline)",
    )
    cluster_worker.add_argument(
        "--wire", type=int, choices=(1, 2), default=2,
        help="highest wire protocol version this node advertises "
             "(2 = binary codec, 1 = JSON only)",
    )

    cluster_loadtest = cluster_commands.add_parser(
        "loadtest",
        help="spin up a local fleet, replay a seeded multi-tenant trace, "
             "verify every product",
    )
    cluster_loadtest.add_argument(
        "--workers", type=int, default=2, help="worker node processes"
    )
    cluster_loadtest.add_argument(
        "--duration", type=float, default=2.0,
        help="trace duration in seconds",
    )
    cluster_loadtest.add_argument(
        "--rate", type=float, default=30.0,
        help="mean request rate per tenant (requests/second)",
    )
    cluster_loadtest.add_argument(
        "--seed", type=int, default=2024, help="trace seed"
    )
    cluster_loadtest.add_argument(
        "--kill-worker", dest="kill_worker", action="store_true",
        help="SIGKILL one worker halfway through (recovery must lose nothing)",
    )
    cluster_loadtest.add_argument(
        "--quick", action="store_true", help="shrink the trace for CI smoke"
    )
    cluster_loadtest.add_argument(
        "--wire", type=int, choices=(1, 2), default=2,
        help="wire protocol version of the whole fleet path "
             "(2 = binary codec, 1 = JSON only)",
    )
    cluster_loadtest.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (lost/mismatches/latency "
             "percentiles) as JSON instead of the human summary",
    )
    cluster_loadtest.add_argument(
        "--output", default=None, metavar="PATH",
        help="additionally write the JSON report to PATH (works with or "
             "without --json)",
    )

    backends = subparsers.add_parser(
        "backends", help="capability matrix of every registered engine backend"
    )
    backends.add_argument(
        "--json", action="store_true", help="emit the backend metadata as JSON"
    )

    cycles = subparsers.add_parser("cycles", help="cycle models at a bitwidth")
    cycles.add_argument("--bitwidth", type=int, default=256)

    area = subparsers.add_parser("area", help="area model for a configuration")
    area.add_argument("--rows", type=int, default=64)
    area.add_argument("--bitwidth", type=int, default=256)
    area.add_argument("--technology", type=int, default=65)

    verify = subparsers.add_parser(
        "verify", help="equivalence-check the accelerator against the oracle"
    )
    verify.add_argument("--bitwidth", type=int, default=32)
    verify.add_argument("--cases", type=int, default=8)

    hdl = subparsers.add_parser(
        "hdl",
        help="the RTL tier: emit the macro Verilog, run the co-simulation",
    )
    hdl_commands = hdl.add_subparsers(dest="hdl_command", required=True)

    hdl_emit = hdl_commands.add_parser(
        "emit",
        help="elaborate the ModSRAM macro and write its Verilog "
             "(deterministic; doubles as the golden-file gate)",
    )
    hdl_emit.add_argument(
        "--bitwidth", type=int, default=256, help="operand width in bits"
    )
    hdl_emit.add_argument(
        "--out", default="tests/hdl/golden", metavar="DIR",
        help="directory the .v files are written to, or compared against "
             "with --check (default: the golden directory)",
    )
    hdl_emit.add_argument(
        "--check", action="store_true",
        help="compare the emitted RTL against the files already in --out "
             "instead of writing; exit 1 on drift",
    )

    hdl_cosim = hdl_commands.add_parser(
        "cosim",
        help="run the hdl-cosim experiment: event-driven RTL simulation "
             "vs the cycle and analytical tiers",
    )
    hdl_cosim.add_argument(
        "--quick", action="store_true", help="shrink the sweep for CI smoke"
    )
    hdl_cosim.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    hdl_cosim.add_argument(
        "--cases", type=int, default=None,
        help="operand pairs per bitwidth (default: experiment default)",
    )
    hdl_cosim.add_argument(
        "--seed", type=int, default=None, help="operand stream seed"
    )

    dse = subparsers.add_parser(
        "dse",
        help="declarative design-space exploration with Pareto frontiers",
    )
    dse_commands = dse.add_subparsers(dest="dse_command", required=True)

    dse_run = dse_commands.add_parser(
        "run",
        help="expand a sweep spec into design points, evaluate them "
             "through the cached parallel runner and print the "
             "throughput/energy/area Pareto frontier",
    )
    dse_run.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC",
        help="sweep-spec file (JSON, or YAML when PyYAML is installed); "
             "default: the built-in 640-point grid",
    )
    dse_run.add_argument(
        "--quick", action="store_true",
        help="shrink the grid to two values per axis (CI smoke)",
    )
    dse_run.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="keep only the first N values of every axis",
    )
    dse_run.add_argument(
        "--workload-ops", type=int, default=None, metavar="N",
        help="override the per-point workload stream length",
    )
    dse_run.add_argument(
        "--parallel", action="store_true",
        help="evaluate points across the process pool",
    )
    dse_run.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: cpu count)",
    )
    dse_run.add_argument(
        "--json", action="store_true",
        help="emit the full run result as JSON",
    )
    dse_run.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the run result JSON to PATH "
             "(readable by 'repro dse frontier')",
    )
    _add_cache_options(dse_run)

    dse_frontier = dse_commands.add_parser(
        "frontier",
        help="re-extract and print the Pareto frontier of a saved run",
    )
    dse_frontier.add_argument(
        "input", metavar="RESULTS",
        help="JSON file written by 'repro dse run --output'",
    )
    dse_frontier.add_argument(
        "--json", action="store_true",
        help="emit the frontier as JSON",
    )
    return parser


def _make_runner(arguments: argparse.Namespace, parallel: bool = False) -> Runner:
    """The experiment runner a subcommand's cache/parallel flags describe."""
    return Runner(
        cache_dir=arguments.cache_dir,
        use_cache=not arguments.no_cache,
        parallel=parallel,
        max_workers=getattr(arguments, "workers", None),
    )


def _command_report(arguments: argparse.Namespace) -> int:
    print(
        build_report(
            quick=arguments.quick,
            runner=_make_runner(arguments, parallel=arguments.parallel),
        )
    )
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    handlers = {
        "list": _command_experiment_list,
        "run": _command_experiment_run,
        "sweep": _command_experiment_sweep,
    }
    return handlers[arguments.experiment_command](arguments)


def _command_experiment_list(arguments: argparse.Namespace) -> int:
    definitions = [get_experiment(name) for name in available_experiments()]
    if arguments.json:
        print(json.dumps([d.describe() for d in definitions], indent=2))
        return 0
    rows = []
    for definition in definitions:
        rows.append(
            (
                definition.name,
                definition.title,
                ", ".join(definition.sweep_axes) or "-",
                "yes" if definition.quick_overrides else "no",
            )
        )
    print(render_table(
        ("experiment", "title", "sweep axes", "quick mode"),
        rows,
        title="Registered experiments",
    ))
    return 0


def _command_experiment_run(arguments: argparse.Namespace) -> int:
    params = _parse_assignments(arguments.assignments, "--set")
    runner = _make_runner(arguments)
    result = runner.run(arguments.name, params, quick=arguments.quick)
    if arguments.json:
        print(result.to_json(indent=2))
        return 0
    print(result.render())
    return 0


def _command_experiment_sweep(arguments: argparse.Namespace) -> int:
    params = _parse_assignments(arguments.assignments, "--set")
    axes = _parse_axes(arguments.axes)
    runner = _make_runner(arguments, parallel=arguments.parallel)
    sweep = runner.sweep(arguments.name, axes, params, quick=arguments.quick)
    if arguments.json:
        print(json.dumps(sweep.to_dict(), indent=2))
        return 0
    if arguments.render:
        divider = "\n\n" + "-" * 78 + "\n\n"
        print(divider.join(result.render() for result in sweep.results))
    else:
        headers = tuple(sorted(axes)) + ("elapsed (s)", "cache hit")
        print(render_table(
            headers,
            sweep.summary_rows(),
            title=f"Sweep of experiment {arguments.name!r} "
                  f"({len(sweep.results)} points)",
        ))
    print(f"{sweep.cache_hits}/{len(sweep.results)} points from cache; "
          f"computed in {sweep.elapsed_seconds:.3f} s")
    return 0


def _make_engine(arguments: argparse.Namespace) -> Optional[Engine]:
    """Build the engine a subcommand asked for, or report a usage error."""
    if arguments.backend not in available_backends():
        print(f"unknown backend {arguments.backend!r}; available: "
              f"{', '.join(available_backends())}")
        return None
    return Engine(
        backend=arguments.backend,
        curve=arguments.curve,
        modulus=arguments.modulus,
    )


def _command_multiply(arguments: argparse.Namespace) -> int:
    engine = _make_engine(arguments)
    if engine is None:
        return 2
    modulus = engine.default_modulus
    assert modulus is not None
    result = engine.multiply(arguments.a % modulus, arguments.b % modulus)
    if arguments.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0
    print(f"backend : {result.backend}")
    print(f"modulus : {result.modulus:#x}")
    print(f"product : {result.value:#x}")
    if result.modeled_cycles is not None:
        print(f"cycle model at {result.bitwidth} bits: {result.modeled_cycles}")
    return 0


def _command_batch(arguments: argparse.Namespace) -> int:
    if arguments.count < 1:
        print(f"--count must be positive, got {arguments.count}")
        return 2
    engine = _make_engine(arguments)
    if engine is None:
        return 2
    modulus = engine.default_modulus
    assert modulus is not None
    rng = random.Random(arguments.seed)
    pairs = [
        (rng.randrange(modulus), rng.randrange(modulus))
        for _ in range(arguments.count)
    ]
    result = engine.multiply_batch(pairs)
    if arguments.json:
        payload = result.as_dict()
        payload["seed"] = arguments.seed
        payload["cache"] = engine.cache_stats.as_dict()
        print(json.dumps(payload, indent=2))
        return 0
    print(f"backend        : {result.backend}")
    print(f"modulus        : {result.modulus:#x}")
    print(f"pairs          : {result.count}")
    print(f"first product  : {result.values[0]:#x}")
    print(f"last product   : {result.values[-1]:#x}")
    if result.modeled_cycles is not None:
        print(f"modeled cycles : {result.modeled_cycles} "
              f"({result.modeled_cycles // result.count} per multiplication)")
    print(f"precomputations: {result.stats.precomputations} during the batch "
          "(per-modulus constants were cached before it started)")
    return 0


#: Argparse defaults of the ``chip`` subcommand, mapped to the experiment's
#: parameter names.  Values the user leaves at their default are *omitted*
#: from the experiment params so the experiment's own defaults — and, under
#: ``--quick``, its quick overrides — stay in force; explicit flags always
#: win, in quick mode too.
_CHIP_DEFAULTS = {
    "workload": ("workload", "ecdsa-sign"),
    "bitwidth": ("bitwidth", 256),
    "scalar_bits": ("scalar_bits", 256),
    "signatures": ("signatures", 1),
    "size": ("vector_size", 4096),
    "points": ("msm_points", 128),
}


def _command_chip(arguments: argparse.Namespace) -> int:
    try:
        macro_counts = [
            int(value, 0) for value in str(arguments.macros).split(",") if value
        ]
    except ValueError:
        print(f"--macros expects comma-separated integers, got {arguments.macros!r}")
        return 2
    if not macro_counts or any(count <= 0 for count in macro_counts):
        print(f"--macros needs positive macro counts, got {arguments.macros!r}")
        return 2
    params = {}
    for attribute, (param, default) in _CHIP_DEFAULTS.items():
        value = getattr(arguments, attribute)
        if value != default:
            params[param] = value
    if arguments.macros != "1,2,4,8,16":
        params["macro_counts"] = macro_counts
    runner = _make_runner(arguments)
    result = runner.run("chip-scaling", params, quick=arguments.quick)
    if arguments.json:
        print(result.to_json(indent=2))
        return 0
    print(result.render())
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    if not arguments.self_test:
        print(
            "only --self-test mode is available: the server is in-process "
            "(see 'repro submit' and repro.service for the API)"
        )
        return 2
    from repro.service import run_self_test

    # Explicit sizing always wins, even over --quick's shrunk traffic.
    traffic = {}
    if arguments.tenants is not None:
        traffic["tenants"] = arguments.tenants
    if arguments.requests is not None:
        traffic["requests"] = arguments.requests
    if arguments.workers < 0:
        print(f"--workers must be >= 0, got {arguments.workers}")
        return 2
    summary = run_self_test(
        quick=arguments.quick,
        backend=arguments.backend,
        curve=arguments.curve,
        workers=arguments.workers,
        **traffic,
    )
    if arguments.json:
        print(json.dumps(summary, indent=2))
        return 0
    latency = summary["latency"]
    executor = summary["executor"]
    print(f"backend           : {summary['backend']}")
    if executor["kind"] == "pool":
        print(f"executor          : pool, {executor['workers']} workers "
              f"({executor['jobs']} jobs, {executor['spilled_jobs']} spilled, "
              f"{executor['worker_restarts']} restarts)")
    else:
        print("executor          : inline (event loop)")
    print(f"tenants           : {summary['tenants']} "
          f"x {summary['requests_per_tenant']} requests")
    print(f"verified requests : {summary['verified_requests']}"
          f" (all products checked against the big-int reference)")
    print(f"throughput        : {summary['requests_per_second']:.1f} req/s, "
          f"{summary['multiplications_per_second']:.1f} mul/s")
    print(f"batching          : {summary['batches']} engine batches, "
          f"mean {summary['mean_batch_size']:.1f} pairs")
    print(f"latency           : p50 {latency['p50_ms']:.3f} ms, "
          f"p95 {latency['p95_ms']:.3f} ms, p99 {latency['p99_ms']:.3f} ms")
    cache = summary["context_cache"]
    print(f"context cache     : {cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.3f})")
    return 0


def _command_submit(arguments: argparse.Namespace) -> int:
    import asyncio

    minimum = 2 if arguments.workload == "product-tree" else 1
    if arguments.count < minimum:
        print(f"--count must be at least {minimum} for {arguments.workload}, "
              f"got {arguments.count}")
        return 2
    if arguments.backend not in available_backends():
        print(f"unknown backend {arguments.backend!r}; available: "
              f"{', '.join(available_backends())}")
        return 2
    from repro.service import Client, Server
    from repro.workloads import product_tree_graph

    async def run():
        async with Server(
            backend=arguments.backend,
            curve=arguments.curve,
            modulus=arguments.modulus,
        ) as server:
            modulus = server.engine.default_modulus
            assert modulus is not None
            rng = random.Random(arguments.seed)
            client = Client(server, tenant="cli")
            if arguments.workload == "product-tree":
                leaves = [
                    rng.randrange(1, modulus) for _ in range(arguments.count)
                ]
                graph = product_tree_graph(leaves)
                response = await client.submit_graph(
                    graph, deadline_ms=arguments.deadline_ms
                )
                shape = graph.as_dict()
            else:
                pairs = [
                    (rng.randrange(modulus), rng.randrange(modulus))
                    for _ in range(arguments.count)
                ]
                response = await client.multiply_batch(
                    pairs, deadline_ms=arguments.deadline_ms
                )
                shape = {"pairs": len(pairs)}
            return response, shape, server.metrics_summary()

    response, shape, summary = asyncio.run(run())
    if arguments.json:
        payload = {
            "workload": arguments.workload,
            "shape": shape,
            "kind": response.kind,
            "backend": response.backend,
            "modulus": response.modulus,
            "values": list(response.values),
            "batched_pairs": response.batched_pairs,
            "modeled_cycles": response.modeled_cycles,
            "latency_ms": response.latency_ms,
            "server": summary,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"workload : {arguments.workload} ({shape})")
    print(f"backend  : {response.backend}")
    print(f"modulus  : {response.modulus:#x}")
    if len(response.values) == 1:
        print(f"result   : {response.values[0]:#x}")
    else:
        print(f"results  : {len(response.values)} products, "
              f"first {response.values[0]:#x}")
    if response.modeled_cycles is not None:
        print(f"modeled  : {response.modeled_cycles} hardware cycles")
    print(f"latency  : {response.latency_ms:.3f} ms "
          f"(queued {response.queue_ms:.3f} ms)")
    return 0


def _command_cluster(arguments: argparse.Namespace) -> int:
    handlers = {
        "router": _command_cluster_router,
        "worker": _command_cluster_worker,
        "loadtest": _command_cluster_loadtest,
    }
    return handlers[arguments.cluster_command](arguments)


def _command_cluster_router(arguments: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import Router, RouterConfig
    from repro.engine import EngineSpec

    if arguments.backend not in available_backends():
        print(f"unknown backend {arguments.backend!r}; available: "
              f"{', '.join(available_backends())}")
        return 2
    spec = EngineSpec(
        backend=arguments.backend,
        curve=arguments.curve,
        modulus=arguments.modulus,
    )
    config = RouterConfig(
        host=arguments.host,
        port=arguments.port,
        replication=arguments.replication,
        rate_per_tenant=arguments.rate_per_tenant,
        wire=arguments.wire,
    )

    async def run():
        async with Router(spec, config=config) as router:
            print(f"router listening on {config.host}:{router.port} "
                  f"(backend {spec.backend}, replication "
                  f"{config.replication})", flush=True)
            try:
                while True:
                    await asyncio.sleep(3600)
            except asyncio.CancelledError:  # pragma: no cover - signal path
                pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("router stopped")
    return 0


def _command_cluster_worker(arguments: argparse.Namespace) -> int:
    from repro.cluster import run_worker

    if arguments.pool_workers < 0:
        print(f"--pool-workers must be >= 0, got {arguments.pool_workers}")
        return 2
    try:
        run_worker(
            arguments.host,
            arguments.port,
            name=arguments.name,
            pool_workers=arguments.pool_workers,
            wire=arguments.wire,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _command_cluster_loadtest(arguments: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import run_loadtest

    if arguments.workers < 1:
        print(f"--workers must be >= 1, got {arguments.workers}")
        return 2
    report = asyncio.run(
        run_loadtest(
            workers=arguments.workers,
            duration_s=arguments.duration,
            rate=arguments.rate,
            seed=arguments.seed,
            kill_worker=arguments.kill_worker,
            quick=arguments.quick,
            wire=arguments.wire,
        )
    )
    healthy = report["lost"] == 0 and report["mismatches"] == 0
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    if arguments.json:
        print(json.dumps(report, indent=2))
        return 0 if healthy else 1
    cluster = report["cluster"]
    latency = report["latency"]
    print(f"fleet             : {report['workers']} workers, "
          f"wire v{report.get('wire', 1)}"
          + (f" (killed pid {report['killed_pid']} mid-run)"
             if report["kill_worker"] else ""))
    print(f"trace             : {report['events']} requests, "
          f"{len(report['tenants'])} tenants, seed {report['seed']}, "
          f"{report['duration_s']:.1f} s")
    print(f"sent / completed  : {report['sent']} / {report['completed']} "
          f"(rejected {report['rejected']}, deadline misses "
          f"{report['deadline_misses']}, failed {report['failed']})")
    print(f"lost / mismatches : {report['lost']} / {report['mismatches']}")
    print(f"latency           : p50 {latency['p50_ms']:.2f} ms, "
          f"p95 {latency['p95_ms']:.2f} ms, p99 {latency['p99_ms']:.2f} ms")
    print(f"placement         : {cluster['redispatches']} re-dispatches, "
          f"{cluster['lost_nodes']} lost nodes, "
          f"{cluster['live_nodes']} nodes live at end")
    print("verdict           : " + ("PASS (nothing lost, every product "
          "bit-identical)" if healthy else "FAIL"))
    return 0 if healthy else 1


def _command_backends(arguments: argparse.Namespace) -> int:
    infos = [get_backend(name).info for name in available_backends()]
    if arguments.json:
        from repro.compiled.cache import kernel_cache_stats
        from repro.engine import global_cache_stats

        payload = {
            "backends": [info.as_dict() for info in infos],
            "context_cache": global_cache_stats().as_dict(),
            "compiled_kernel_cache": kernel_cache_stats(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for info in infos:
        bitwidths = (
            "any"
            if info.supported_bitwidths is None
            else ", ".join(str(bits) for bits in info.supported_bitwidths)
        )
        tier = info.fidelity or "-"
        if info.macros is not None:
            tier += f" x{info.macros}"
        codegen = "-"
        if info.codegen is not None:
            codegen = str(info.codegen.get("strategy", "?"))
            if info.codegen.get("numpy_requested") and info.codegen.get(
                "numpy_available"
            ):
                codegen += "+numpy"
        rows.append(
            (
                info.name,
                info.kind,
                tier,
                codegen,
                "yes" if info.has_cycle_model else "no",
                "direct" if info.direct_form else "montgomery",
                bitwidths,
            )
        )
    print(render_table(
        ("backend", "kind", "tier", "codegen", "cycle model", "result form",
         "native bitwidths"),
        rows,
        title="Engine backends",
    ))
    return 0


def _command_cycles(arguments: argparse.Namespace) -> int:
    bitwidth = arguments.bitwidth
    rows = []
    for key, model in sorted(COMPLEXITY_MODELS.items()):
        rows.append((model.label, model.order, model.cycles(bitwidth)))
    print(render_table(
        ("algorithm / design", "order", f"cycles @ {bitwidth}b"),
        rows,
        title="Cycle models",
    ))
    print("\nregistered engine backends: " + ", ".join(available_backends()))
    return 0


def _command_area(arguments: argparse.Namespace) -> int:
    config = ModSRAMConfig(
        rows=arguments.rows,
        bitwidth=arguments.bitwidth,
        columns=max(arguments.bitwidth, 4),
        technology_nm=arguments.technology,
    )
    model = AreaModel(config)
    breakdown = model.breakdown()
    rows = [
        (name.replace("_mm2", "").replace("_", " "), round(value, 5))
        for name, value in breakdown.as_dict().items()
    ]
    print(render_table(("component", "area (mm^2)"), rows,
                       title=f"ModSRAM area model ({arguments.rows}x{arguments.bitwidth}, "
                             f"{arguments.technology} nm)"))
    print(f"overhead over plain SRAM: {model.overhead_percent():.1f}%")
    return 0


def _command_verify(arguments: argparse.Namespace) -> int:
    bitwidth = arguments.bitwidth
    config = ModSRAMConfig().with_bitwidth(bitwidth)
    checker = EquivalenceChecker(config)
    modulus = ((1 << bitwidth) - 5) | 1
    report = checker.run(modulus, random_cases=arguments.cases)
    print(report.summary())
    return 0 if report.passed else 1


def _command_hdl(arguments: argparse.Namespace) -> int:
    handlers = {
        "emit": _command_hdl_emit,
        "cosim": _command_hdl_cosim,
    }
    return handlers[arguments.hdl_command](arguments)


def _command_hdl_emit(arguments: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.hdl import elaborate_macro, emit_design

    config = ModSRAMConfig().with_bitwidth(arguments.bitwidth)
    files = emit_design(elaborate_macro(config))
    out = Path(arguments.out)
    if arguments.check:
        drifted = []
        for name, text in sorted(files.items()):
            path = out / name
            if not path.is_file():
                drifted.append(f"{path}: missing")
            elif path.read_text() != text:
                drifted.append(f"{path}: differs from freshly emitted RTL")
        for line in drifted:
            print(line)
        if drifted:
            print(f"hdl emit --check: {len(drifted)} file(s) drifted; "
                  f"regenerate with: repro hdl emit --out {out}")
            return 1
        print(f"hdl emit --check: {len(files)} file(s) match {out}")
        return 0
    out.mkdir(parents=True, exist_ok=True)
    for name, text in sorted(files.items()):
        (out / name).write_text(text)
        print(f"wrote {out / name}")
    return 0


def _command_hdl_cosim(arguments: argparse.Namespace) -> int:
    from repro.experiments import get_experiment

    definition = get_experiment("hdl-cosim")
    params = dict(definition.defaults)
    if arguments.quick:
        params.update(definition.quick_overrides)
    if arguments.cases is not None:
        params["cases"] = arguments.cases
    if arguments.seed is not None:
        params["seed"] = arguments.seed
    result = definition.execute(params)
    if arguments.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.all_match and result.paper_point_ok else 1


def _command_dse(arguments: argparse.Namespace) -> int:
    handlers = {
        "run": _command_dse_run,
        "frontier": _command_dse_frontier,
    }
    return handlers[arguments.dse_command](arguments)


def _command_dse_run(arguments: argparse.Namespace) -> int:
    from repro.dse import default_sweep_spec, load_spec, run_dse

    spec = (
        load_spec(arguments.spec)
        if arguments.spec
        else default_sweep_spec()
    )
    if arguments.workload_ops is not None:
        spec = spec.with_fixed(workload_ops=arguments.workload_ops)
    if arguments.sample:
        spec = spec.quick(per_axis=arguments.sample)
    runner = _make_runner(arguments, parallel=arguments.parallel)
    result = run_dse(spec, runner, quick=arguments.quick)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
    if arguments.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.frontier else 1


def _command_dse_frontier(arguments: argparse.Namespace) -> int:
    from repro.dse import DseRunResult, pareto_frontier

    try:
        with open(arguments.input, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        raise ReproError(f"cannot read DSE results {arguments.input}: {error}")
    run = DseRunResult.from_dict(data)
    frontier = pareto_frontier([point.metrics() for point in run.points])
    rebuilt = DseRunResult(
        spec=run.spec,
        points=run.points,
        frontier=frontier,
        dominated=len(run.points) - len(frontier),
        cache_hits=run.cache_hits,
        elapsed_seconds=run.elapsed_seconds,
    )
    if arguments.json:
        print(
            json.dumps(
                [
                    {
                        "index": member.index,
                        "objectives": dict(member.objectives),
                        "dominates": member.dominates,
                    }
                    for member in frontier
                ],
                indent=2,
            )
        )
    else:
        print(rebuilt.render())
    return 0 if frontier else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "report": _command_report,
        "experiment": _command_experiment,
        "multiply": _command_multiply,
        "batch": _command_batch,
        "chip": _command_chip,
        "serve": _command_serve,
        "submit": _command_submit,
        "cluster": _command_cluster,
        "backends": _command_backends,
        "cycles": _command_cycles,
        "area": _command_area,
        "verify": _command_verify,
        "hdl": _command_hdl,
        "dse": _command_dse,
    }
    try:
        return handlers[arguments.command](arguments)
    except ReproError as error:
        print(f"error: {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
