"""Package metadata for the ModSRAM (DAC 2024) reproduction library.

No ``pyproject.toml`` is used so that editable installs keep working on
environments whose setuptools predates PEP 660 editable-wheel support
(no ``wheel`` package available offline).  The library is pure Python with
no runtime dependencies.
"""

import re

from setuptools import find_packages, setup


def read_version() -> str:
    """The single source of truth is ``repro.__version__``.

    Parsed textually (not imported) so ``setup.py`` works before the
    package's dependencies — none today, but that is incidental — are
    importable in the build environment.
    """
    with open("src/repro/__init__.py", encoding="utf-8") as handle:
        match = re.search(
            r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE
        )
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="modsram-repro",
    version=read_version(),
    description=(
        "Reproduction of 'ModSRAM: Algorithm-Hardware Co-Design for Large "
        "Number Modular Multiplication in SRAM' (DAC 2024): R4CSA-LUT in a "
        "layered simulation core (functional/analytical/cycle fidelity "
        "tiers plus an N-macro chip model), PIM baselines, ECC/ZKP "
        "substrates behind a unified Engine API, a dependency-aware "
        "Workload Graph API with an asyncio serving layer, and a "
        "declarative, parallel, disk-cached Experiment API for every "
        "table and figure."
    ),
    long_description=open("src/repro/__init__.py").read().split('"""')[1],
    long_description_content_type="text/x-rst",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Security :: Cryptography",
    ],
)
