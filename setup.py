"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
editable installs keep working on environments whose setuptools predates
PEP 660 editable-wheel support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
