"""Placement policy units: hash ring, SLO catalog, token buckets.

All pure logic — deterministic hashing, injected clocks — so these run
in microseconds and pin the policy behavior the router builds on.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    HashRing,
    SloCatalog,
    SloClass,
    TenantRateLimiter,
    TokenBucket,
    stable_hash,
)
from repro.cluster.slo import DEFAULT_SLO_CLASSES
from repro.errors import ConfigurationError


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash("node-a#3") == stable_hash("node-a#3")

    def test_int_and_string_keys_differ(self):
        # Different key spaces should not trivially collide.
        assert stable_hash(7) != stable_hash("7")

    def test_spread(self):
        values = {stable_hash(i) for i in range(1000)}
        assert len(values) == 1000


class TestHashRing:
    def test_empty_ring(self):
        ring = HashRing()
        assert ring.nodes_for(97) == []
        with pytest.raises(ConfigurationError):
            ring.home(97)

    def test_single_node_owns_everything(self):
        ring = HashRing()
        ring.add("a")
        assert all(ring.home(m) == "a" for m in range(2, 50))

    def test_replication_returns_distinct_nodes(self):
        ring = HashRing()
        for name in ("a", "b", "c", "d"):
            ring.add(name)
        owners = ring.nodes_for((1 << 127) - 1, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_count_clamps_to_membership(self):
        ring = HashRing()
        ring.add("a")
        ring.add("b")
        assert sorted(ring.nodes_for(97, 10)) == ["a", "b"]

    def test_placement_is_deterministic(self):
        ring1, ring2 = HashRing(), HashRing()
        for ring in (ring1, ring2):
            for name in ("x", "y", "z"):
                ring.add(name)
        moduli = [(1 << 64) - k for k in range(1, 200)]
        assert [ring1.home(m) for m in moduli] == [
            ring2.home(m) for m in moduli
        ]

    def test_join_rehomes_a_sliver_not_everything(self):
        """The consistent-hashing point: one join moves ~1/N of keys."""
        ring = HashRing()
        for name in ("a", "b", "c", "d"):
            ring.add(name)
        moduli = [(1 << 61) + 2 * k + 1 for k in range(500)]
        before = {m: ring.home(m) for m in moduli}
        ring.add("e")
        moved = sum(1 for m in moduli if ring.home(m) != before[m])
        # Expect ~1/5 moved; anything under half proves it is not the
        # modulus-N cliff (which re-homes ~4/5).
        assert 0 < moved < len(moduli) / 2
        # And every moved key went *to* the new node.
        assert all(
            ring.home(m) == "e" for m in moduli if ring.home(m) != before[m]
        )

    def test_remove_is_the_mirror_of_add(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        moduli = list(range(3, 400, 2))
        before = {m: ring.home(m) for m in moduli}
        ring.add("d")
        ring.remove("d")
        assert {m: ring.home(m) for m in moduli} == before

    def test_membership_ops_idempotent(self):
        ring = HashRing(vnodes=8)
        ring.add("a")
        ring.add("a")
        ring.remove("missing")
        assert len(ring) == 1 and "a" in ring

    def test_vnodes_validation(self):
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)

    def test_load_split_is_roughly_even(self):
        ring = HashRing()
        for name in ("a", "b", "c", "d"):
            ring.add(name)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for k in range(2000):
            counts[ring.home((1 << 50) + k)] += 1
        # Virtual nodes keep the skew bounded: no node owns more than
        # twice its fair share.
        assert max(counts.values()) < 2 * (2000 / 4)


class TestSloCatalog:
    def test_default_catalog_tiers(self):
        catalog = SloCatalog()
        assert catalog.names == ["gold", "silver", "best-effort"]
        gold = catalog.resolve("gold")
        assert gold.deadline_ms == 2000.0 and gold.priority == 2

    def test_none_resolves_to_loosest_tier(self):
        catalog = SloCatalog()
        assert catalog.resolve(None).name == "best-effort"
        assert catalog.default.deadline_ms is None

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(ConfigurationError, match="platinum"):
            SloCatalog().resolve("platinum")

    def test_custom_catalog(self):
        catalog = SloCatalog(
            [SloClass("fast", 100.0, 1), SloClass("slow", None, 0)]
        )
        assert catalog.resolve("fast").deadline_ms == 100.0
        assert catalog.default.name == "slow"

    def test_duplicate_and_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SloCatalog([SloClass("a"), SloClass("a")])
        with pytest.raises(ConfigurationError, match="at least one"):
            SloCatalog([])

    def test_class_validation(self):
        with pytest.raises(ConfigurationError):
            SloClass("", 100.0)
        with pytest.raises(ConfigurationError):
            SloClass("bad", -1.0)

    def test_as_dict_roundtrips_names(self):
        payload = SloCatalog().as_dict()
        assert set(payload) == {slo.name for slo in DEFAULT_SLO_CLASSES}
        assert payload["gold"]["priority"] == 2


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=lambda: now[0])
        assert bucket.try_acquire(5.0)          # full burst spent
        assert not bucket.try_acquire(1.0)      # empty -> reject
        now[0] = 0.3                            # 3 tokens refilled
        assert bucket.try_acquire(3.0)
        assert not bucket.try_acquire(0.5)

    def test_never_exceeds_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=4.0, clock=lambda: now[0])
        now[0] = 1000.0
        assert bucket.tokens == 4.0

    def test_request_bigger_than_burst_always_rejected(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: 0.0)
        assert not bucket.try_acquire(3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)


class TestTenantRateLimiter:
    def test_disabled_by_default(self):
        limiter = TenantRateLimiter()
        assert not limiter.enabled
        assert all(limiter.allow("t", 10 ** 9) for _ in range(100))

    def test_tenants_are_isolated(self):
        now = [0.0]
        limiter = TenantRateLimiter(
            rate_per_tenant=10.0, burst_per_tenant=4.0, clock=lambda: now[0]
        )
        assert limiter.allow("a", 4.0)
        assert not limiter.allow("a", 1.0)      # a is drained...
        assert limiter.allow("b", 4.0)          # ...b is untouched

    def test_burst_defaults_to_twice_rate(self):
        limiter = TenantRateLimiter(rate_per_tenant=8.0)
        assert limiter.burst_per_tenant == 16.0

    def test_describe_reports_levels(self):
        now = [0.0]
        limiter = TenantRateLimiter(
            rate_per_tenant=10.0, burst_per_tenant=6.0, clock=lambda: now[0]
        )
        limiter.allow("acme", 2.0)
        description = limiter.describe()
        assert description["enabled"] is True
        assert description["tenants"]["acme"] == 4.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantRateLimiter(rate_per_tenant=-1.0)
