"""The cluster loadtest's machine-readable contract.

``repro cluster loadtest --json`` (and ``run_loadtest``) feed CI smoke
checks and the ``kill_recovery`` benchmark section, so the report shape
is a contract: this module locks it against the same schema
``tools/check_bench.py`` validates the committed artifacts with — one
source of truth for both prose (docs/artifacts.md) and machines.
"""

from __future__ import annotations

import asyncio
import importlib.util
import json
import os

import pytest

from repro.cluster import run_loadtest

pytestmark = pytest.mark.slow

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _loadtest_schema():
    path = os.path.join(REPO_ROOT, "tools", "check_bench.py")
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, module.LOADTEST_REPORT


@pytest.fixture(scope="module")
def report():
    """One quick single-worker loadtest shared by every assertion."""
    return asyncio.run(
        run_loadtest(workers=1, duration_s=0.6, rate=10.0, seed=7, quick=True)
    )


class TestReportShape:
    def test_report_matches_the_check_bench_schema(self, report):
        checker, schema = _loadtest_schema()
        errors = []
        checker._validate(schema, report, "report", errors)
        assert not errors, errors

    def test_report_is_json_serializable(self, report):
        round_tripped = json.loads(json.dumps(report))
        assert round_tripped["sent"] == report["sent"]
        assert round_tripped["latency"]["p99_ms"] == pytest.approx(
            report["latency"]["p99_ms"]
        )

    def test_healthy_run_has_no_losses(self, report):
        assert report["lost"] == 0
        assert report["mismatches"] == 0
        assert report["workers"] == 1
        assert report["kill_worker"] is False

    def test_workers_run_the_default_compiled_backend(self, report):
        # The spec default flows through the welcome frame to every node.
        per_node = report["cluster"]["per_node"]
        assert per_node, "rollup lists no nodes"
        for node in per_node.values():
            heartbeat = node.get("heartbeat") or {}
            if "backend" in heartbeat:
                assert heartbeat["backend"] == "compiled"


class TestCliOutput:
    def test_output_writes_the_json_report(self, tmp_path, capsys):
        from repro.cli import main

        destination = tmp_path / "loadtest.json"
        code = main(
            [
                "cluster",
                "loadtest",
                "--workers",
                "1",
                "--duration",
                "0.6",
                "--rate",
                "10",
                "--quick",
                "--output",
                str(destination),
            ]
        )
        assert code == 0
        human = capsys.readouterr().out
        assert "verdict" in human  # the human report still prints
        written = json.loads(destination.read_text())
        checker, schema = _loadtest_schema()
        errors = []
        checker._validate(schema, written, "output", errors)
        assert not errors, errors
