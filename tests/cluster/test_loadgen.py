"""Trace generation determinism and replay accounting.

The loadgen's value is reproducibility: the same seed must produce the
same operands at the same offsets (a failing load test is a repro
recipe, not an anecdote), and the replay report must account for every
request it sent.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import (
    Router,
    TenantProfile,
    WorkerNode,
    build_trace,
    replay,
)
from repro.cluster.loadgen import TraceEvent
from repro.engine import EngineSpec
from repro.errors import ConfigurationError


def run(coroutine):
    return asyncio.run(coroutine)


class TestBuildTrace:
    def test_same_seed_same_trace(self):
        profiles = [
            TenantProfile(name="a", pattern="steady", rate=50.0),
            TenantProfile(name="b", pattern="diurnal", rate=50.0),
            TenantProfile(name="c", pattern="bursty", rate=50.0),
        ]
        first = build_trace(profiles, duration_s=2.0, seed=42)
        second = build_trace(profiles, duration_s=2.0, seed=42)
        assert first == second
        assert len(first) > 0

    def test_different_seed_different_operands(self):
        profiles = [TenantProfile(name="a", rate=50.0)]
        first = build_trace(profiles, duration_s=1.0, seed=1)
        second = build_trace(profiles, duration_s=1.0, seed=2)
        assert first != second

    def test_sorted_and_bounded(self):
        profiles = [
            TenantProfile(name="a", rate=80.0),
            TenantProfile(name="b", pattern="bursty", rate=80.0),
        ]
        trace = build_trace(profiles, duration_s=1.5, seed=3)
        offsets = [event.at_s for event in trace]
        assert offsets == sorted(offsets)
        assert all(0 <= at < 1.5 for at in offsets)

    def test_operands_respect_modulus(self):
        trace = build_trace(
            [TenantProfile(name="a", rate=100.0, modulus=97)],
            duration_s=1.0,
            seed=5,
        )
        assert trace, "steady profile at rate 100 must produce events"
        for event in trace:
            assert event.modulus == 97
            assert all(0 <= a < 97 and 0 <= b < 97 for a, b in event.pairs)

    def test_unconfigured_modulus_is_seeded_per_tenant(self):
        profiles = [
            TenantProfile(name="a", rate=100.0, bit_width=64),
            TenantProfile(name="b", rate=100.0, bit_width=64),
        ]
        trace = build_trace(profiles, duration_s=0.5, seed=9)
        moduli = {event.tenant: event.modulus for event in trace}
        assert moduli["a"] != moduli["b"]
        assert all(m.bit_length() == 64 for m in moduli.values())
        # And the choice is stable across rebuilds.
        again = build_trace(profiles, duration_s=0.5, seed=9)
        assert {e.tenant: e.modulus for e in again} == moduli

    def test_slo_rides_the_profile(self):
        trace = build_trace(
            [TenantProfile(name="a", rate=100.0, slo="gold")],
            duration_s=0.5,
            seed=1,
        )
        assert all(event.slo == "gold" for event in trace)

    def test_diurnal_peaks_mid_trace(self):
        trace = build_trace(
            [TenantProfile(name="d", pattern="diurnal", rate=200.0)],
            duration_s=2.0,
            seed=11,
        )
        mid = sum(1 for e in trace if 0.5 <= e.at_s < 1.5)
        edges = len(trace) - mid
        assert mid > edges  # the sinusoid concentrates arrivals mid-trace

    def test_bursty_has_quiet_phases(self):
        trace = build_trace(
            [TenantProfile(name="b", pattern="bursty", rate=200.0)],
            duration_s=2.0,
            seed=13,
        )
        # 25% duty cycle: the off-phases are empty by construction.
        on_fraction = len(
            [e for e in trace if (e.at_s / 2.0 * 8) % 2 < 0.5]
        ) / len(trace)
        assert on_fraction == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantProfile(name="x", pattern="weird")
        with pytest.raises(ConfigurationError):
            TenantProfile(name="x", rate=0.0)
        with pytest.raises(ConfigurationError):
            TenantProfile(name="x", pairs_per_request=0)
        with pytest.raises(ConfigurationError):
            build_trace([], duration_s=1.0)
        with pytest.raises(ConfigurationError):
            build_trace([TenantProfile(name="x")], duration_s=0.0)


class TestReplay:
    def test_replay_accounts_for_every_request(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    trace = build_trace(
                        [
                            TenantProfile(
                                name="a", rate=60.0, modulus=(1 << 61) - 1
                            ),
                            TenantProfile(
                                name="b", rate=60.0, slo="gold",
                                modulus=(1 << 61) - 1,
                            ),
                        ],
                        duration_s=0.5,
                        seed=21,
                    )
                    report = await replay(
                        "127.0.0.1", router.port, trace, time_scale=0.5
                    )
                    assert report["sent"] == len(trace)
                    assert report["lost"] == 0
                    assert report["mismatches"] == 0
                    assert report["completed"] + report["rejected"] + report[
                        "deadline_misses"
                    ] + report["failed"] == report["sent"]
                    assert report["cluster"]["completed"] == report["completed"]
                    assert sorted(report["tenants"]) == ["a", "b"]
                    return report

        report = run(scenario())
        assert report["completed"] > 0

    def test_time_scale_validation(self):
        event = TraceEvent(at_s=0.0, tenant="t", pairs=((1, 2),), modulus=97)
        with pytest.raises(ConfigurationError):
            run(replay("127.0.0.1", 1, [event], time_scale=0.0))
