"""Router + worker + client, end to end on localhost sockets.

Workers here run *in-process* (same event loop as the router) so the
tests are fast and deterministic; real killable worker processes are
exercised in ``test_node_failures.py``.  The bar throughout: the fleet
returns exactly what the in-process engine returns — bit-identical — and
policy (SLOs, rate limits, drain) is observable in responses and stats.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import (
    ClusterClient,
    Router,
    RouterConfig,
    SloCatalog,
    SloClass,
    WorkerConfig,
    WorkerNode,
)
from repro.engine import Engine, EngineSpec
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    OperandRangeError,
    ProtocolError,
    WorkerCrashError,
)
from repro.workloads import product_tree_graph


def run(coroutine):
    return asyncio.run(coroutine)


MODULUS = (1 << 61) - 1


async def _wait_for(predicate, timeout_s: float = 5.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


class TestEndToEnd:
    def test_batch_is_bit_identical_to_local_engine(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port) as node:
                    pairs = [(3 * k + 1, 5 * k + 2) for k in range(32)]
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        response = await client.multiply_batch(
                            pairs, modulus=MODULUS
                        )
                    engine = Engine()
                    expected = tuple(
                        engine.multiply(a, b, MODULUS) for a, b in pairs
                    )
                    assert response.values == expected
                    assert response.node == node.name
                    assert response.batched_pairs == 32
                    # The default EngineSpec ships the codegen backend to workers.
                    assert response.backend == "compiled"

        run(scenario())

    def test_graph_travels_and_executes_bit_identically(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    leaves = [k + 2 for k in range(8)]
                    graph = product_tree_graph(leaves)
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        response = await client.submit_graph(
                            graph, modulus=MODULUS
                        )
                    product = 1
                    for leaf in leaves:
                        product = (product * leaf) % MODULUS
                    assert response.values == (product,)
                    assert response.kind == "graph"

        run(scenario())

    def test_concurrent_clients_share_the_fleet(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    async def one(tenant, k):
                        async with ClusterClient(
                            "127.0.0.1", router.port, tenant=tenant
                        ) as client:
                            response = await client.multiply_batch(
                                [(k + 2, k + 3)], modulus=MODULUS
                            )
                            return response.value
                    values = await asyncio.gather(
                        *(one(f"t{k % 3}", k) for k in range(12))
                    )
                    assert values == [
                        ((k + 2) * (k + 3)) % MODULUS for k in range(12)
                    ]
                    rollup = router.metrics.rollup()
                    assert rollup["completed"] == 12
                    assert len(rollup["per_tenant_completed"]) == 3

        run(scenario())

    def test_two_nodes_split_load_and_respect_home_affinity(self):
        async def scenario():
            config = RouterConfig(replication=1)
            async with Router(EngineSpec(), config=config) as router:
                async with WorkerNode(
                    "127.0.0.1", router.port, WorkerConfig(name="n0")
                ), WorkerNode(
                    "127.0.0.1", router.port, WorkerConfig(name="n1")
                ):
                    await _wait_for(lambda: len(router.live_nodes) == 2)
                    # With replication=1 every request for one modulus
                    # lands on its home node: warm-cache affinity.
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        for _ in range(6):
                            await client.multiply_batch(
                                [(5, 7)], modulus=MODULUS
                            )
                    per_node = {
                        name: m.dispatched
                        for name, m in router.metrics.nodes.items()
                    }
                    assert sorted(per_node.values()) == [0, 6]

        run(scenario())


class TestSloPolicy:
    def test_slo_resolves_deadline_and_priority(self):
        async def scenario():
            catalog = SloCatalog(
                [SloClass("fast", 5000.0, 3), SloClass("lazy", None, 0)]
            )
            async with Router(
                EngineSpec(), slo_catalog=catalog
            ) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    async with ClusterClient(
                        "127.0.0.1", router.port, slo="fast"
                    ) as client:
                        response = await client.multiply_batch(
                            [(2, 3)], modulus=MODULUS
                        )
                        assert response.slo == "fast"
                        # Unnamed SLO falls to the loosest tier.
                        bare = await ClusterClient(
                            "127.0.0.1", router.port
                        ).connect()
                        response2 = await bare.multiply_batch(
                            [(2, 3)], modulus=MODULUS
                        )
                        await bare.close()
                        assert response2.slo == "lazy"
                    rollup = router.metrics.rollup()
                    assert set(rollup["per_slo_latency"]) == {"fast", "lazy"}

        run(scenario())

    def test_unknown_slo_is_a_protocol_error(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        with pytest.raises(ProtocolError, match="platinum"):
                            await client.multiply_batch(
                                [(2, 3)], modulus=MODULUS, slo="platinum"
                            )

        run(scenario())

    def test_welcome_advertises_the_catalog(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                client = await ClusterClient(
                    "127.0.0.1", router.port
                ).connect()
                names = set(client.slo_classes)
                await client.close()
                assert names == {"gold", "silver", "best-effort"}

        run(scenario())


class TestRateLimiting:
    def test_tenant_over_rate_gets_admission_error(self):
        async def scenario():
            config = RouterConfig(rate_per_tenant=1.0, burst_per_tenant=8.0)
            async with Router(EngineSpec(), config=config) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    async with ClusterClient(
                        "127.0.0.1", router.port, tenant="greedy"
                    ) as client:
                        # 8 pairs drain the burst; the 9th pair is over.
                        await client.multiply_batch(
                            [(k + 1, k + 2) for k in range(8)],
                            modulus=MODULUS,
                        )
                        with pytest.raises(AdmissionError, match="rate"):
                            await client.multiply_batch(
                                [(1, 2)], modulus=MODULUS
                            )
                    # The other tenant is untouched.
                    async with ClusterClient(
                        "127.0.0.1", router.port, tenant="polite"
                    ) as client:
                        response = await client.multiply_batch(
                            [(3, 4)], modulus=MODULUS
                        )
                        assert response.value == 12
                    assert router.metrics.rate_limited == 1

        run(scenario())


class TestValidationAndErrors:
    def test_submit_shape_errors_are_structured(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        with pytest.raises(ProtocolError, match="modulus"):
                            await client.multiply_batch(
                                [(1, 2)], modulus=1
                            )

        run(scenario())

    def test_worker_side_validation_error_reaches_client(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port):
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        # Operand out of range: the worker's server
                        # rejects at admission; the class survives the
                        # wire.
                        with pytest.raises(OperandRangeError):
                            await client.multiply_batch(
                                [(MODULUS + 5, 2)], modulus=MODULUS
                            )

        run(scenario())

    def test_no_nodes_fails_fast_with_crash_error(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with ClusterClient("127.0.0.1", router.port) as client:
                    with pytest.raises(WorkerCrashError, match="no live"):
                        await client.multiply_batch([(2, 3)], modulus=MODULUS)

        run(scenario())

    def test_duplicate_node_name_is_rejected(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode(
                    "127.0.0.1", router.port, WorkerConfig(name="twin")
                ):
                    with pytest.raises(ProtocolError, match="already joined"):
                        await WorkerNode(
                            "127.0.0.1", router.port, WorkerConfig(name="twin")
                        ).start()

        run(scenario())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(replication=0)
        with pytest.raises(ConfigurationError):
            RouterConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            WorkerConfig(pool_workers=-1)


class TestDrainAndStats:
    def test_graceful_drain_stops_placement_then_releases(self):
        async def scenario():
            config = RouterConfig(replication=2)
            async with Router(EngineSpec(), config=config) as router:
                leaver = WorkerNode(
                    "127.0.0.1", router.port, WorkerConfig(name="leaver")
                )
                stayer = WorkerNode(
                    "127.0.0.1", router.port, WorkerConfig(name="stayer")
                )
                await leaver.start()
                await stayer.start()
                await _wait_for(lambda: len(router.live_nodes) == 2)
                await leaver.drain(timeout_s=10.0)
                assert router.live_nodes == ["stayer"]
                # Everything placed after the drain goes to the stayer.
                async with ClusterClient("127.0.0.1", router.port) as client:
                    for k in range(4):
                        response = await client.multiply_batch(
                            [(k + 2, k + 5)], modulus=MODULUS
                        )
                        assert response.node == "stayer"
                await stayer.stop()

        run(scenario())

    def test_stats_rollup_shape(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port) as node:
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        await client.multiply_batch([(6, 7)], modulus=MODULUS)
                        stats = await client.stats()
                    assert stats["kind"] == "cluster"
                    assert stats["completed"] == 1
                    assert stats["live_nodes"] == 1
                    assert stats["replication"] == 2
                    assert stats["spec"]["backend"] == "compiled"
                    node_stats = stats["per_node"][node.name]
                    assert node_stats["dispatched"] == 1
                    assert node_stats["state"] == "live"

        run(scenario())

    def test_heartbeat_carries_server_metrics(self):
        async def scenario():
            config = RouterConfig(heartbeat_interval_s=0.05)
            async with Router(EngineSpec(), config=config) as router:
                async with WorkerNode("127.0.0.1", router.port) as node:
                    async with ClusterClient(
                        "127.0.0.1", router.port
                    ) as client:
                        await client.multiply_batch([(2, 9)], modulus=MODULUS)
                    await _wait_for(
                        lambda: router.metrics.node(node.name).heartbeat.get(
                            "completed_requests", 0
                        ) >= 1
                    )
                    snapshot = router.metrics.node(node.name).heartbeat
                    assert snapshot["backend"] == "compiled"

        run(scenario())

    def test_router_close_fails_inflight_and_notifies_workers(self):
        async def scenario():
            router = await Router(EngineSpec()).start()
            node = await WorkerNode("127.0.0.1", router.port).start()
            await router.close()
            # The worker got the shutdown frame and released itself.
            await asyncio.wait_for(node.wait(), 5)
            await node.stop()

        run(scenario())
