"""Node-loss recovery at cluster scope (the pool failure tests' mirror).

The fleet contract under fire: SIGKILL a worker *process* mid-batch and
every submitted request still completes — re-dispatched to a survivor,
recomputed bit-identically (jobs are pure functions of their payload),
with consistent metrics and a node registry that converges (dead node
marked dead, replacement joins cleanly).

These tests spawn real OS worker processes through
:class:`~repro.cluster.fleet.LocalFleet`, so they cost seconds, not
milliseconds; the fast policy/protocol paths live in the sibling files.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import ClusterClient, LocalFleet, RouterConfig
from repro.engine import Engine, EngineSpec

pytestmark = pytest.mark.slow

#: A 127-bit Mersenne prime: heavy enough per multiplication that a
#: batch keeps a node busy while the test kills it (same constant the
#: pool failure tests use).
SLOW_MODULUS = (1 << 127) - 1


def run(coroutine):
    return asyncio.run(coroutine)


async def _wait_for(predicate, timeout_s: float = 30.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


class TestNodeKillRecovery:
    def test_sigkilled_node_jobs_complete_bit_identical_on_survivor(self):
        async def scenario():
            # replication=1 pins the slow modulus to its home node, so
            # the test knows exactly which process to kill mid-batch.
            config = RouterConfig(replication=1, max_retries=2)
            async with LocalFleet(
                spec=EngineSpec(), workers=2, router_config=config
            ) as fleet:
                router = fleet.router
                home = router._ring.home(SLOW_MODULUS)
                batches = [
                    [(100 * b + k + 2, 100 * b + k + 5) for k in range(60)]
                    for b in range(6)
                ]
                async with ClusterClient(
                    "127.0.0.1", fleet.port, tenant="killer"
                ) as client:
                    tasks = [
                        asyncio.ensure_future(
                            client.multiply_batch(
                                batch, modulus=SLOW_MODULUS
                            )
                        )
                        for batch in batches
                    ]
                    # Kill the home node while its jobs are in flight.
                    await _wait_for(
                        lambda: router.pending_by_node().get(home, 0) > 0
                    )
                    fleet.kill_worker(name=home)
                    responses = await asyncio.gather(*tasks)

                # Every batch answered, every product bit-identical.
                engine = Engine()
                for batch, response in zip(batches, responses):
                    expected = tuple(
                        engine.multiply(a, b, SLOW_MODULUS) for a, b in batch
                    )
                    assert response.values == expected
                    assert response.node != home

                # Registry converged: home dead, survivor live.
                assert home not in router.live_nodes
                assert len(router.live_nodes) == 1
                rollup = router.metrics.rollup()
                assert rollup["per_node"][home]["state"] == "dead"
                # Metrics stayed consistent across the loss.
                assert rollup["submitted"] == len(batches)
                assert rollup["completed"] == len(batches)
                assert rollup["failed"] == 0
                assert rollup["inflight"] == 0
                assert rollup["lost_nodes"] == 1
                assert rollup["redispatches"] >= 1
                survivor = router.live_nodes[0]
                assert (
                    rollup["per_node"][survivor]["redispatched"]
                    == rollup["redispatches"]
                )

        run(scenario())

    def test_replacement_node_joins_after_a_kill(self):
        async def scenario():
            async with LocalFleet(spec=EngineSpec(), workers=2) as fleet:
                fleet.kill_worker(index=0)
                await fleet.wait_for_nodes(1)
                replacement = fleet.spawn_worker(name="replacement")
                await fleet.wait_for_nodes(2)
                assert replacement in fleet.router.live_nodes
                # The rejoined fleet serves (and the new node is in the
                # ring: with replication=2 on 2 nodes both are owners).
                async with ClusterClient("127.0.0.1", fleet.port) as client:
                    response = await client.multiply_batch(
                        [(11, 13)], modulus=(1 << 61) - 1
                    )
                    assert response.value == 143

        run(scenario())

    def test_loadtest_with_kill_loses_nothing(self):
        """The acceptance criterion, through the public one-call path."""
        from repro.cluster import run_loadtest

        report = run(
            run_loadtest(workers=2, quick=True, seed=7, kill_worker=True)
        )
        assert report["sent"] > 0
        assert report["lost"] == 0
        assert report["mismatches"] == 0
        assert report["killed_pid"] is not None
        assert report["cluster"]["lost_nodes"] == 1
