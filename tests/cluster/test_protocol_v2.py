"""Wire v2 (binary codec): framing, lazy blobs, resync, coalescing.

The contract under test (an ISSUE satellite): the binary decoder
*resynchronizes* on every malformed-frame shape — bad magic, unknown
version, oversized length prefix, internally truncated payload — by
consuming the offending bytes and raising
:class:`~repro.errors.ProtocolError`, so the connection keeps serving;
and the v2 codec is a lossless transport for exactly the messages v1
carries (anything unpackable rides as JSON meta, byte-exact).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import (
    Connection,
    PackedInts,
    Router,
    decode_frame,
    encode_frame,
    negotiate_wire,
)
from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    _TYPE_CODES,
    _V2_BLOB,
    _V2_HEADER,
    _V2_MAGIC,
    BinaryCodec,
    CoalescingSender,
    JsonCodec,
    decode_frame_v2,
    encode_frame_v2,
)
from repro.engine import EngineSpec
from repro.errors import ProtocolError


def run(coroutine):
    return asyncio.run(coroutine)


def frame_bytes(message) -> bytes:
    """One message as its exact v2 byte stream."""
    return b"".join(encode_frame_v2(message))


def decode_stream(frame: bytes):
    """Decode one full v2 byte stream (header + payload) back to a dict."""
    _magic, _version, code, _flags, _length = _V2_HEADER.unpack_from(frame)
    return decode_frame_v2(frame[_V2_HEADER.size :], code)


def v2_payload(meta: dict, *blobs: bytes) -> bytes:
    """Hand-assemble a v2 payload from raw meta JSON and raw blob bytes."""
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    return (
        len(meta_bytes).to_bytes(4, "little") + meta_bytes + b"".join(blobs)
    )


def feed(*chunks: bytes) -> asyncio.StreamReader:
    """A StreamReader pre-loaded with ``chunks`` and a trailing EOF."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


class TestNegotiation:
    def test_min_of_both_sides(self):
        assert negotiate_wire(2) == 2
        assert negotiate_wire(1) == 1
        assert negotiate_wire(2, supported_max=1) == 1

    def test_future_peer_capped_at_ours(self):
        assert negotiate_wire(99) == 2

    def test_numeric_strings_accepted(self):
        assert negotiate_wire("2") == 2

    def test_missing_or_malformed_degrades_to_v1(self):
        assert negotiate_wire(None) == 1
        assert negotiate_wire("binary") == 1
        assert negotiate_wire([2]) == 1
        assert negotiate_wire(0) == 1
        assert negotiate_wire(-3) == 1

    def test_upgrade_switches_codec_and_rejects_unknown(self):
        async def scenario():
            connection = Connection(asyncio.StreamReader(), None)
            assert connection.wire == 1
            connection.upgrade(1)  # no-op
            assert isinstance(connection.codec, JsonCodec)
            connection.upgrade(2)
            assert connection.wire == 2
            assert isinstance(connection.codec, BinaryCodec)
            with pytest.raises(ProtocolError, match="unknown wire version"):
                connection.upgrade(3)

        run(scenario())


class TestV2Framing:
    def test_roundtrip_restores_the_exact_message(self):
        message = {
            "type": "submit",
            "id": 7,
            "tenant": "acme",
            "kind": "pairs",
            "modulus": 97,
            "pairs": [[3, 4], [95, 96]],
        }
        decoded = decode_stream(frame_bytes(message))
        assert decoded["type"] == "submit"
        assert decoded["pairs"] == [[3, 4], [95, 96]]
        assert {k: v for k, v in decoded.items() if k != "pairs"} == {
            k: v for k, v in message.items() if k != "pairs"
        }

    def test_big_integers_travel_exactly(self):
        operand = (1 << 255) - 19
        message = {"type": "result", "id": 1, "values": [operand, 1]}
        decoded = decode_stream(frame_bytes(message))
        assert decoded["values"] == [operand, 1]
        assert decoded["values"].width == 32

    def test_header_length_matches_payload(self):
        frame = frame_bytes({"type": "submit", "modulus": 97, "pairs": [[1, 2]]})
        magic, version, code, _flags, length = _V2_HEADER.unpack_from(frame)
        assert magic == _V2_MAGIC
        assert version == 2
        assert code == _TYPE_CODES["submit"]
        assert length == len(frame) - _V2_HEADER.size

    def test_modulus_width_hint_sets_blob_width(self):
        message = {"type": "submit", "modulus": 97, "pairs": [[96, 95]]}
        decoded = decode_stream(frame_bytes(message))
        assert decoded["pairs"].width == 1

    def test_without_modulus_width_comes_from_a_max_scan(self):
        message = {"type": "result", "values": [1, 1 << 64]}
        decoded = decode_stream(frame_bytes(message))
        assert decoded["values"].width == 9

    def test_operand_over_hinted_width_falls_back_to_json(self):
        # The operand does not fit the modulus-implied width: it must
        # still arrive losslessly (worker admission rejects it, not the
        # codec), so the batch rides as JSON meta instead of a blob.
        message = {"type": "submit", "modulus": 97, "pairs": [[1 << 64, 2]]}
        decoded = decode_stream(frame_bytes(message))
        assert isinstance(decoded["pairs"], list)
        assert decoded["pairs"] == [[1 << 64, 2]]

    def test_negative_ints_fall_back_to_json(self):
        message = {"type": "submit", "modulus": 97, "pairs": [[-1, 2]]}
        decoded = decode_stream(frame_bytes(message))
        assert isinstance(decoded["pairs"], list)
        assert decoded["pairs"] == [[-1, 2]]

    def test_compensating_ragged_rows_are_not_restructured(self):
        # sum(len) == 2 * rows here — a guard that only sums row lengths
        # would silently repack this as [[1, 2], [3, 4]].
        message = {"type": "submit", "pairs": [[1, 2, 3], [4]]}
        decoded = decode_stream(frame_bytes(message))
        assert isinstance(decoded["pairs"], list)
        assert decoded["pairs"] == [[1, 2, 3], [4]]

    def test_empty_batch_stays_json(self):
        decoded = decode_stream(frame_bytes({"type": "submit", "pairs": []}))
        assert decoded["pairs"] == []
        assert isinstance(decoded["pairs"], list)

    def test_unknown_type_refuses_to_encode(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            encode_frame_v2({"type": "exploit"})

    def test_nested_batches_in_coalesced_frames_are_packed(self):
        jobs = {
            "type": "jobs",
            "jobs": [
                {"type": "job", "id": 1, "modulus": 97, "pairs": [[3, 4]]},
                {"type": "job", "id": 2, "modulus": 13, "pairs": [[5, 6]]},
            ],
        }
        decoded = decode_stream(frame_bytes(jobs))
        first, second = decoded["jobs"]
        assert isinstance(first["pairs"], PackedInts)
        assert first["pairs"] == [[3, 4]]
        assert second["pairs"] == [[5, 6]]
        # Each nested dict refreshes the width hint from its own modulus.
        assert first["pairs"].width == 1 and second["pairs"].width == 1


class TestPackedInts:
    def _decode_pairs(self, pairs, modulus=97):
        message = {"type": "submit", "modulus": modulus, "pairs": pairs}
        return decode_stream(frame_bytes(message))["pairs"]

    def test_decode_is_lazy_until_first_use(self):
        packed = self._decode_pairs([[3, 4], [5, 6]])
        assert isinstance(packed, PackedInts)
        assert packed._items is None
        assert packed.tolist() == [[3, 4], [5, 6]]
        assert packed._items is not None

    def test_sequence_protocol(self):
        packed = self._decode_pairs([[3, 4], [5, 6], [7, 8]])
        assert len(packed) == 3
        assert packed[1] == [5, 6]
        assert list(packed) == [[3, 4], [5, 6], [7, 8]]
        assert packed == [[3, 4], [5, 6], [7, 8]]
        assert packed == ([3, 4], [5, 6], [7, 8])
        assert not packed == [[3, 4]]

    def test_topairs_yields_tuples(self):
        packed = self._decode_pairs([[3, 4], [5, 6]])
        assert packed.is_pairs
        assert packed.topairs() == [(3, 4), (5, 6)]

    def test_topairs_on_a_flat_blob_raises(self):
        message = {"type": "result", "modulus": 97, "values": [1, 2, 3]}
        values = decode_stream(frame_bytes(message))["values"]
        assert not values.is_pairs
        assert values.tolist() == [1, 2, 3]
        with pytest.raises(ValueError, match="flat int blob"):
            values.topairs()

    def test_forwarding_reencodes_byte_exact_without_materializing(self):
        # The router's hop: decode a submit, re-encode it as a job — the
        # blob's wire bytes must ride again untouched, and the lazy ints
        # must never materialize on the forwarding hop.
        message = {"type": "submit", "modulus": 97, "pairs": [[3, 4], [5, 6]]}
        decoded = decode_stream(frame_bytes(message))
        reencoded = frame_bytes(decoded)
        assert reencoded == frame_bytes(message)
        assert decoded["pairs"]._items is None

    def test_to_wire_roundtrips_through_a_fresh_decode(self):
        packed = self._decode_pairs([[10, 20], [30, 40]])
        blob = packed.to_wire()
        kind, width, count = _V2_BLOB.unpack_from(blob)
        assert (kind, width, count) == (packed.kind, packed.width, 4)
        assert blob[_V2_BLOB.size :] == packed.data

    def test_v1_reencode_materializes_to_plain_json(self):
        # Mixed-wire hop: a payload decoded from a v2 frame re-encoded
        # toward a v1 peer must serialize as the lists JSON always had.
        decoded = decode_stream(
            frame_bytes({"type": "submit", "modulus": 97, "pairs": [[3, 4]]})
        )
        v1_frame = encode_frame(decoded)
        restored = decode_frame(v1_frame[4:])
        assert restored["pairs"] == [[3, 4]]
        assert isinstance(restored["pairs"], list)


class TestV2PayloadErrors:
    """Malformed payloads raise eagerly at decode, never at first use."""

    def test_too_short_for_meta_length(self):
        with pytest.raises(ProtocolError, match="too short"):
            decode_frame_v2(b"\x01\x00")

    def test_meta_longer_than_payload(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame_v2((100).to_bytes(4, "little") + b"{}")

    def test_meta_not_json(self):
        payload = (4).to_bytes(4, "little") + b"\xff\xfe{["
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame_v2(payload)

    def test_meta_not_an_object(self):
        meta = json.dumps([1, 2]).encode()
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            decode_frame_v2(len(meta).to_bytes(4, "little") + meta)

    def test_meta_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_frame_v2(v2_payload({"type": "exploit"}))

    def test_header_and_meta_type_must_agree(self):
        frame = frame_bytes({"type": "stats", "id": 1})
        with pytest.raises(ProtocolError, match="header says type"):
            decode_frame_v2(frame[_V2_HEADER.size :], _TYPE_CODES["hello"])

    def test_blob_header_truncated(self):
        payload = v2_payload({"type": "stats"}, b"\x00\x01")
        with pytest.raises(ProtocolError, match="blob header"):
            decode_frame_v2(payload)

    def test_blob_zero_width(self):
        payload = v2_payload({"type": "stats"}, _V2_BLOB.pack(0, 0, 0))
        with pytest.raises(ProtocolError, match="illegal width"):
            decode_frame_v2(payload)

    def test_blob_data_truncated(self):
        blob = _V2_BLOB.pack(0, 4, 10) + b"\x00" * 8
        with pytest.raises(ProtocolError, match="truncated inside a blob"):
            decode_frame_v2(v2_payload({"type": "stats"}, blob))

    def test_pair_blob_odd_int_count(self):
        blob = _V2_BLOB.pack(1, 1, 3) + b"\x01\x02\x03"
        with pytest.raises(ProtocolError, match="odd int count"):
            decode_frame_v2(v2_payload({"type": "stats"}, blob))

    def test_unknown_blob_kind(self):
        blob = _V2_BLOB.pack(7, 1, 2) + b"\x01\x02"
        with pytest.raises(ProtocolError, match="unknown binary blob kind"):
            decode_frame_v2(v2_payload({"type": "stats"}, blob))

    def test_dangling_blob_reference(self):
        payload = v2_payload({"type": "result", "values": {"$bin": 5}})
        with pytest.raises(ProtocolError, match="references blob"):
            decode_frame_v2(payload)


class TestBinaryResync:
    """Each malformed-frame shape consumes its bytes, then raises —
    the frame behind it must still parse off the same stream."""

    GOOD = frame_bytes({"type": "stats", "id": 42})

    async def _drain(self, chunks, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        reader = feed(*chunks)
        codec = BinaryCodec()
        events = []
        while True:
            try:
                message = await codec.receive(reader, max_frame_bytes)
            except ProtocolError as error:
                events.append(("error", str(error)))
                continue
            if message is None:
                events.append(("eof", None))
                return events
            events.append(("ok", message))

    def test_bad_magic_consumes_exactly_one_header(self):
        junk = b"XX" + b"\x00" * (_V2_HEADER.size - 2)
        events = run(self._drain([junk, self.GOOD]))
        assert events[0][0] == "error" and "bad frame magic" in events[0][1]
        assert events[1][0] == "ok" and events[1][1]["id"] == 42
        assert events[2] == ("eof", None)

    def test_unknown_version_discards_by_declared_length(self):
        junk_payload = b"\xab" * 37
        header = _V2_HEADER.pack(_V2_MAGIC, 3, 1, 0, len(junk_payload))
        events = run(self._drain([header, junk_payload, self.GOOD]))
        assert events[0][0] == "error" and "unknown wire version" in events[0][1]
        assert events[1][0] == "ok" and events[1][1]["id"] == 42
        assert events[2] == ("eof", None)

    def test_oversized_length_is_discarded_in_chunks(self):
        oversized = b"\x00" * 100_000
        header = _V2_HEADER.pack(_V2_MAGIC, 2, 9, 0, len(oversized))
        events = run(
            self._drain([header, oversized, self.GOOD], max_frame_bytes=4096)
        )
        assert events[0][0] == "error" and "exceeds" in events[0][1]
        assert events[1][0] == "ok" and events[1][1]["id"] == 42
        assert events[2] == ("eof", None)

    def test_unknown_type_code_consumes_the_whole_frame(self):
        payload = v2_payload({"type": "stats", "id": 1})
        header = _V2_HEADER.pack(_V2_MAGIC, 2, 250, 0, len(payload))
        events = run(self._drain([header, payload, self.GOOD]))
        assert events[0][0] == "error" and "type code" in events[0][1]
        assert events[1][0] == "ok" and events[1][1]["id"] == 42

    def test_internally_truncated_payload_raises_after_consuming(self):
        # The declared frame length is honest, but the meta length inside
        # points past the payload: the frame is consumed, then rejected.
        payload = (999).to_bytes(4, "little") + b"{}"
        header = _V2_HEADER.pack(_V2_MAGIC, 2, 9, 0, len(payload))
        events = run(self._drain([header, payload, self.GOOD]))
        assert events[0][0] == "error" and "truncated" in events[0][1]
        assert events[1][0] == "ok" and events[1][1]["id"] == 42

    def test_eof_mid_frame_is_a_closed_connection(self):
        header = _V2_HEADER.pack(_V2_MAGIC, 2, 9, 0, 50)
        events = run(self._drain([header, b"\x00" * 10]))
        assert events == [("eof", None)]

    def test_fuzz_random_garbage_never_desyncs_a_good_tail(self):
        # Whatever aligned garbage precedes it, the good frame parses
        # once the decoder has eaten an integral number of junk frames.
        import random

        rng = random.Random(0xBAD5EED)
        for _ in range(25):
            # Junk dressed as a frame: our magic, our version, a random
            # payload the header length describes honestly.
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randrange(64))
            )
            header = _V2_HEADER.pack(
                _V2_MAGIC, 2, rng.randrange(256), 0, len(payload)
            )
            events = run(self._drain([header, payload, self.GOOD]))
            kinds = [kind for kind, _ in events]
            assert kinds[-2:] == ["ok", "eof"]
            assert events[-2][1]["id"] == 42


class TestRouterSpeaksV2:
    def test_hello_negotiates_v2_and_session_serves(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                connection = Connection(reader, writer)
                await connection.send({"type": "hello", "wire": 2})
                welcome = await connection.receive()
                assert welcome["type"] == "welcome"
                assert welcome["wire"] == 2
                connection.upgrade(2)
                # The session now frames in v2 both ways.
                await connection.send({"type": "stats", "id": 5})
                stats = await connection.receive()
                assert stats["type"] == "result" and stats["id"] == 5
                await connection.close()
                return router.metrics.wire_clients

        assert run(scenario()).get(2) == 1

    def test_v1_peer_stays_v1(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                connection = Connection(reader, writer)
                await connection.send({"type": "hello"})
                welcome = await connection.receive()
                assert welcome["wire"] == 1
                await connection.send({"type": "stats", "id": 1})
                stats = await connection.receive()
                assert stats["type"] == "result"
                await connection.close()
                return router.metrics.wire_clients

        assert run(scenario()).get(1) == 1

    def test_bad_magic_on_an_upgraded_session_is_answered(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                connection = Connection(reader, writer)
                await connection.send({"type": "hello", "wire": 2})
                welcome = await connection.receive()
                assert welcome["wire"] == 2
                connection.upgrade(2)
                # Exactly one header's worth of garbage: the router must
                # answer a structured error and keep serving this session.
                writer.write(b"XX" + b"\x00" * (_V2_HEADER.size - 2))
                await writer.drain()
                answer = await connection.receive()
                assert answer["type"] == "error"
                assert answer["error"] == "ProtocolError"
                assert "magic" in answer["message"]
                await connection.send({"type": "stats", "id": 6})
                stats = await connection.receive()
                assert stats["type"] == "result"
                await connection.close()
                return router.metrics.protocol_errors

        assert run(scenario()) == 1


class _BrokenConnection:
    """A connection whose socket always fails (for sender error paths)."""

    def __init__(self) -> None:
        self.codec = JsonCodec()
        self.max_frame_bytes = DEFAULT_MAX_FRAME_BYTES

    async def send_encoded(self, buffers):
        raise ConnectionError("socket died")


class TestCoalescingSender:
    def _serve(self, wire):
        """A (sender, received, finish) triple over a real socket pair."""

        async def scenario(body):
            received = []
            done = asyncio.Event()

            async def handler(reader, writer):
                connection = Connection(reader, writer)
                connection.upgrade(wire)
                while True:
                    message = await connection.receive()
                    if message is None:
                        break
                    received.append(message)
                done.set()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            connection = Connection(reader, writer)
            connection.upgrade(wire)
            sender = CoalescingSender(connection)
            await body(sender)
            await sender.drain()
            await connection.close()
            await asyncio.wait_for(done.wait(), 5)
            server.close()
            await server.wait_closed()
            return received, sender.stats

        return scenario

    def test_v2_backlog_coalesces_into_one_results_frame(self):
        async def body(sender):
            # Everything enqueued before the flusher first runs lands in
            # one window — the adaptive bundling's backlog case.
            for index in range(5):
                sender.enqueue({"type": "result", "id": index, "values": [index]})

        received, stats = run(self._serve(wire=2)(body))
        assert [m["type"] for m in received] == ["results"]
        bundle = received[0]["results"]
        assert [entry["id"] for entry in bundle] == [0, 1, 2, 3, 4]
        assert stats == {"messages": 5, "frames": 1, "coalesced_frames": 1}

    def test_v1_never_bundles(self):
        async def body(sender):
            for index in range(4):
                sender.enqueue({"type": "result", "id": index})

        received, stats = run(self._serve(wire=1)(body))
        assert [m["type"] for m in received] == ["result"] * 4
        assert stats == {"messages": 4, "frames": 4, "coalesced_frames": 0}

    def test_non_coalescible_types_break_the_run(self):
        async def body(sender):
            sender.enqueue({"type": "result", "id": 0})
            sender.enqueue({"type": "result", "id": 1})
            sender.enqueue({"type": "heartbeat", "node": "n0"})
            sender.enqueue({"type": "result", "id": 2})

        received, stats = run(self._serve(wire=2)(body))
        assert [m["type"] for m in received] == ["results", "heartbeat", "result"]
        assert stats == {"messages": 4, "frames": 3, "coalesced_frames": 1}

    def test_max_coalesce_caps_bundle_size(self):
        async def scenario():
            received = []

            async def handler(reader, writer):
                connection = Connection(reader, writer)
                connection.upgrade(2)
                while True:
                    message = await connection.receive()
                    if message is None:
                        break
                    received.append(message)

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            connection = Connection(reader, writer)
            connection.upgrade(2)
            sender = CoalescingSender(connection, max_coalesce=2)
            for index in range(5):
                sender.enqueue({"type": "job", "id": index})
            await sender.drain()
            await connection.close()
            await asyncio.sleep(0.2)
            server.close()
            await server.wait_closed()
            return received, sender.stats

        received, stats = run(scenario())
        assert [m["type"] for m in received] == ["jobs", "jobs", "job"]
        assert [len(m.get("jobs", [1])) for m in received] == [2, 2, 1]
        assert stats == {"messages": 5, "frames": 3, "coalesced_frames": 2}

    def test_send_failure_breaks_the_sender_and_fires_on_error(self):
        async def scenario():
            errors = []

            async def on_error(error):
                errors.append(error)

            sender = CoalescingSender(_BrokenConnection(), on_error=on_error)
            sender.enqueue({"type": "result", "id": 0})
            await sender.drain()
            assert sender.broken
            # Enqueues after the break are dropped, not queued.
            sender.enqueue({"type": "result", "id": 1})
            assert len(sender._outbox) == 0
            await sender.drain()
            return errors

        errors = run(scenario())
        assert len(errors) == 1
        assert isinstance(errors[0], ConnectionError)

    def test_close_drops_queued_messages(self):
        async def scenario():
            sender = CoalescingSender(_BrokenConnection())
            sender._outbox.append({"type": "result", "id": 0})
            sender.close()
            assert sender.broken
            assert sender._outbox == []
            sender.close()  # idempotent

        run(scenario())
