"""Wire-protocol robustness: framing, malformed frames, resync.

The contract under test (an ISSUE satellite): a malformed, oversized or
unknown-type frame is answered with a *structured error response* and
the connection stays usable — no dropped state, no desynchronized
stream.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import Connection, Router, decode_frame, encode_frame
from repro.cluster.protocol import MESSAGE_TYPES, _PREFIX_BYTES
from repro.cluster.router import RouterConfig
from repro.engine import EngineSpec
from repro.errors import ProtocolError


def run(coroutine):
    return asyncio.run(coroutine)


class TestFraming:
    def test_roundtrip(self):
        message = {"type": "submit", "id": 7, "pairs": [[1, 2]], "modulus": 97}
        assert decode_frame(encode_frame(message)[_PREFIX_BYTES:]) == message

    def test_big_integers_travel_exactly(self):
        operand = (1 << 255) - 19
        frame = encode_frame({"type": "result", "values": [operand]})
        assert decode_frame(frame[_PREFIX_BYTES:])["values"] == [operand]

    def test_prefix_is_payload_length(self):
        frame = encode_frame({"type": "bye"})
        length = int.from_bytes(frame[:_PREFIX_BYTES], "big")
        assert length == len(frame) - _PREFIX_BYTES

    def test_not_json_raises(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b"\xff\xfe garbage")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            decode_frame(json.dumps([1, 2, 3]).encode())

    def test_unknown_type_raises(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_frame(json.dumps({"type": "exploit"}).encode())

    def test_missing_type_raises(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_frame(json.dumps({"id": 1}).encode())

    def test_every_protocol_type_decodes(self):
        for kind in MESSAGE_TYPES:
            assert decode_frame(
                json.dumps({"type": kind}).encode()
            )["type"] == kind


class TestConnection:
    def test_send_receive_and_clean_eof(self):
        async def scenario():
            received = []
            done = asyncio.Event()

            async def handler(reader, writer):
                connection = Connection(reader, writer)
                while True:
                    message = await connection.receive()
                    if message is None:
                        break
                    received.append(message)
                await connection.close()
                done.set()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            connection = Connection(reader, writer)
            await connection.send({"type": "hello", "tenant": "t"})
            await connection.send({"type": "stats", "id": 1})
            await connection.close()
            await asyncio.wait_for(done.wait(), 5)
            server.close()
            await server.wait_closed()
            return received

        received = run(scenario())
        assert [m["type"] for m in received] == ["hello", "stats"]

    def test_oversized_frame_is_skipped_then_raises(self):
        async def scenario():
            results = []

            async def handler(reader, writer):
                connection = Connection(reader, writer, max_frame_bytes=64)
                while True:
                    try:
                        message = await connection.receive()
                    except ProtocolError as error:
                        results.append(("error", str(error)))
                        continue
                    if message is None:
                        break
                    results.append(("ok", message["type"]))
                await connection.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            sender = Connection(reader, writer)
            # Frame 1: far over the 64-byte cap.  Frame 2: fine.  The
            # receiver must skip frame 1's payload and still parse 2.
            await sender.send({"type": "heartbeat", "blob": "x" * 4096})
            await sender.send({"type": "bye"})
            await sender.close()
            await asyncio.sleep(0.2)
            server.close()
            await server.wait_closed()
            return results

        results = run(scenario())
        assert results[0][0] == "error" and "exceeds" in results[0][1]
        assert results[1] == ("ok", "bye")


class TestRouterAnswersBadFrames:
    """Bad frames at the router's front door get structured answers."""

    def test_malformed_then_valid_hello_on_same_connection(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                # Raw garbage, properly length-prefixed.
                payload = b"this is not json"
                writer.write(len(payload).to_bytes(4, "big") + payload)
                await writer.drain()
                connection = Connection(reader, writer)
                answer = await connection.receive()
                assert answer["type"] == "error"
                assert answer["error"] == "ProtocolError"
                assert "JSON" in answer["message"]
                # Same connection, now behaving: the handshake works.
                await connection.send({"type": "hello"})
                welcome = await connection.receive()
                assert welcome["type"] == "welcome"
                await connection.close()
                return router.metrics.protocol_errors

        assert run(scenario()) == 1

    def test_unknown_type_and_wrong_opening_are_answered(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                connection = Connection(reader, writer)
                payload = json.dumps({"type": "exploit"}).encode()
                writer.write(len(payload).to_bytes(4, "big") + payload)
                await writer.drain()
                first = await connection.receive()
                # 'result' is a known type but not a legal opener.
                await connection.send({"type": "result", "id": 9})
                second = await connection.receive()
                await connection.close()
                return first, second, router.metrics.protocol_errors

        first, second, count = run(scenario())
        assert first["error"] == "ProtocolError"
        assert second["error"] == "ProtocolError"
        assert "hello" in second["message"]
        assert count == 2

    def test_oversized_submit_is_answered_not_fatal(self):
        async def scenario():
            config = RouterConfig(max_frame_bytes=512)
            async with Router(EngineSpec(), config=config) as router:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                connection = Connection(reader, writer)
                await connection.send({"type": "hello"})
                welcome = await connection.receive()
                assert welcome["type"] == "welcome"
                # An oversized frame on an established client session.
                await connection.send(
                    {"type": "submit", "id": 3, "junk": "y" * 2048}
                )
                answer = await connection.receive()
                # The session survives: stats still answered.
                await connection.send({"type": "stats", "id": 4})
                stats = await connection.receive()
                await connection.close()
                return answer, stats

        answer, stats = run(scenario())
        assert answer["type"] == "error"
        assert answer["error"] == "ProtocolError"
        assert stats["type"] == "result"
        assert stats["stats"]["protocol_errors"] == 1
