"""Codec parity: wire v1 and wire v2 are observably the same fleet.

The contract under test (an ISSUE satellite): the binary codec is a
*transport* change only — the same trace against the same seed produces
bit-identical products and identical loss/mismatch counters on either
wire, and mixed fleets (v1 peers among v2 peers, or a router capped at
v1) negotiate per connection without anyone noticing at the API.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import (
    ClusterClient,
    Router,
    RouterConfig,
    WorkerConfig,
    WorkerNode,
    run_loadtest,
)
from repro.engine import Engine, EngineSpec

pytestmark = pytest.mark.slow


def run(coroutine):
    return asyncio.run(coroutine)


MODULUS = (1 << 255) - 19
PAIRS = [((3 * k + 1) * (1 << 200) + k, (5 * k + 2) * (1 << 199) + k) for k in range(16)]


def _expected(pairs, modulus=MODULUS):
    engine = Engine()
    return tuple(engine.multiply(a, b, modulus) for a, b in pairs)


class TestLoadtestParity:
    def test_same_seed_same_products_and_counters_on_both_wires(self):
        reports = {
            wire: run(
                run_loadtest(workers=2, quick=True, seed=11, wire=wire)
            )
            for wire in (1, 2)
        }
        for wire, report in reports.items():
            assert report["wire"] == wire
            # verify=True in the replay checks every product against a
            # locally computed expectation: zero mismatches means every
            # answer was bit-identical on this wire.
            assert report["mismatches"] == 0
            assert report["lost"] == 0
            assert report["failed"] == 0
            # Every worker negotiated the wire the loadtest pinned.
            assert set(report["cluster"]["wire_workers"].values()) == {wire}
        assert reports[1]["sent"] == reports[2]["sent"]
        assert reports[1]["completed"] == reports[2]["completed"]
        assert (
            reports[1]["per_tenant_completed"]
            == reports[2]["per_tenant_completed"]
        )


class TestMixedFleets:
    def test_v1_and_v2_peers_coexist_and_agree(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                v1_config = WorkerConfig(name="w-v1", wire=1)
                v2_config = WorkerConfig(name="w-v2", wire=2)
                async with WorkerNode(
                    "127.0.0.1", router.port, config=v1_config
                ) as old, WorkerNode(
                    "127.0.0.1", router.port, config=v2_config
                ) as new:
                    assert old.wire == 1
                    assert new.wire == 2
                    assert router.describe()["wire_workers"] == {
                        "w-v1": 1,
                        "w-v2": 2,
                    }
                    values = {}
                    for wire in (1, 2):
                        async with ClusterClient(
                            "127.0.0.1", router.port, wire=wire
                        ) as client:
                            assert client.wire == wire
                            response = await client.multiply_batch(
                                PAIRS, modulus=MODULUS
                            )
                            values[wire] = response.values
                    return values

        values = run(scenario())
        assert values[1] == values[2] == _expected(PAIRS)

    def test_router_capped_at_v1_downgrades_everyone(self):
        async def scenario():
            config = RouterConfig(wire=1)
            async with Router(EngineSpec(), config=config) as router:
                async with WorkerNode("127.0.0.1", router.port) as node:
                    # The node advertised v2 (the default); the capped
                    # router negotiated it down.
                    assert node.config.wire == 2
                    assert node.wire == 1
                    async with ClusterClient(
                        "127.0.0.1", router.port, wire=2
                    ) as client:
                        assert client.wire == 1
                        response = await client.multiply_batch(
                            PAIRS, modulus=MODULUS
                        )
                        return response.values

        assert run(scenario()) == _expected(PAIRS)

    def test_v2_fleet_counts_coalesced_frames(self):
        async def scenario():
            async with Router(EngineSpec()) as router:
                async with WorkerNode("127.0.0.1", router.port) as node:
                    assert node.wire == 2
                    async with ClusterClient(
                        "127.0.0.1", router.port, wire=2
                    ) as client:
                        responses = await asyncio.gather(
                            *(
                                client.multiply_batch(PAIRS, modulus=MODULUS)
                                for _ in range(8)
                            )
                        )
                    stats = router.metrics.wire_frames
                    return [r.values for r in responses], stats

        all_values, stats = run(scenario())
        expected = _expected(PAIRS)
        assert all(values == expected for values in all_values)
        # The router's outbound path saw traffic; bundling is adaptive,
        # so only the message/frame counters are deterministic facts.
        assert stats["messages"] >= 8
        assert 0 < stats["frames"] <= stats["messages"]
