"""Pareto-frontier extraction: dominance, accounting, and edge cases."""

from __future__ import annotations

import pytest

from repro.dse import DEFAULT_OBJECTIVES, Objective, pareto_frontier
from repro.errors import ConfigurationError


def _point(throughput, energy, area):
    return {
        "throughput_mops": throughput,
        "energy_pj_per_op": energy,
        "area_mm2": area,
    }


class TestDominance:
    def test_hand_built_frontier(self):
        points = [
            _point(10.0, 100.0, 1.0),  # frontier: fastest
            _point(5.0, 50.0, 1.0),    # frontier: cheapest energy
            _point(5.0, 100.0, 1.0),   # dominated by 0, 1 and 4
            _point(10.0, 100.0, 2.0),  # dominated by 0 (same speed, more area)
            _point(8.0, 80.0, 0.5),    # frontier: smallest
        ]
        frontier = pareto_frontier(points)
        assert [member.index for member in frontier] == [0, 1, 4]
        by_index = {member.index: member for member in frontier}
        assert by_index[0].dominates == 2
        assert by_index[1].dominates == 1
        assert by_index[4].dominates == 1

    def test_duplicate_points_both_survive(self):
        points = [_point(1.0, 1.0, 1.0), _point(1.0, 1.0, 1.0)]
        frontier = pareto_frontier(points)
        assert [member.index for member in frontier] == [0, 1]
        assert all(member.dominates == 0 for member in frontier)

    def test_single_point_is_its_own_frontier(self):
        frontier = pareto_frontier([_point(1.0, 2.0, 3.0)])
        assert len(frontier) == 1
        assert frontier[0].objectives == {
            "throughput_mops": 1.0,
            "energy_pj_per_op": 2.0,
            "area_mm2": 3.0,
        }

    def test_empty_input_gives_empty_frontier(self):
        assert pareto_frontier([]) == []

    def test_totally_ordered_points_leave_one_survivor(self):
        points = [_point(float(i), 10.0 - i, 1.0) for i in range(1, 6)]
        frontier = pareto_frontier(points)
        assert [member.index for member in frontier] == [4]
        assert frontier[0].dominates == 4


class TestObjectives:
    def test_custom_objectives_flip_the_frontier(self):
        points = [_point(10.0, 100.0, 1.0), _point(1.0, 1.0, 1.0)]
        slowest = pareto_frontier(
            points, objectives=(Objective("throughput_mops", maximize=False),)
        )
        assert [member.index for member in slowest] == [1]

    def test_oriented_maps_onto_a_larger_is_better_scale(self):
        assert Objective("x", maximize=True).oriented(2.0) == 2.0
        assert Objective("x", maximize=False).oriented(2.0) == -2.0

    def test_default_objectives_cover_the_issue_tradeoff(self):
        oriented = {(o.metric, o.maximize) for o in DEFAULT_OBJECTIVES}
        assert oriented == {
            ("throughput_mops", True),
            ("energy_pj_per_op", False),
            ("area_mm2", False),
        }

    def test_missing_metric_names_the_metric_and_point(self):
        with pytest.raises(ConfigurationError, match="point 1.*'area_mm2'"):
            pareto_frontier(
                [_point(1.0, 1.0, 1.0), {"throughput_mops": 1.0, "energy_pj_per_op": 1.0}]
            )

    def test_non_numeric_metric_is_rejected(self):
        bad = _point(1.0, 1.0, 1.0)
        bad["area_mm2"] = "big"
        with pytest.raises(ConfigurationError, match="area_mm2"):
            pareto_frontier([bad])

    def test_no_objectives_is_rejected(self):
        with pytest.raises(ConfigurationError, match="objective"):
            pareto_frontier([_point(1.0, 1.0, 1.0)], objectives=())
