"""Point evaluation, sweep execution through the runner pool, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dse import (
    DesignPoint,
    DseRunResult,
    SweepSpec,
    evaluate_design_point,
    run_dse,
)
from repro.experiments import Runner

SMALL_SPEC = SweepSpec(
    name="small",
    fixed={"workload_ops": 32},
    axes={
        "bitwidth": [64, 256],
        "macros": [1, 4],
        "scheduler": ["lut-aware", "round-robin"],
    },
)


class TestEvaluateDesignPoint:
    def test_paper_point_metrics(self):
        result = evaluate_design_point(DesignPoint(workload_ops=16))
        assert result.jobs == 16
        assert result.cycles_per_op == 809  # 6 + 33 + 767 + 3
        assert result.throughput_mops > 0
        assert result.energy_pj_per_op > 0
        assert result.area_mm2 == pytest.approx(result.macro_area_mm2)
        assert not result.verified  # analytical fidelity runs no probe

    def test_banking_reduces_the_cold_op_cycles(self):
        flat = evaluate_design_point(DesignPoint(workload_ops=8))
        banked = evaluate_design_point(DesignPoint(banks=4, workload_ops=8))
        assert banked.cycles_per_op < flat.cycles_per_op

    def test_more_macros_buy_throughput_with_area(self):
        one = evaluate_design_point(DesignPoint(workload_ops=64))
        four = evaluate_design_point(DesignPoint(macros=4, workload_ops=64))
        assert four.throughput_mops > one.throughput_mops
        assert four.area_mm2 == pytest.approx(4 * one.area_mm2)

    def test_round_robin_never_beats_lut_aware_reuse(self):
        aware = evaluate_design_point(
            DesignPoint(macros=4, workload="ntt", workload_ops=64)
        )
        blind = evaluate_design_point(
            DesignPoint(
                macros=4, workload="ntt", workload_ops=64,
                scheduler="round-robin",
            )
        )
        assert blind.lut_reuse_rate <= aware.lut_reuse_rate

    @pytest.mark.parametrize("fidelity", ("cycle", "hdl"))
    def test_executable_probes_verify_the_closed_form(self, fidelity):
        result = evaluate_design_point(
            DesignPoint(bitwidth=32, rows=32, workload_ops=4, fidelity=fidelity)
        )
        assert result.verified

    @pytest.mark.parametrize(
        "workload", ("ecdsa-sign", "scalar-mult", "ntt", "msm", "mixed")
    )
    def test_every_workload_reaches_the_requested_ops(self, workload):
        result = evaluate_design_point(
            DesignPoint(workload=workload, workload_ops=24)
        )
        assert result.jobs == 24

    def test_result_dict_round_trip(self):
        result = evaluate_design_point(DesignPoint(banks=2, workload_ops=8))
        wire = json.loads(json.dumps(result.to_dict()))
        loaded = result.from_dict(wire)
        assert loaded == result


class TestRunDse:
    def test_cold_then_warm_run_hits_the_cache(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), parallel=False)
        cold = run_dse(SMALL_SPEC, runner=runner)
        assert len(cold.points) == SMALL_SPEC.point_count == 8
        assert cold.cache_hits == 0
        assert cold.frontier  # non-empty by acceptance criterion
        warm = run_dse(SMALL_SPEC, runner=runner)
        assert warm.cache_hits == len(warm.points) == 8
        assert [p.to_dict() for p in warm.points] == [
            p.to_dict() for p in cold.points
        ]
        assert [m.index for m in warm.frontier] == [
            m.index for m in cold.frontier
        ]

    def test_frontier_accounting_is_consistent(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), parallel=False)
        result = run_dse(SMALL_SPEC, runner=runner)
        assert result.dominated <= len(result.points) - len(result.frontier)
        frontier_indices = {m.index for m in result.frontier}
        assert all(0 <= i < len(result.points) for i in frontier_indices)

    def test_quick_mode_shrinks_the_sweep(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), parallel=False)
        result = run_dse(SMALL_SPEC, runner=runner, quick=True)
        assert len(result.points) == 8  # 2 values were kept per axis
        assert result.spec["name"] == "small-quick"

    def test_run_result_dict_round_trip(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), parallel=False)
        result = run_dse(SMALL_SPEC, runner=runner)
        wire = json.loads(json.dumps(result.to_dict()))
        loaded = DseRunResult.from_dict(wire)
        assert loaded.render() == result.render()


class TestCli:
    def test_dse_run_quick_json_smoke(self, tmp_path, capsys):
        code = main(
            ["dse", "run", "--quick", "--json", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frontier"]
        assert len(payload["points"]) == 32

    def test_dse_run_with_a_spec_file_and_sample(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(SMALL_SPEC.to_dict()))
        code = main(
            [
                "dse", "run", str(spec_path), "--sample", "1",
                "--workload-ops", "16", "--json",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 1
        assert payload["points"][0]["workload_ops"] == 16

    def test_dse_run_text_mentions_the_frontier(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(SMALL_SPEC.to_dict()))
        code = main(
            [
                "dse", "run", str(spec_path),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "8 points" in out

    def test_dse_frontier_rereads_a_saved_run(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(SMALL_SPEC.to_dict()))
        results_path = tmp_path / "results.json"
        assert (
            main(
                [
                    "dse", "run", str(spec_path),
                    "--output", str(results_path),
                    "--cache-dir", str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["dse", "frontier", str(results_path), "--json"]) == 0
        frontier = json.loads(capsys.readouterr().out)
        assert frontier and all("dominates" in member for member in frontier)

    def test_dse_frontier_rejects_a_malformed_results_file(
        self, tmp_path, capsys
    ):
        results_path = tmp_path / "not-results.json"
        results_path.write_text(json.dumps({"spec": {"name": "x"}}))
        code = main(["dse", "frontier", str(results_path)])
        assert code != 0
        out = capsys.readouterr().out
        assert "error:" in out and "'points'" in out

    def test_dse_run_rejects_a_bad_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"axes": {"voltage": [1]}}))
        code = main(["dse", "run", str(spec_path)])
        assert code != 0
        assert "voltage" in capsys.readouterr().out
