"""Sweep-spec parsing: validation, determinism, and seeded fuzzing.

Satellite 1 of ISSUE 10: malformed, ragged, or out-of-range specs must
raise :class:`ConfigurationError` naming the offending key, and spec →
expanded grid → spec round trips must be deterministic and order-stable
across runs.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.dse import (
    DesignPoint,
    SweepSpec,
    default_sweep_spec,
    load_spec,
    parse_spec,
)
from repro.errors import ConfigurationError

#: A small but non-trivial spec used as the fuzz/round-trip baseline.
VALID_SPEC = {
    "name": "unit",
    "description": "unit-test sweep",
    "fixed": {"technology_nm": 65, "workload_ops": 64},
    "axes": {
        "bitwidth": [32, 64],
        "rows": [24, 64],
        "macros": [1, 4],
        "workload": ["ecdsa-sign", "ntt"],
    },
}


class TestParsing:
    def test_json_text_parses(self):
        spec = parse_spec(json.dumps(VALID_SPEC))
        assert spec.name == "unit"
        assert spec.point_count == 16

    def test_yaml_text_parses_when_pyyaml_is_available(self):
        yaml = pytest.importorskip("yaml")
        spec = parse_spec(yaml.safe_dump(VALID_SPEC))
        assert spec.to_dict() == SweepSpec.from_dict(VALID_SPEC).to_dict()

    def test_garbage_text_names_the_source(self):
        with pytest.raises(ConfigurationError, match="bad.json"):
            parse_spec("{not json: [", source="bad.json")

    def test_load_spec_round_trips_through_a_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(VALID_SPEC))
        assert load_spec(str(path)).to_dict() == SweepSpec.from_dict(VALID_SPEC).to_dict()

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec(str(tmp_path / "absent.json"))

    def test_non_mapping_document_is_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            parse_spec(json.dumps([1, 2, 3]))


class TestValidationNamesTheKey:
    @pytest.mark.parametrize(
        "mutate,key",
        (
            (lambda d: d.__setitem__("unknown_section", {}), "unknown_section"),
            (lambda d: d["fixed"].__setitem__("voltage", 5), "voltage"),
            (lambda d: d["axes"].__setitem__("voltage", [1]), "voltage"),
            (lambda d: d["axes"].__setitem__("technology_nm", [45]), "technology_nm"),
            (lambda d: d["axes"].__setitem__("banks", 4), "banks"),
            (lambda d: d["axes"].__setitem__("banks", []), "banks"),
            (lambda d: d["axes"].__setitem__("banks", [1, [2, 4]]), "banks"),
            (lambda d: d["axes"].__setitem__("rows", [24, "64"]), "rows"),
            (lambda d: d["fixed"].__setitem__("radix", 5), "radix"),
            (lambda d: d["fixed"].__setitem__("rows", 8), "rows"),
            (lambda d: d["fixed"].__setitem__("rows", True), "rows"),
            (lambda d: d["fixed"].__setitem__("macros", 0), "macros"),
            (lambda d: d["fixed"].__setitem__("scheduler", "greedy"), "scheduler"),
            (lambda d: d["fixed"].__setitem__("workload", "mining"), "workload"),
            (lambda d: d["fixed"].__setitem__("fidelity", "exact"), "fidelity"),
            (lambda d: d.__setitem__("name", ""), "name"),
        ),
    )
    def test_bad_specs_name_the_offending_key(self, mutate, key):
        document = json.loads(json.dumps(VALID_SPEC))
        mutate(document)
        with pytest.raises(ConfigurationError) as excinfo:
            SweepSpec.from_dict(document).expand()
        assert key in str(excinfo.value)

    def test_cross_product_errors_name_the_key(self):
        spec = SweepSpec(axes={"bitwidth": [64, 256], "columns": [64]})
        with pytest.raises(ConfigurationError, match="'columns'"):
            spec.expand()

    def test_fidelity_needs_an_executable_geometry(self):
        with pytest.raises(ConfigurationError, match="'fidelity'"):
            DesignPoint(radix=8, fidelity="cycle")

    def test_expansion_cap_is_enforced(self):
        spec = SweepSpec(axes={"workload_ops": list(range(1, 102))})
        with pytest.raises(ConfigurationError, match="101 points"):
            spec.expand(max_points=100)


class TestDeterminism:
    def test_expansion_is_order_stable(self):
        spec = SweepSpec.from_dict(VALID_SPEC)
        first = [p.to_params() for p in spec.expand()]
        second = [p.to_params() for p in spec.expand()]
        assert first == second
        # Axes iterate in sorted key order, values in spec order.
        assert [p["bitwidth"] for p in first[:8]] == [32] * 8
        assert [p["workload"] for p in first[:2]] == ["ecdsa-sign", "ntt"]

    def test_spec_dict_round_trip_preserves_the_grid(self):
        spec = default_sweep_spec()
        rebuilt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.to_dict() == spec.to_dict()
        assert [p.to_params() for p in rebuilt.expand()] == [
            p.to_params() for p in spec.expand()
        ]

    def test_point_params_round_trip(self):
        for point in SweepSpec.from_dict(VALID_SPEC).expand():
            assert DesignPoint.from_params(point.to_params()) == point

    def test_quick_shrinks_every_axis_and_tags_the_name(self):
        quick = default_sweep_spec().quick(per_axis=2)
        assert quick.name.endswith("-quick")
        assert all(len(v) <= 2 for v in quick.axes.values())
        assert quick.fixed["fidelity"] == "analytical"
        assert quick.point_count == 32

    def test_with_fixed_drops_matching_axes(self):
        spec = SweepSpec.from_dict(VALID_SPEC).with_fixed(bitwidth=128)
        assert "bitwidth" not in spec.axes
        assert spec.fixed["bitwidth"] == 128
        assert all(p.bitwidth == 128 for p in spec.expand())


class TestSeededFuzz:
    """Random spec mutations: every corruption must fail loudly and
    name its key; every surviving spec must expand deterministically."""

    ROUNDS = 200

    def _corrupt(self, rng, document):
        """Apply one random corruption; return the key the error must name."""
        field_pool = (
            "bitwidth", "rows", "columns", "banks", "radix", "macros",
            "workload_ops", "technology_nm", "overflow_rows",
        )
        choice = rng.randrange(6)
        if choice == 0:  # out-of-range integer
            key = rng.choice(field_pool)
            document["fixed"][key] = rng.choice((-1, 0, 10**9))
            return key
        if choice == 1:  # wrong type in fixed
            key = rng.choice(field_pool)
            # (None is excluded: it is a legal value for ``columns``.)
            document["fixed"][key] = rng.choice((True, "wide", 3.5))
            return key
        if choice == 2:  # ragged / nested axis
            key = rng.choice(field_pool)
            document["axes"][key] = rng.choice(
                ([], [[1]], [1, "two"], "scalar", {"a": 1})
            )
            document["fixed"].pop(key, None)
            return key
        if choice == 3:  # unknown parameter
            key = f"bogus_{rng.randrange(100)}"
            section = rng.choice(("fixed", "axes"))
            document[section][key] = [1] if section == "axes" else 1
            return key
        if choice == 4:  # fixed/axes collision
            key = rng.choice(list(document["axes"]))
            document["fixed"][key] = document["axes"][key][0]
            return key
        key = rng.choice(("scheduler", "workload", "fidelity"))  # bad choice
        document["fixed"][key] = "nonsense"
        return key

    def test_corrupted_specs_always_name_the_offending_key(self):
        rng = random.Random(0xF022)
        for round_index in range(self.ROUNDS):
            document = json.loads(json.dumps(VALID_SPEC))
            key = self._corrupt(rng, document)
            with pytest.raises(ConfigurationError) as excinfo:
                SweepSpec.from_dict(document).expand()
            assert key in str(excinfo.value), f"round {round_index}"

    def test_random_valid_specs_expand_deterministically(self):
        rng = random.Random(0xF055)
        axis_pool = {
            "bitwidth": [16, 32, 64, 128, 256],
            "rows": [24, 32, 64, 128],
            "macros": [1, 2, 4, 8],
            "banks": [1, 2, 4],
            "scheduler": ["lut-aware", "round-robin"],
            "workload": ["ecdsa-sign", "scalar-mult", "ntt", "msm", "mixed"],
            "workload_ops": [16, 64, 256],
        }
        for _ in range(25):
            axes = {
                key: rng.sample(values, rng.randrange(1, len(values) + 1))
                for key, values in axis_pool.items()
                if rng.random() < 0.6
            }
            spec = SweepSpec(name="fuzz", axes=axes)
            grid = [p.to_params() for p in spec.expand()]
            assert len(grid) == spec.point_count
            assert grid == [p.to_params() for p in spec.expand()]
            rebuilt = SweepSpec.from_dict(spec.to_dict())
            assert [p.to_params() for p in rebuilt.expand()] == grid
