"""Cross-tier parity at swept geometries (ISSUE 10, satellite 2).

``tests/hdl/test_cosim_parity.py`` races the tiers at the *default*
geometry for each bitwidth.  The DSE sweeps now construct design points
at non-default ``rows`` / ``columns``, so this harness replays the same
differential pattern over a seeded sample of swept geometries: for each
(bitwidth, rows, columns) case the analytical and cycle-accurate tiers
(and the elaborated RTL where cheap) must agree field by field on the
cycle report, and every product must match the big-int oracle.

Cycle counts are geometry-invariant for single-bank radix-4 macros —
rows only size the memory map and columns the word — which is exactly
the property the DSE cost model relies on when it banks the closed
forms.  The fast sample runs in tier-1; the wider sweep (more rows ×
larger widths, with RTL) is marked ``slow``.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.hdl.eventsim import HdlModSRAM
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.analytical import AnalyticalModSRAM
from repro.modsram.config import ModSRAMConfig
from repro.modsram.geometry import MacroGeometry

#: One RNG seed for the whole harness — failures name their case.
SEED = 0xD5E

#: (bitwidth, rows, columns) sampled from the default sweep's axes.
FAST_GEOMETRIES = (
    (16, 24, 16),
    (16, 128, 64),
    (24, 32, 24),
    (32, 32, 32),
    (32, 64, 128),
    (48, 24, 48),
)

#: Wider/slower sample: every sweep row count at the bigger widths.
SLOW_GEOMETRIES = tuple(
    (bits, rows, columns)
    for bits in (48, 64)
    for rows in (24, 32, 64, 128)
    for columns in (bits, 2 * bits)
)

#: Random operand pairs per geometry, beyond the degenerate corners.
PAIRS_PER_CASE = 2


def _swept_config(bits: int, rows: int, columns: int) -> ModSRAMConfig:
    config = ModSRAMConfig().with_bitwidth(bits, columns=columns)
    return replace(config, rows=rows)


def _a_limit(config: ModSRAMConfig, modulus: int) -> int:
    if config.extend_for_full_range:
        return modulus
    return min(modulus, 1 << (2 * config.iterations - 1))


def _random_odd_modulus(rng: random.Random, bits: int) -> int:
    return (1 << (bits - 1)) | rng.getrandbits(bits - 1) | 1


def _operands(config, modulus, rng):
    limit = _a_limit(config, modulus)
    pairs = [(0, modulus - 1), (limit - 1, modulus - 1)]
    pairs.extend(
        (rng.randrange(limit), rng.randrange(modulus))
        for _ in range(PAIRS_PER_CASE)
    )
    return pairs


def _assert_geometry_parity(config, modulus, rng, with_hdl):
    geometry = MacroGeometry.from_config(config)
    tiers = {
        "analytical": AnalyticalModSRAM(config, geometry),
        "cycle": ModSRAMAccelerator(config),
    }
    if with_hdl:
        tiers["hdl"] = HdlModSRAM(config)
    for a, b in _operands(config, modulus, rng):
        case = (
            f"{config.rows}x{config.columns} bw={config.bitwidth} "
            f"p={modulus:#x} a={a:#x} b={b:#x}"
        )
        results = {name: tier.multiply(a, b, modulus) for name, tier in tiers.items()}
        reference = results["analytical"]
        assert reference.product == (a * b) % modulus, f"oracle ({case})"
        for name, result in results.items():
            assert result.product == reference.product, f"{name} product ({case})"
            assert (
                result.report.as_dict() == reference.report.as_dict()
            ), f"{name} report ({case})"


@pytest.mark.parametrize("bits,rows,columns", FAST_GEOMETRIES)
def test_swept_geometries_fast(bits, rows, columns):
    """Seeded parity sample across the sweep's rows/columns axes."""
    rng = random.Random(SEED ^ (bits << 16) ^ (rows << 8) ^ columns)
    config = _swept_config(bits, rows, columns)
    # The RTL elaborates per-config; keep it to the cheap widths.
    _assert_geometry_parity(
        config, _random_odd_modulus(rng, bits), rng, with_hdl=bits <= 24
    )


def test_wide_columns_change_stats_but_not_cycles():
    """A wider word must not perturb the cycle schedule."""
    rng = random.Random(SEED)
    modulus = _random_odd_modulus(rng, 32)
    narrow = _swept_config(32, 64, 32)
    wide = _swept_config(32, 64, 256)
    a, b = rng.randrange(modulus) >> 1, rng.randrange(modulus)
    narrow_result = AnalyticalModSRAM(narrow).multiply(a, b, modulus)
    wide_result = AnalyticalModSRAM(wide).multiply(a, b, modulus)
    assert narrow_result.report.as_dict() == wide_result.report.as_dict()
    assert narrow_result.product == wide_result.product == (a * b) % modulus


@pytest.mark.slow
@pytest.mark.parametrize("bits,rows,columns", SLOW_GEOMETRIES)
def test_swept_geometries_slow(bits, rows, columns):
    """The full rows × columns sweep at the expensive widths, with RTL."""
    rng = random.Random(SEED ^ (bits << 16) ^ (rows << 8) ^ columns)
    config = _swept_config(bits, rows, columns)
    for extend in (False, True):
        variant = replace(config, extend_for_full_range=extend)
        _assert_geometry_parity(
            variant, _random_odd_modulus(rng, bits), rng, with_hdl=True
        )
