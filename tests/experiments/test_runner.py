"""Tests for ExperimentSpec grids and the caching, parallel Runner."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    reproduce_chip_scaling,
    reproduce_figure1,
    reproduce_figure5,
    reproduce_figure6,
    reproduce_figure7,
    reproduce_headline_claims,
    reproduce_table3,
    reproduce_tables,
)
from repro.analysis.report import REPORT_DIVIDER, build_report
from repro.errors import ConfigurationError
from repro.experiments import ExperimentSpec, Runner, SweepResult

# ---------------------------------------------------------------------- #
# specs
# ---------------------------------------------------------------------- #
class TestExperimentSpec:
    def test_single_point_without_sweep(self):
        spec = ExperimentSpec("figure6", {"bitwidth": 128})
        assert not spec.is_sweep
        assert spec.points() == [{"bitwidth": 128}]

    def test_cartesian_grid_expansion(self):
        spec = ExperimentSpec(
            "design-point",
            {"measure": False},
            {"bitwidth": [64, 128], "technology_nm": [65, 45]},
        )
        points = spec.points()
        assert len(points) == 4
        assert {(p["bitwidth"], p["technology_nm"]) for p in points} == {
            (64, 65), (64, 45), (128, 65), (128, 45)
        }
        assert all(p["measure"] is False for p in points)

    def test_axis_conflicting_with_fixed_param_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("figure6", {"bitwidth": 64}, {"bitwidth": [64, 128]})

    def test_empty_axis_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("figure6", {}, {"bitwidth": []})

    def test_spec_round_trips_through_json(self):
        spec = ExperimentSpec("figure6", {}, {"bitwidth": [64, 128]})
        loaded = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert loaded == spec


# ---------------------------------------------------------------------- #
# runner: correctness and parameter handling
# ---------------------------------------------------------------------- #
class TestRunnerExecution:
    def test_unknown_experiment_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            Runner(cache_dir=str(tmp_path)).run("figure99")

    def test_unknown_parameter_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            Runner(cache_dir=str(tmp_path)).run("figure6", {"bitwdith": 64})

    def test_quick_mode_applies_the_overrides(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), use_cache=False)
        result = runner.run("figure1", quick=True)
        assert result.params["measure"] is False
        legacy = result.result()
        assert legacy.measured_modsram == legacy.analytic_series["r4csa-lut"]

    def test_explicit_param_beats_quick_override(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), use_cache=False)
        result = runner.run(
            "figure1", {"bitwidths": [8, 16], "measure": True}, quick=True
        )
        assert result.params["measure"] is True

    def test_result_matches_the_direct_call(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), use_cache=False)
        assert (
            runner.run("figure6").render() == reproduce_figure6().render()
        )

    def test_sweep_returns_grid_order_and_distinct_results(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), use_cache=False)
        sweep = runner.sweep("figure6", {"bitwidth": [64, 128, 256]})
        assert [r.params["bitwidth"] for r in sweep.results] == [64, 128, 256]
        rows = [r.result().rows_by_design["mentt"] for r in sweep.results]
        assert rows == sorted(rows)  # MeNTT row need grows with bitwidth
        loaded = SweepResult.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert [x.render() for x in loaded.results] == [
            x.render() for x in sweep.results
        ]


# ---------------------------------------------------------------------- #
# runner: disk cache
# ---------------------------------------------------------------------- #
class TestRunnerCache:
    def test_miss_then_hit_with_identical_render(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        first = runner.run("figure6")
        second = runner.run("figure6")
        assert not first.cache_hit
        assert second.cache_hit
        assert second.render() == first.render()
        assert len(list(tmp_path.glob("figure6-*.json"))) == 1

    def test_different_params_use_different_entries(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        runner.run("figure6", {"bitwidth": 64})
        runner.run("figure6", {"bitwidth": 128})
        assert len(list(tmp_path.glob("figure6-*.json"))) == 2
        assert runner.run("figure6", {"bitwidth": 64}).cache_hit

    def test_disabled_cache_neither_reads_nor_writes(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), use_cache=False)
        runner.run("figure6")
        second = runner.run("figure6")
        assert not second.cache_hit
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        first = runner.run("figure6")
        path = runner.cache_path("figure6", first.params)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        recomputed = runner.run("figure6")
        assert not recomputed.cache_hit
        assert recomputed.render() == first.render()

    def test_unwritable_cache_dir_degrades_to_uncached(self, tmp_path):
        """A bad cache dir must never discard a computed result."""
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("occupied")
        runner = Runner(cache_dir=str(blocker / "sub"))
        result = runner.run("figure6")
        assert not result.cache_hit
        assert result.render() == reproduce_figure6().render()
        assert not runner.run("figure6").cache_hit  # still uncached

    def test_warm_sweep_performs_zero_recomputation(self, tmp_path):
        """Acceptance: a second cached sweep recomputes nothing."""
        runner = Runner(cache_dir=str(tmp_path))
        cold = runner.sweep("figure6", {"bitwidth": [64, 128, 256]})
        assert cold.cache_hits == 0
        warm = runner.sweep("figure6", {"bitwidth": [64, 128, 256]})
        assert warm.cache_hits == len(warm.results) == 3
        assert [r.render() for r in warm.results] == [
            r.render() for r in cold.results
        ]


# ---------------------------------------------------------------------- #
# runner: parallel execution
# ---------------------------------------------------------------------- #
class TestRunnerParallel:
    def test_parallel_specs_match_serial(self, tmp_path):
        specs = [
            ExperimentSpec("table1"),
            ExperimentSpec("figure5"),
            ExperimentSpec("figure6"),
        ]
        serial = Runner(use_cache=False).run_specs(specs)
        parallel = Runner(
            use_cache=False, parallel=True, max_workers=2
        ).run_specs(specs)
        assert [r.experiment for r in parallel] == [r.experiment for r in serial]
        assert [r.render() for r in parallel] == [r.render() for r in serial]

    def test_parallel_sweep_fills_the_cache(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), parallel=True, max_workers=2)
        cold = runner.sweep("figure6", {"bitwidth": [64, 128]})
        assert cold.cache_hits == 0
        warm = Runner(cache_dir=str(tmp_path)).sweep(
            "figure6", {"bitwidth": [64, 128]}
        )
        assert warm.cache_hits == 2


# ---------------------------------------------------------------------- #
# report acceptance: byte-identical to the legacy serial composition
# ---------------------------------------------------------------------- #
class TestReportEquivalence:
    @pytest.fixture(scope="class")
    def legacy_quick_report(self):
        return REPORT_DIVIDER.join(
            [
                reproduce_tables().render(),
                reproduce_figure1(measure=False).render(),
                reproduce_figure5().render(),
                reproduce_figure6().render(),
                reproduce_figure7().render(),
                reproduce_table3(measure=False).render(),
                reproduce_headline_claims(measure=False).render(),
                reproduce_chip_scaling(
                    macro_counts=(1, 2, 4),
                    scalar_bits=64,
                    vector_size=256,
                    msm_points=16,
                ).render(),
            ]
        )

    def test_serial_report_is_byte_identical(self, legacy_quick_report):
        assert build_report(quick=True) == legacy_quick_report

    def test_parallel_report_is_byte_identical(self, legacy_quick_report):
        assert build_report(quick=True, parallel=True) == legacy_quick_report

    def test_cached_report_is_byte_identical(self, tmp_path, legacy_quick_report):
        cold = build_report(quick=True, use_cache=True, cache_dir=str(tmp_path))
        warm = build_report(quick=True, use_cache=True, cache_dir=str(tmp_path))
        assert cold == legacy_quick_report
        assert warm == legacy_quick_report

    def test_runner_and_flags_together_are_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            build_report(quick=True, parallel=True, runner=Runner(use_cache=False))


class TestImportOrders:
    def test_experiments_first_import_has_no_cycle(self):
        """Importing repro.experiments before repro.analysis must work."""
        import os
        import subprocess
        import sys

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "src",
        )
        environment = dict(os.environ)
        environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c",
             "from repro.experiments import available_experiments; "
             "assert len(available_experiments()) == 14"],
            capture_output=True,
            text=True,
            timeout=120,
            env=environment,
            check=False,
        )
        assert completed.returncode == 0, completed.stderr
