"""Tests for the chip-scaling experiment through the Runner and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.chip_scaling import reproduce_chip_scaling
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments import Runner, get_experiment

QUICK_PARAMS = {
    "macro_counts": [1, 2],
    "scalar_bits": 32,
    "vector_size": 128,
    "msm_points": 8,
}


class TestReproduceChipScaling:
    def test_speedup_normalised_to_one_macro(self):
        result = reproduce_chip_scaling(
            workload="ntt", macro_counts=(1, 4), vector_size=256
        )
        assert result.points[0].macros == 1
        assert result.points[0].speedup == pytest.approx(1.0)
        assert result.points[1].speedup > 1.0
        assert result.points[1].efficiency <= 1.0 + 1e-9

    def test_baseline_is_computed_even_without_macro_count_one(self):
        result = reproduce_chip_scaling(
            workload="ntt", macro_counts=(4,), vector_size=256
        )
        (point,) = result.points
        assert point.macros == 4
        assert point.speedup > 1.0  # measured against an implicit 1-macro run

    def test_every_workload_runs(self):
        for workload in ("ecdsa-sign", "scalar-mult", "ntt", "msm"):
            result = reproduce_chip_scaling(
                workload=workload,
                macro_counts=(1, 2),
                scalar_bits=16,
                vector_size=64,
                msm_points=4,
            )
            assert result.workload == workload
            assert all(point.jobs > 0 for point in result.points)
            assert workload in result.render()

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            reproduce_chip_scaling(workload="sha256", macro_counts=(1,))

    def test_empty_macro_counts_are_rejected(self):
        with pytest.raises(ConfigurationError, match="macro_counts"):
            reproduce_chip_scaling(macro_counts=())


class TestRunnerIntegration:
    """Acceptance: chip-scaling runs through the Runner with caching."""

    def test_registered_with_quick_overrides_and_sweep_axes(self):
        definition = get_experiment("chip-scaling")
        assert "workload" in definition.sweep_axes
        assert definition.quick_overrides  # quick mode shrinks the workload

    def test_runner_caches_the_experiment(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        cold = runner.run("chip-scaling", QUICK_PARAMS)
        warm = runner.run("chip-scaling", QUICK_PARAMS)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.render() == cold.render()

    def test_sweep_over_workloads(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        sweep = runner.sweep(
            "chip-scaling",
            {"workload": ["ntt", "scalar-mult"]},
            QUICK_PARAMS,
        )
        assert len(sweep.results) == 2
        rendered = [result.render() for result in sweep.results]
        assert "ntt" in rendered[0] and "scalar-mult" in rendered[1]

    def test_parallel_matches_serial(self, tmp_path):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(
            "chip-scaling", QUICK_PARAMS, {"workload": ("ntt", "msm")}
        )
        serial = Runner(use_cache=False).run_spec(spec)
        parallel = Runner(use_cache=False, parallel=True, max_workers=2).run_spec(spec)
        assert [r.render() for r in parallel] == [r.render() for r in serial]


class TestChipCli:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        return code, capsys.readouterr().out

    def test_chip_subcommand_renders_a_table(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys,
            "chip", "--workload", "ntt", "--macros", "1,2", "--size", "128",
            "--cache-dir", str(tmp_path),
        )
        assert code == 0
        assert "Chip scale-out on ntt" in out

    def test_chip_subcommand_json(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys,
            "chip", "--quick", "--json", "--cache-dir", str(tmp_path),
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "chip-scaling"
        assert payload["payload"]["workload"] == "ecdsa-sign"
        assert len(payload["payload"]["points"]) == 3  # quick grid: 1, 2, 4

    def test_quick_mode_applies_the_experiment_overrides(self, capsys, tmp_path):
        """--quick must shrink the workload, not just the macro grid."""
        code, out = self.run_cli(
            capsys, "chip", "--quick", "--json", "--cache-dir", str(tmp_path)
        )
        assert code == 0
        params = json.loads(out)["params"]
        assert params["scalar_bits"] == 64  # the experiment's quick override
        assert params["macro_counts"] == [1, 2, 4]

    def test_explicit_flags_win_even_in_quick_mode(self, capsys, tmp_path):
        code, out = self.run_cli(
            capsys,
            "chip", "--quick", "--json", "--macros", "1,8",
            "--scalar-bits", "16", "--cache-dir", str(tmp_path),
        )
        assert code == 0
        params = json.loads(out)["params"]
        assert params["macro_counts"] == [1, 8]
        assert params["scalar_bits"] == 16

    def test_chip_subcommand_rejects_bad_macros(self, capsys):
        code, out = self.run_cli(capsys, "chip", "--macros", "two")
        assert code == 2
        assert "comma-separated integers" in out
        code, out = self.run_cli(capsys, "chip", "--macros", "0")
        assert code == 2
