"""Golden JSON round-trip tests for every experiment's structured result.

For each registered experiment: run it, serialise the result to JSON, load
it back, and require the rendered text view to be byte-identical.  This is
the property the runner's disk cache and the ``--json`` CLI output rely on.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ExperimentResult,
    available_experiments,
    get_experiment,
)

#: (experiment, parameter overrides, quick) — cheap enough for tier-1.
ROUND_TRIP_CASES = (
    ("table1", {}, False),
    ("table1", {"multiplicand": 12345, "modulus": 65521}, False),
    ("figure1", {}, True),
    ("figure1", {"bitwidths": [8, 16, 32], "measure": True}, False),
    ("figure5", {}, False),
    ("figure5", {"technology_nm": 45}, False),
    ("figure6", {}, False),
    ("figure6", {"bitwidth": 128}, False),
    ("figure7", {}, False),
    ("table3", {}, True),
    ("table3", {"measure": True}, False),
    ("headline", {}, True),
    ("energy", {"bitwidths": [16, 32]}, False),
    ("design-point", {"bitwidth": 32}, False),
    ("design-point", {}, True),
    ("chip-scaling", {}, True),
    ("chip-scaling", {"workload": "ntt", "vector_size": 512, "macro_counts": [1, 4]}, False),
    ("serving-throughput", {"backend": "montgomery"}, True),
    ("hdl-cosim", {"bitwidths": [16], "cases": 2}, True),
    ("dse-point", {}, True),
    ("dse-point", {"banks": 4, "radix": 8, "scheduler": "round-robin",
                   "workload": "ntt", "workload_ops": 64}, False),
    ("dse-point", {"bitwidth": 32, "rows": 32, "fidelity": "cycle",
                   "workload_ops": 32}, False),
    ("dse", {"sample": 1, "workload_ops": 64}, False),
)


def run_experiment(name, params, quick):
    definition = get_experiment(name)
    resolved = definition.resolve_params(params, quick=quick)
    legacy = definition.execute(resolved)
    return definition, resolved, legacy


class TestGoldenRoundTrips:
    @pytest.mark.parametrize("name,params,quick", ROUND_TRIP_CASES)
    def test_payload_json_round_trip_renders_identically(self, name, params, quick):
        definition, resolved, legacy = run_experiment(name, params, quick)
        payload = definition.serialize(legacy)
        wire = json.loads(json.dumps(payload))
        assert definition.deserialize(wire).render() == legacy.render()

    @pytest.mark.parametrize("name,params,quick", ROUND_TRIP_CASES)
    def test_experiment_result_json_round_trip(self, name, params, quick):
        definition, resolved, legacy = run_experiment(name, params, quick)
        result = ExperimentResult(
            experiment=name,
            params=resolved,
            payload=definition.serialize(legacy),
            elapsed_seconds=0.25,
        )
        loaded = ExperimentResult.from_json(result.to_json())
        assert loaded.experiment == name
        assert loaded.params == json.loads(json.dumps(resolved))
        assert loaded.render() == legacy.render()

    def test_every_registered_experiment_is_covered(self):
        covered = {name for name, _, _ in ROUND_TRIP_CASES}
        assert covered == set(available_experiments())
