"""Tests for the serving-throughput experiment and the serve/submit CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.serving import (
    ServingThroughputResult,
    reproduce_serving_throughput,
)
from repro.cli import main
from repro.experiments import available_experiments, get_experiment


QUICK = dict(
    backend="montgomery",
    tenants=2,
    requests=4,
    pairs_per_request=4,
    graph_every=4,
    graph_leaves=8,
)


class TestServingExperiment:
    def test_registered_with_quick_overrides(self):
        assert "serving-throughput" in available_experiments()
        definition = get_experiment("serving-throughput")
        assert definition.quick_overrides
        assert "tenants" in definition.sweep_axes or "backend" in definition.sweep_axes

    def test_reproduce_verifies_all_traffic(self):
        result = reproduce_serving_throughput(**QUICK)
        assert result.completed_requests == 8
        assert result.verified_requests == 8
        assert result.rejected_requests == 0
        assert result.backend == "montgomery"
        assert result.batches > 0
        assert result.requests_per_second > 0
        assert result.coalescing_factor >= 1.0

    def test_result_round_trips_through_json(self):
        result = reproduce_serving_throughput(**QUICK)
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = ServingThroughputResult.from_dict(payload)
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()

    def test_render_mentions_the_key_metrics(self):
        result = reproduce_serving_throughput(**QUICK)
        text = result.render()
        assert "Async serving layer on montgomery" in text
        assert "coalescing factor" in text
        assert "context-cache hit rate" in text

    def test_runner_executes_it_quick(self, tmp_path):
        from repro.experiments import Runner

        runner = Runner(cache_dir=str(tmp_path), use_cache=False)
        result = runner.run(
            "serving-throughput", {"backend": "montgomery"}, quick=True
        )
        payload = result.to_dict()
        assert payload["experiment"] == "serving-throughput"

    def test_wall_clock_results_are_never_cached(self, tmp_path):
        import os

        from repro.experiments import Runner

        assert get_experiment("serving-throughput").cacheable is False
        runner = Runner(cache_dir=str(tmp_path))  # cache enabled
        runner.run("serving-throughput", {"backend": "montgomery"}, quick=True)
        rerun = runner.run(
            "serving-throughput", {"backend": "montgomery"}, quick=True
        )
        # A stale timing must never be served (or stored) as fresh.
        assert not rerun.cache_hit
        assert not os.listdir(tmp_path)


class TestServeCli:
    def test_self_test_quick_text(self, capsys):
        assert main([
            "serve", "--self-test", "--quick", "--backend", "montgomery",
        ]) == 0
        output = capsys.readouterr().out
        assert "verified requests" in output
        assert "context cache" in output

    def test_self_test_json(self, capsys):
        assert main([
            "serve", "--self-test", "--quick", "--backend", "montgomery",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed_requests"] == 0
        assert payload["verified_requests"] == payload["completed_requests"]
        assert "context_cache" in payload

    def test_serve_without_self_test_is_a_usage_error(self, capsys):
        assert main(["serve"]) == 2
        assert "--self-test" in capsys.readouterr().out


class TestSubmitCli:
    def test_product_tree_submission(self, capsys):
        assert main([
            "submit", "--workload", "product-tree", "--count", "8",
            "--backend", "montgomery", "--modulus", "997", "--seed", "7",
        ]) == 0
        output = capsys.readouterr().out
        assert "product-tree" in output
        assert "result" in output

    def test_batch_submission_json_reproduces_products(self, capsys):
        import random

        modulus, seed, count = 65521, 11, 4
        assert main([
            "submit", "--workload", "batch", "--count", str(count),
            "--backend", "barrett", "--modulus", str(modulus),
            "--seed", str(seed), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        rng = random.Random(seed)
        pairs = [
            (rng.randrange(modulus), rng.randrange(modulus))
            for _ in range(count)
        ]
        assert payload["values"] == [a * b % modulus for a, b in pairs]
        assert payload["server"]["completed_requests"] == 1

    def test_count_validation(self, capsys):
        assert main(["submit", "--count", "1"]) == 2
        assert "at least 2" in capsys.readouterr().out

    def test_single_pair_batch_is_allowed(self, capsys):
        assert main([
            "submit", "--workload", "batch", "--count", "1",
            "--backend", "schoolbook", "--modulus", "997", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["values"]) == 1
