"""Tests for the ``repro experiment`` CLI and ``python -m repro`` parity."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


class TestExperimentList:
    def test_text_listing_names_every_experiment(self, capsys):
        assert main(["experiment", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("figure1", "figure5", "table3", "headline", "design-point"):
            assert name in output

    def test_json_listing_carries_the_parameter_schema(self, capsys):
        assert main(["experiment", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["figure1"]["quick_overrides"] == {"measure": False}
        assert "bitwidth" in by_name["figure6"]["defaults"]
        assert by_name["design-point"]["sweep_axes"] == [
            "bitwidth", "rows", "columns", "banks", "technology_nm"
        ]


class TestExperimentRun:
    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "run", "figure99", "--no-cache"]) == 1
        output = capsys.readouterr().out
        assert "error:" in output and "unknown experiment" in output

    def test_bad_set_syntax_fails_cleanly(self, capsys):
        code = main(["experiment", "run", "figure6", "--set", "bitwidth",
                     "--no-cache"])
        assert code == 1
        assert "KEY=VALUE" in capsys.readouterr().out

    def test_run_renders_the_legacy_text_view(self, capsys):
        assert main(["experiment", "run", "figure6", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output and "ModSRAM" in output

    def test_json_run_with_parameter_override(self, capsys):
        code = main(["experiment", "run", "figure6", "--set", "bitwidth=128",
                     "--json", "--no-cache"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment"] == "figure6"
        assert data["params"]["bitwidth"] == 128
        assert data["payload"]["bitwidth"] == 128
        assert data["cache_hit"] is False

    def test_headline_quick_json_smoke(self, capsys):
        """The CI smoke invocation: every claim must hold."""
        code = main(["experiment", "run", "headline", "--json", "--quick",
                     "--no-cache"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["params"]["measure"] is False
        assert all(claim["holds"] for claim in data["payload"]["claims"])

    def test_run_reads_the_cache_on_the_second_invocation(self, capsys, tmp_path):
        argv = ["experiment", "run", "figure6", "--json",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["payload"] == first["payload"]


class TestExperimentSweep:
    def test_sweep_summary_table(self, capsys, tmp_path):
        code = main(["experiment", "sweep", "figure6",
                     "--axis", "bitwidth=64,128",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 points" in output
        assert "0/2 points from cache" in output

    def test_sweep_json_round_trips_and_caches(self, capsys, tmp_path):
        argv = ["experiment", "sweep", "figure6", "--axis", "bitwidth=64,128",
                "--json", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert [r["params"]["bitwidth"] for r in first["results"]] == [64, 128]
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert all(r["cache_hit"] for r in second["results"])
        assert [r["payload"] for r in second["results"]] == [
            r["payload"] for r in first["results"]
        ]

    def test_sweep_render_mode_prints_every_point(self, capsys, tmp_path):
        code = main(["experiment", "sweep", "figure6",
                     "--axis", "bitwidth=64,128", "--render",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("Figure 6") == 2


class TestReportFlags:
    def test_parallel_report_is_byte_identical_to_serial(self, capsys):
        assert main(["report", "--quick", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["report", "--quick", "--parallel", "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cached_report_reuses_results(self, capsys, tmp_path):
        argv = ["report", "--quick", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert list(tmp_path.glob("*.json"))


class TestModuleEntryPoint:
    def test_python_dash_m_repro_matches_the_cli(self):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = SRC_DIR + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "backends"],
            capture_output=True,
            text=True,
            timeout=300,
            env=environment,
            check=False,
        )
        assert completed.returncode == 0, completed.stderr
        assert "r4csa-lut" in completed.stdout

    def test_python_dash_m_repro_experiment_run(self, tmp_path):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = SRC_DIR + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "experiment", "run", "headline",
             "--json", "--quick", "--cache-dir", str(tmp_path)],
            capture_output=True,
            text=True,
            timeout=300,
            env=environment,
            check=False,
        )
        assert completed.returncode == 0, completed.stderr
        data = json.loads(completed.stdout)
        assert all(claim["holds"] for claim in data["payload"]["claims"])
