"""Integration tests spanning multiple subsystems.

These exercise the paths a user of the library actually takes: elliptic-curve
arithmetic running on top of the R4CSA-LUT algorithm and on top of the
cycle-accurate ModSRAM model, NTT-based polynomial multiplication over the
ZKP scalar field, and the end-to-end latency projection that ties the
per-multiplication cycle count to a point operation.
"""

from __future__ import annotations

import pytest

from repro.core import R4CSALutMultiplier
from repro.ecc import PrimeField, build_curve, get_curve, scalar_multiply
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram import ModSRAMConfig, ModSRAMMultiplier, PAPER_CONFIG
from repro.zkp import NttContext


class TestEccOnR4CSALut:
    def test_point_doubling_matches_reference_backend(self):
        spec = CURVE_SPECS["bn254"]
        reference = build_curve(spec)
        hardware_algorithm = build_curve(
            spec, field=PrimeField(spec.field_modulus, multiplier=R4CSALutMultiplier())
        )
        assert (
            hardware_algorithm.double(hardware_algorithm.generator).coordinates()
            == reference.double(reference.generator).coordinates()
        )

    def test_scalar_multiplication_matches_reference_backend(self):
        spec = CURVE_SPECS["secp256k1"]
        reference = build_curve(spec)
        hardware_algorithm = build_curve(
            spec, field=PrimeField(spec.field_modulus, multiplier=R4CSALutMultiplier())
        )
        scalar = 0xDEADBEEFCAFEBABE
        assert (
            scalar_multiply(hardware_algorithm, scalar, hardware_algorithm.generator).coordinates()
            == scalar_multiply(reference, scalar, reference.generator).coordinates()
        )

    def test_field_counter_reports_modmul_count_of_point_addition(self):
        spec = CURVE_SPECS["bn254"]
        curve = build_curve(spec)
        generator = curve.generator
        doubled = curve.double(generator)
        curve.field.counter.reset()
        curve.jacobian_add_mixed(curve.to_jacobian(doubled), generator)
        modmuls = curve.field.counter.count("modmul")
        # Mixed Jacobian addition: 8M + 3S = 11 multiplications.
        assert modmuls == 11


class TestEccOnModSRAM:
    def test_point_addition_on_the_cycle_accurate_model(self):
        """An EC point addition computed entirely by the simulated macro."""
        spec = CURVE_SPECS["bn254"]
        adapter = ModSRAMMultiplier(PAPER_CONFIG)
        hardware = build_curve(
            spec, field=PrimeField(spec.field_modulus, multiplier=adapter)
        )
        reference = build_curve(spec)
        hardware_result = hardware.add(
            hardware.generator, hardware.double(hardware.generator)
        )
        reference_result = reference.add(
            reference.generator, reference.double(reference.generator)
        )
        assert hardware_result.coordinates() == reference_result.coordinates()
        assert adapter.reports, "the accelerator should have been exercised"
        assert all(r.iteration_cycles == 767 for r in adapter.reports)

    def test_point_operation_latency_projection(self):
        """Cycles per point addition = modmuls x 767 when LUTs are not shared."""
        spec = CURVE_SPECS["bn254"]
        adapter = ModSRAMMultiplier(PAPER_CONFIG)
        field = PrimeField(spec.field_modulus, multiplier=adapter)
        curve = build_curve(spec, field=field)
        curve.jacobian_add_mixed(curve.to_jacobian(curve.double(curve.generator)), curve.generator)
        modmuls = field.counter.count("modmul")
        assert adapter.total_iteration_cycles() == 767 * modmuls


class TestZkpPipeline:
    def test_polynomial_product_over_the_zkp_field(self, rng):
        modulus = CURVE_SPECS["bn254"].scalar_field_modulus
        assert modulus is not None
        context = NttContext(modulus, 64)
        a = [rng.randrange(modulus) for _ in range(32)]
        b = [rng.randrange(modulus) for _ in range(32)]
        product = context.multiply_polynomials(a, b)
        # Spot-check a few coefficients against the schoolbook convolution.
        for index in (0, 1, 17, 40, 62):
            expected = sum(
                a[i] * b[index - i]
                for i in range(max(0, index - 31), min(31, index) + 1)
            ) % modulus
            assert product[index] == expected

    def test_ntt_latency_projection_on_modsram(self):
        """Connect the kernel's modmul count to ModSRAM's per-op latency."""
        from repro.zkp import ntt_operation_counts

        counts = ntt_operation_counts(vector_size=2**15, bitwidth=256)
        cycles = counts.modular_multiplications * PAPER_CONFIG.expected_iteration_cycles
        latency_ms = cycles / (PAPER_CONFIG.frequency_mhz * 1e3)
        # A single macro handles the 2^15-point NTT's multiplications in
        # hundreds of milliseconds — the right order of magnitude for one
        # 420 MHz multiplier doing ~245k multiplications at 767 cycles each.
        assert 100 < latency_ms < 1000


class TestSmallMacroEndToEnd:
    def test_sixteen_bit_curve_like_workload(self, rng):
        """A full workload on a small macro: many multiplications, shared LUTs."""
        modulus = 65521
        adapter = ModSRAMMultiplier(ModSRAMConfig(extend_for_full_range=True).with_bitwidth(16))
        values = [(rng.randrange(modulus), rng.randrange(modulus)) for _ in range(8)]
        fixed_multiplicand = rng.randrange(modulus)
        for a, _ in values:
            assert (
                adapter.multiply(a, fixed_multiplicand, modulus)
                == (a * fixed_multiplicand) % modulus
            )
        # Every multiplication after the first reuses the resident LUTs.
        assert adapter.lut_reuse_rate() == pytest.approx(7 / 8)
