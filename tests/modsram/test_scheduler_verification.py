"""Tests for the point-operation scheduler and the equivalence checker."""

from __future__ import annotations

import pytest

from repro.errors import MemoryMapError
from repro.modsram import (
    EquivalenceChecker,
    ModSRAMConfig,
    PAPER_CONFIG,
    PointOperationScheduler,
)
from repro.modsram.scheduler import DOUBLING_SEQUENCE, MIXED_ADDITION_SEQUENCE
from repro.modsram.verification import directed_operands


class TestPointOperationScheduler:
    @pytest.fixture()
    def scheduler(self) -> PointOperationScheduler:
        return PointOperationScheduler(PAPER_CONFIG)

    def test_mixed_addition_structure(self, scheduler):
        schedule = scheduler.schedule_mixed_addition()
        assert schedule.multiplication_count == len(MIXED_ADDITION_SEQUENCE) == 11
        assert schedule.iteration_cycles == 11 * 767
        assert schedule.lut_rows_used == 13

    def test_doubling_structure(self, scheduler):
        schedule = scheduler.schedule_doubling()
        assert schedule.multiplication_count == len(DOUBLING_SEQUENCE) == 8
        assert schedule.iteration_cycles == 8 * 767

    def test_operands_fit_the_array(self, scheduler):
        """§5.2: the 64-row array accommodates a point addition's operands."""
        schedule = scheduler.schedule_mixed_addition()
        assert schedule.operand_rows_used <= PAPER_CONFIG.operand_capacity
        assert schedule.operand_rows_used + schedule.lut_rows_used + 2 <= PAPER_CONFIG.rows

    def test_lut_reuse_detected_for_repeated_multiplicands(self, scheduler):
        schedule = scheduler.schedule(
            [("p1", "a", "b"), ("p2", "c", "b"), ("p3", "d", "b"), ("p4", "e", "f")],
            preloaded=("a", "b", "c", "d", "e", "f", "modulus"),
        )
        reused = [entry.lut_reused for entry in schedule.multiplications]
        assert reused == [False, True, True, False]
        assert schedule.lut_reuse_rate == pytest.approx(0.5)
        assert schedule.precompute_cycles == 2 * PointOperationScheduler.RADIX4_PRECOMPUTE_CYCLES

    def test_every_value_gets_a_unique_row(self, scheduler):
        schedule = scheduler.schedule_mixed_addition()
        row_of_name = {}
        for entry in schedule.multiplications:
            for name, row in (
                (entry.multiplier, entry.multiplier_row),
                (entry.multiplicand, entry.multiplicand_row),
                (entry.product, entry.product_row),
            ):
                row_of_name.setdefault(name, row)
                assert row_of_name[name] == row  # a value never moves rows
        # Distinct values occupy distinct rows, all within the operand region.
        assert len(set(row_of_name.values())) == len(row_of_name)
        # The only preloaded value not touched by a multiplication is the modulus.
        assert len(row_of_name) == schedule.operand_rows_used - 1

    def test_overflowing_the_operand_region_is_detected(self):
        scheduler = PointOperationScheduler(ModSRAMConfig(rows=18).with_bitwidth(16))
        # rows=18 leaves exactly 3 operand rows; this sequence needs more.
        with pytest.raises(MemoryMapError):
            scheduler.schedule([("p", "a", "b"), ("q", "c", "d")],
                               preloaded=("a", "b", "modulus"))

    def test_doubling_preloads_the_curve_constant(self, scheduler):
        """The doubling schedule seeds x1/y1/z1, the modulus and 'three'."""
        schedule = scheduler.schedule_doubling()
        rows = {}
        for entry in schedule.multiplications:
            rows[entry.multiplier] = entry.multiplier_row
            rows[entry.multiplicand] = entry.multiplicand_row
            rows[entry.product] = entry.product_row
        assert "three" in rows  # the a=0 doubling needs 3*XX
        # Preloaded values occupy the first operand slots, in order.
        preloaded_rows = [rows[name] for name in ("x1", "y1", "z1")]
        assert preloaded_rows == sorted(preloaded_rows)

    def test_doubling_lut_reuse_profile(self, scheduler):
        """No two consecutive doubling multiplications share a multiplicand,
        so every one of the eight pays the radix-4 refill."""
        schedule = scheduler.schedule_doubling()
        assert [entry.lut_reused for entry in schedule.multiplications] == (
            [False] * len(DOUBLING_SEQUENCE)
        )
        assert schedule.lut_reuse_rate == 0.0
        assert schedule.precompute_cycles == (
            len(DOUBLING_SEQUENCE)
            * PointOperationScheduler.RADIX4_PRECOMPUTE_CYCLES
        )

    def test_doubling_operands_fit_the_array(self, scheduler):
        schedule = scheduler.schedule_doubling()
        assert schedule.operand_rows_used <= PAPER_CONFIG.operand_capacity
        assert schedule.operand_rows_used < (
            scheduler.schedule_mixed_addition().operand_rows_used
        )

    def test_doubling_every_value_gets_a_unique_row(self, scheduler):
        schedule = scheduler.schedule_doubling()
        row_of_name = {}
        for entry in schedule.multiplications:
            for name, row in (
                (entry.multiplier, entry.multiplier_row),
                (entry.multiplicand, entry.multiplicand_row),
                (entry.product, entry.product_row),
            ):
                row_of_name.setdefault(name, row)
                assert row_of_name[name] == row
        assert len(set(row_of_name.values())) == len(row_of_name)

    def test_doubling_total_cycles_compose(self, scheduler):
        schedule = scheduler.schedule_doubling()
        assert schedule.total_cycles == (
            schedule.iteration_cycles + schedule.precompute_cycles
        )
        assert schedule.as_dict()["operation"] == "doubling"
        assert schedule.latency_us(420.0) == pytest.approx(
            schedule.total_cycles / 420.0
        )

    def test_scalar_multiplication_projection(self, scheduler):
        cycles = scheduler.scalar_multiplication_cycles(255)
        doubling = scheduler.schedule_doubling().total_cycles
        addition = scheduler.schedule_mixed_addition().total_cycles
        assert cycles == 255 * doubling + 127 * addition
        with pytest.raises(MemoryMapError):
            scheduler.scalar_multiplication_cycles(0)

    def test_summary_dict(self, scheduler):
        summary = scheduler.schedule_mixed_addition().as_dict()
        assert summary["multiplications"] == 11
        assert summary["total_cycles"] == summary["iteration_cycles"] + summary["precompute_cycles"]


class TestEquivalenceChecker:
    def test_directed_operands_cover_corner_cases(self):
        pairs = directed_operands(65521, 16)
        assert (0, 0) in pairs
        assert (65520, 65520) in pairs
        assert all(0 <= a < 65521 and 0 <= b < 65521 for a, b in pairs)

    def test_checker_passes_on_a_small_macro(self):
        checker = EquivalenceChecker(ModSRAMConfig().with_bitwidth(20))
        modulus = ((1 << 20) - 3) | 1
        report = checker.run(modulus, random_cases=6, seed=1)
        assert report.passed
        assert report.total == 6 + len(directed_operands(modulus, 20))
        assert report.constant_time()
        assert "PASS" in report.summary()

    def test_checker_paper_mode_masks_the_top_bit(self):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(16)
        checker = EquivalenceChecker(config)
        report = checker.run(65521, random_cases=4, seed=2)
        assert report.passed
        for case in report.cases:
            assert case.a < (1 << 15)

    def test_checker_without_directed_cases(self):
        checker = EquivalenceChecker(ModSRAMConfig().with_bitwidth(16))
        report = checker.run(65521, random_cases=3, include_directed=False)
        assert report.total == 3

    def test_invalid_case_count_rejected(self):
        from repro.errors import ConfigurationError

        checker = EquivalenceChecker(ModSRAMConfig().with_bitwidth(16))
        with pytest.raises(ConfigurationError):
            checker.run(65521, random_cases=-1)

    def test_failure_detection(self):
        """A corrupted result is reported as a failure, not silently accepted."""
        from repro.modsram.verification import VerificationCase, VerificationReport

        bad_case = VerificationCase(
            a=1, b=1, modulus=7, expected=1,
            accelerator_product=2, algorithm_product=1, iteration_cycles=11,
        )
        report = VerificationReport(modulus=7, bitwidth=3, cases=[bad_case])
        assert not report.passed
        assert len(report.failures) == 1
        assert "FAIL" in report.summary()
