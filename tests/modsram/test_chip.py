"""Tests for the multi-macro chip model, its scheduler and workload streams."""

from __future__ import annotations

import pytest

from repro.ecc.streams import (
    ecdsa_sign_stream,
    point_operation_jobs,
    scalar_multiplication_stream,
)
from repro.errors import ConfigurationError, OperandRangeError
from repro.modsram import (
    AnalyticalCostModel,
    AnalyticalModSRAM,
    Chip,
    ChipScheduler,
    ModSRAMConfig,
    MultiplicationJob,
    PAPER_CONFIG,
)
from repro.modsram.scheduler import DOUBLING_SEQUENCE, MIXED_ADDITION_SEQUENCE
from repro.zkp.streams import msm_stream, ntt_stream


def jobs(*keys: str):
    return [MultiplicationJob(multiplicand=key) for key in keys]


class TestChipScheduler:
    def test_single_macro_matches_the_cost_algebra(self):
        scheduler = ChipScheduler(1, PAPER_CONFIG)
        model = AnalyticalCostModel(PAPER_CONFIG)
        schedule = scheduler.schedule(jobs("a", "a", "b"))
        assert schedule.jobs == 3
        assert schedule.lut_refills == 2  # "a" then "b"; the middle job reuses
        assert schedule.makespan_cycles == (
            3 * model.iteration_cycles() + 2 * model.radix4_refill_cycles()
        )
        assert schedule.lut_reuse_rate == pytest.approx(1 / 3)

    def test_independent_jobs_spread_across_macros(self):
        schedule = ChipScheduler(4, PAPER_CONFIG).schedule(
            jobs(*[f"k{i}" for i in range(16)])
        )
        assert schedule.per_macro_jobs == (4, 4, 4, 4)
        assert schedule.utilization == pytest.approx(1.0)

    def test_reuse_aware_placement_keeps_a_stream_on_its_macro(self):
        # Two interleaved streams with distinct multiplicands: the scheduler
        # must route each stream to the macro holding its LUT.
        interleaved = jobs(*(["a", "b"] * 8))
        schedule = ChipScheduler(2, PAPER_CONFIG).schedule(interleaved)
        assert schedule.lut_refills == 2  # one per stream, not per job
        assert schedule.lut_reuse_rate == pytest.approx(14 / 16)
        assert schedule.per_macro_jobs == (8, 8)

    def test_more_macros_reduce_makespan(self):
        stream = list(scalar_multiplication_stream(64))
        single = ChipScheduler(1, PAPER_CONFIG).schedule(stream)
        quad = ChipScheduler(4, PAPER_CONFIG).schedule(stream)
        assert quad.jobs == single.jobs
        assert quad.makespan_cycles < single.makespan_cycles
        assert quad.throughput_mops > single.throughput_mops
        # Speedup cannot exceed the macro count.
        assert single.makespan_cycles / quad.makespan_cycles <= 4.0 + 1e-9

    def test_empty_stream(self):
        schedule = ChipScheduler(2, PAPER_CONFIG).schedule([])
        assert schedule.jobs == 0
        assert schedule.makespan_cycles == 0
        assert schedule.throughput_mops == 0.0
        assert schedule.lut_reuse_rate == 0.0

    def test_invalid_macro_counts_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ChipScheduler(0)
        with pytest.raises(ConfigurationError):
            Chip(-1)

    def test_as_dict_round_trips_the_key_quantities(self):
        schedule = ChipScheduler(2, PAPER_CONFIG).schedule(jobs("a", "b", "a"))
        data = schedule.as_dict()
        assert data["macros"] == 2
        assert data["jobs"] == 3
        assert data["makespan_cycles"] == schedule.makespan_cycles
        assert data["lut_reuse_rate"] == schedule.lut_reuse_rate


class TestChipExecution:
    def test_products_match_the_single_macro_tier(self, rng):
        config = ModSRAMConfig().with_bitwidth(16)
        chip = Chip(3, config)
        reference = AnalyticalModSRAM(config)
        modulus = 65521
        for _ in range(6):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            assert (
                chip.multiply(a, b, modulus).product
                == reference.multiply(a, b, modulus).product
                == (a * b) % modulus
            )

    def test_activity_accounts_every_job(self, rng):
        config = ModSRAMConfig().with_bitwidth(16)
        chip = Chip(2, config)
        modulus = 65521
        chip.multiply_many([(i, 7) for i in range(1, 7)], modulus)
        activity = chip.activity()
        assert activity.jobs == 6
        assert sum(activity.per_macro_jobs) == 6
        # Both macros fill the LUT once (spreading beats queueing), then
        # every later job reuses one of the resident copies.
        assert activity.lut_refills == 2
        assert activity.lut_reuse_rate == pytest.approx(4 / 6)

    def test_idle_macros_prefer_refill_over_queueing(self):
        config = ModSRAMConfig().with_bitwidth(16)
        chip = Chip(4, config)
        chip.multiply_many([(i, 7) for i in range(1, 9)], 65521)
        activity = chip.activity()
        # The first four jobs each claim an idle macro (a refill is cheaper
        # than waiting behind the resident LUT); the next four all reuse.
        assert activity.lut_refills == 4
        assert activity.per_macro_jobs == (2, 2, 2, 2)
        assert activity.lut_reuse_rate == pytest.approx(0.5)

    def test_macro_accessor(self):
        chip = Chip(2, ModSRAMConfig().with_bitwidth(16))
        assert isinstance(chip.macro(0), AnalyticalModSRAM)
        assert chip.macros == 2

    def test_chip_stats_merge_every_macro(self, rng):
        config = ModSRAMConfig().with_bitwidth(16)
        chip = Chip(2, config)
        chip.multiply_many(
            [(rng.randrange(65521), rng.randrange(65521)) for _ in range(4)], 65521
        )
        merged = chip.stats()
        per_macro = [chip.macro(index).host.stats for index in range(2)]
        assert merged.row_writes == sum(stats.row_writes for stats in per_macro)
        assert merged.compute_reads == sum(
            stats.compute_reads for stats in per_macro
        )
        assert all(stats.row_writes > 0 for stats in per_macro)  # both worked

    def test_chip_energy_report_is_chip_wide(self, rng):
        config = ModSRAMConfig().with_bitwidth(16)
        chip = Chip(2, config)
        chip.multiply_many([(11, 13), (17, 19)], 65521)
        chip_energy = chip.energy_report().total_pj
        macro_energy = sum(
            chip.macro(index).energy_report().total_pj for index in range(2)
        )
        assert chip_energy == pytest.approx(macro_energy)
        assert chip_energy > 0


class TestEccStreams:
    def test_point_operation_jobs_scope_multiplicands(self):
        doubling = list(point_operation_jobs(DOUBLING_SEQUENCE, "dbl[0]"))
        assert len(doubling) == len(DOUBLING_SEQUENCE)
        assert all(job.multiplicand.startswith("dbl[0].") for job in doubling)

    def test_scalar_multiplication_stream_counts(self):
        stream = list(scalar_multiplication_stream(64))
        expected = 64 * len(DOUBLING_SEQUENCE) + 32 * len(MIXED_ADDITION_SEQUENCE)
        assert len(stream) == expected

    def test_ecdsa_sign_stream_extends_the_scalar_multiplication(self):
        bits = 32
        sign = list(ecdsa_sign_stream(bits))
        scalar_mult = list(scalar_multiplication_stream(bits))
        # Inversion: bits squarings + bits // 2 multiplies; plus two products.
        assert len(sign) == len(scalar_mult) + bits + bits // 2 + 2

    def test_multiple_signatures_do_not_share_luts(self):
        two = list(ecdsa_sign_stream(16, signatures=2))
        one = list(ecdsa_sign_stream(16, signatures=1))
        assert len(two) == 2 * len(one)
        assert len({job.multiplicand for job in two}) == 2 * len(
            {job.multiplicand for job in one}
        )

    def test_stream_validation(self):
        with pytest.raises(OperandRangeError):
            list(scalar_multiplication_stream(0))
        with pytest.raises(OperandRangeError):
            list(ecdsa_sign_stream(64, signatures=0))


class TestZkpStreams:
    def test_ntt_stream_job_count(self):
        size = 256
        stream = list(ntt_stream(size))
        assert len(stream) == (size // 2) * 8  # n/2 * log2(n)

    def test_ntt_twiddle_groups_are_consecutive(self):
        stream = list(ntt_stream(64))
        seen = []
        for job in stream:
            if not seen or seen[-1] != job.multiplicand:
                seen.append(job.multiplicand)
        # Every distinct twiddle appears exactly once as a run.
        assert len(seen) == len(set(seen))

    def test_ntt_reuse_dominates_on_one_macro(self):
        schedule = ChipScheduler(1, PAPER_CONFIG).schedule(ntt_stream(256))
        # Distinct twiddles: 2^0 + ... + 2^7 = 255 refills for 1024 jobs.
        assert schedule.lut_refills == 255
        assert schedule.lut_reuse_rate > 0.7

    def test_ntt_stream_validation(self):
        with pytest.raises(OperandRangeError):
            list(ntt_stream(3))
        with pytest.raises(OperandRangeError):
            list(ntt_stream(0))

    def test_msm_stream_structure(self):
        stream = list(msm_stream(8, window_bits=2, scalar_bits=8))
        assert stream  # non-empty
        windows = 4  # ceil(8 / 2)
        buckets = 3  # 2^2 - 1
        additions = windows * (8 + 2 * buckets) + windows  # buckets + horner
        doublings = windows * 2
        expected = additions * len(MIXED_ADDITION_SEQUENCE) + doublings * len(
            DOUBLING_SEQUENCE
        )
        assert len(stream) == expected

    def test_msm_stream_validation(self):
        with pytest.raises(OperandRangeError):
            list(msm_stream(0))
        with pytest.raises(OperandRangeError):
            list(msm_stream(8, scalar_bits=0))
