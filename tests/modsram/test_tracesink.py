"""Tests for pluggable trace sinks on the cycle-accurate tier."""

from __future__ import annotations

import pytest

import repro.modsram.accelerator as accelerator_module
from repro.modsram import (
    CycleEvent,
    ExecutionTrace,
    ModSRAMAccelerator,
    ModSRAMConfig,
    NULL_SINK,
    NullTraceSink,
    TraceSink,
)


def small_config(bitwidth: int = 8) -> ModSRAMConfig:
    return ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)


class CountingEventFactory:
    """Stand-in for CycleEvent that counts constructions."""

    def __init__(self):
        self.constructed = 0

    def __call__(self, *args, **kwargs):
        self.constructed += 1
        return CycleEvent(*args, **kwargs)


class TestDefaultRunAllocatesNothing:
    def test_no_cycle_events_constructed_without_a_sink(self, monkeypatch):
        """Satellite acceptance: the default run materialises zero events."""
        factory = CountingEventFactory()
        monkeypatch.setattr(accelerator_module, "CycleEvent", factory)
        accelerator = ModSRAMAccelerator(small_config())
        result = accelerator.multiply(0x2A, 0x51, 0xF1)
        assert result.product == (0x2A * 0x51) % 0xF1
        assert factory.constructed == 0
        assert len(result.trace) == 0

    def test_every_cycle_constructed_with_a_sink(self, monkeypatch):
        factory = CountingEventFactory()
        monkeypatch.setattr(accelerator_module, "CycleEvent", factory)
        accelerator = ModSRAMAccelerator(small_config(), trace=True)
        result = accelerator.multiply(0x2A, 0x51, 0xF1)
        assert factory.constructed == result.report.total_cycles
        assert len(result.trace) == result.report.total_cycles


class TestSinkReproducesLegacyTrace:
    def test_external_sink_matches_legacy_trace_byte_for_byte(self):
        """Satellite acceptance: opt-in sink == legacy ``trace=True`` text."""
        legacy = ModSRAMAccelerator(small_config(), trace=True)
        legacy_text = legacy.multiply(0x2A, 0x51, 0xF1).trace.render()

        sink = ExecutionTrace()
        accelerator = ModSRAMAccelerator(small_config(), trace_sink=sink)
        accelerator.multiply(0x2A, 0x51, 0xF1)
        assert sink.render() == legacy_text
        assert len(legacy_text) > 0

    def test_external_sink_accumulates_across_multiplications(self):
        sink = ExecutionTrace()
        accelerator = ModSRAMAccelerator(small_config(), trace_sink=sink)
        first = accelerator.multiply(0x2A, 0x51, 0xF1)
        events_after_first = len(sink)
        accelerator.multiply(0x2B, 0x51, 0xF1)
        assert events_after_first == first.report.total_cycles
        assert len(sink) > events_after_first  # caller owns the lifecycle

    def test_legacy_trace_resets_per_multiplication(self):
        accelerator = ModSRAMAccelerator(small_config(), trace=True)
        accelerator.multiply(0x2A, 0x51, 0xF1)
        second = accelerator.multiply(0x2B, 0x51, 0xF1)
        assert len(second.trace) == second.report.total_cycles


class TestSinkProtocol:
    def test_null_sink_is_inactive(self):
        assert NullTraceSink().active is False
        assert NULL_SINK.active is False

    def test_execution_trace_satisfies_the_protocol(self):
        assert isinstance(ExecutionTrace(), TraceSink)
        assert isinstance(NullTraceSink(), TraceSink)
        assert ExecutionTrace(enabled=False).active is False
        assert ExecutionTrace(enabled=True).active is True

    def test_custom_sink_receives_events_in_cycle_order(self):
        class Collector:
            active = True

            def __init__(self):
                self.cycles = []

            def record(self, event):
                self.cycles.append(event.cycle)

        collector = Collector()
        accelerator = ModSRAMAccelerator(small_config(), trace_sink=collector)
        result = accelerator.multiply(0x2A, 0x51, 0xF1)
        assert collector.cycles == list(range(result.report.total_cycles))
