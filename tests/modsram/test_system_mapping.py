"""Tests for the system-level macro-pool model and the ZKP kernel mapping."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, OperandRangeError
from repro.modsram import ModSRAMConfig, ModSRAMSystem, PAPER_CONFIG, Workload
from repro.zkp import (
    map_zkp_kernels,
    msm_workload,
    ntt_distinct_twiddle_multiplications,
    ntt_operation_counts,
    ntt_workload,
)


class TestWorkload:
    def test_defaults_are_conservative(self):
        workload = Workload(name="w", multiplications=100)
        assert workload.effective_multiplicand_changes == 100

    def test_explicit_reuse(self):
        workload = Workload(name="w", multiplications=100, multiplicand_changes=7)
        assert workload.effective_multiplicand_changes == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Workload(name="w", multiplications=-1)
        with pytest.raises(ConfigurationError):
            Workload(name="w", multiplications=10, multiplicand_changes=11)


class TestModSRAMSystem:
    def test_single_macro_projection(self):
        system = ModSRAMSystem(1)
        workload = Workload(name="batch", multiplications=1000, multiplicand_changes=1)
        projection = system.project(workload)
        assert projection.cycles_per_multiplication == 767
        assert projection.total_cycles_per_macro == 1000 * 767 + ModSRAMSystem.LUT_REFILL_CYCLES
        assert projection.latency_ms == pytest.approx(
            projection.total_cycles_per_macro / (PAPER_CONFIG.frequency_mhz * 1e3)
        )
        assert projection.throughput_mops > 0
        assert projection.area_mm2 == pytest.approx(0.052, abs=0.003)

    def test_macro_count_scales_throughput(self):
        workload = Workload(name="batch", multiplications=10000, multiplicand_changes=0)
        one = ModSRAMSystem(1).project(workload)
        eight = ModSRAMSystem(8).project(workload)
        assert eight.latency_ms < one.latency_ms / 7.5
        assert eight.throughput_mops > 7.5 * one.throughput_mops
        assert eight.area_mm2 == pytest.approx(8 * one.area_mm2)

    def test_empty_workload(self):
        projection = ModSRAMSystem(4).project(Workload(name="idle", multiplications=0))
        assert projection.latency_ms == 0.0
        assert projection.throughput_mops == 0.0

    def test_avoided_traffic_scales_with_multiplications(self):
        workload = Workload(name="batch", multiplications=1000)
        projection = ModSRAMSystem(2).project(workload)
        assert projection.avoided_register_writes == 1000 * 20
        assert projection.avoided_memory_accesses == 1000 * 5

    def test_bitwidth_mismatch_rejected(self):
        system = ModSRAMSystem(1, ModSRAMConfig().with_bitwidth(128))
        with pytest.raises(ConfigurationError):
            system.project(Workload(name="w", multiplications=1, bitwidth=256))

    def test_macros_for_latency(self):
        workload = Workload(name="batch", multiplications=100000, multiplicand_changes=0)
        single_latency = ModSRAMSystem(1).project(workload).latency_ms
        needed = ModSRAMSystem(1).macros_for_latency(workload, single_latency / 10)
        assert needed >= 10
        assert ModSRAMSystem(needed).project(workload).latency_ms <= single_latency / 10
        assert ModSRAMSystem(1).macros_for_latency(workload, single_latency * 2) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModSRAMSystem(0)
        with pytest.raises(ConfigurationError):
            ModSRAMSystem(1).macros_for_latency(
                Workload(name="w", multiplications=1), 0
            )

    def test_projection_as_dict(self):
        projection = ModSRAMSystem(1).project(Workload(name="w", multiplications=10))
        data = projection.as_dict()
        assert data["macros"] == 1
        assert data["cycles_per_multiplication"] == 767


class TestZkpKernelMapping:
    def test_ntt_twiddle_reuse_count(self):
        assert ntt_distinct_twiddle_multiplications(8) == 7
        assert ntt_distinct_twiddle_multiplications(2**15) == 2**15 - 1
        with pytest.raises(OperandRangeError):
            ntt_distinct_twiddle_multiplications(12)

    def test_ntt_workload_reuses_luts(self):
        workload = ntt_workload(1024, 256)
        counts = ntt_operation_counts(1024, 256)
        assert workload.multiplications == counts.modular_multiplications
        assert workload.multiplicand_changes == 1023
        # Reuse is substantial: far fewer refills than multiplications.
        assert workload.multiplicand_changes < workload.multiplications / 4

    def test_msm_workload_has_no_reuse(self):
        workload = msm_workload(1024, 256, window_bits=8)
        assert workload.multiplicand_changes is None
        assert workload.name == "msm-2^10"

    def test_paper_operating_point_mapping(self):
        mapping = map_zkp_kernels(vector_size=2**15, macros=16)
        assert mapping.macros == 16
        assert mapping.ntt.workload.name == "ntt-2^15"
        # The MSM dominates: orders of magnitude more work than the NTT.
        assert mapping.msm.total_cycles_per_macro > 50 * mapping.ntt.total_cycles_per_macro
        assert mapping.msm.latency_ms > mapping.ntt.latency_ms
        rows = mapping.as_rows()
        assert len(rows) == 2 and rows[0][0].startswith("ntt")

    def test_ntt_latency_benefits_from_lut_reuse(self):
        """Twiddle-aware scheduling beats the no-reuse assumption."""
        reuse_aware = ModSRAMSystem(1).project(ntt_workload(4096, 256))
        no_reuse = ModSRAMSystem(1).project(
            Workload(
                name="ntt-no-reuse",
                multiplications=ntt_operation_counts(4096, 256).modular_multiplications,
            )
        )
        assert reuse_aware.total_cycles_per_macro < no_reuse.total_cycles_per_macro
