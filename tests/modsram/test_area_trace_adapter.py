"""Tests for the area model, the execution trace and the multiplier adapter."""

from __future__ import annotations

import pytest

from repro.core import available_multipliers, create_multiplier
from repro.errors import ConfigurationError
from repro.modsram import (
    AreaModel,
    AreaParameters,
    CycleEvent,
    ExecutionTrace,
    ModSRAMConfig,
    ModSRAMMultiplier,
    PAPER_AREA_MM2,
    PAPER_AREA_OVERHEAD_PERCENT,
    PAPER_BREAKDOWN_PERCENT,
    PAPER_CONFIG,
    Phase,
)


class TestAreaModel:
    @pytest.fixture()
    def model(self) -> AreaModel:
        return AreaModel(PAPER_CONFIG)

    def test_total_matches_paper_within_five_percent(self, model):
        total = model.total_mm2()
        assert abs(total - PAPER_AREA_MM2) / PAPER_AREA_MM2 < 0.05

    def test_breakdown_matches_figure5_within_two_points(self, model):
        percentages = model.breakdown().percentages
        for component, paper_share in PAPER_BREAKDOWN_PERCENT.items():
            assert abs(percentages[component] - paper_share) < 2.0, component

    def test_overhead_matches_paper_within_four_points(self, model):
        assert abs(model.overhead_percent() - PAPER_AREA_OVERHEAD_PERCENT) < 4.0

    def test_array_dominates_the_macro(self, model):
        breakdown = model.breakdown()
        assert breakdown.sram_array_mm2 > 0.5 * breakdown.total_mm2

    def test_breakdown_as_dict_totals(self, model):
        data = model.breakdown().as_dict()
        assert data["total_mm2"] == pytest.approx(
            data["sram_array_mm2"]
            + data["in_memory_circuit_mm2"]
            + data["near_memory_circuit_mm2"]
            + data["decoder_mm2"]
        )

    def test_baseline_sram_is_smaller_than_the_macro(self, model):
        assert model.baseline_sram_mm2() < model.total_mm2()

    def test_area_scales_with_array_size(self):
        small = AreaModel(ModSRAMConfig(rows=32)).total_mm2()
        large = AreaModel(ModSRAMConfig(rows=64)).total_mm2()
        assert large > small

    def test_technology_scaling_is_quadratic(self):
        params_28 = AreaParameters().scaled_to(28)
        assert params_28.cell_area_um2 == pytest.approx(
            AreaParameters().cell_area_um2 * (28 / 65) ** 2
        )
        config_28 = ModSRAMConfig(technology_nm=28)
        assert AreaModel(config_28).total_mm2() < AreaModel(PAPER_CONFIG).total_mm2()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AreaParameters(cell_area_um2=0)
        with pytest.raises(ConfigurationError):
            AreaParameters().scaled_to(0)


class TestExecutionTrace:
    def test_record_and_query(self):
        trace = ExecutionTrace()
        trace.record(CycleEvent(cycle=0, phase=Phase.IMC_RADIX4, iteration=0, rows_read=(1, 2, 3)))
        trace.record(CycleEvent(cycle=1, phase=Phase.WRITEBACK_SUM, iteration=0, rows_written=(4,)))
        trace.record(CycleEvent(cycle=2, phase=Phase.FINALIZE))
        assert len(trace) == 3
        assert trace.compute_access_count() == 1
        assert trace.writeback_count() == 1
        assert len(trace.iteration_events(0)) == 2
        assert trace.phase_histogram()["imc-radix4"] == 1

    def test_disabled_trace_records_nothing(self):
        trace = ExecutionTrace(enabled=False)
        trace.record(CycleEvent(cycle=0, phase=Phase.FINALIZE))
        assert len(trace) == 0

    def test_render_limit_and_filter(self):
        trace = ExecutionTrace()
        for cycle in range(10):
            trace.record(CycleEvent(cycle=cycle, phase=Phase.PRECOMPUTE))
        text = trace.render(limit=3)
        assert "more cycles" in text
        assert text.count("\n") == 3
        filtered = trace.render(phases=[Phase.FINALIZE])
        assert filtered == ""

    def test_describe_mentions_rows_and_digit(self):
        event = CycleEvent(
            cycle=5,
            phase=Phase.IMC_RADIX4,
            iteration=2,
            rows_read=(1, 2, 3),
            digit=-2,
            overflow_index=None,
            note="hello",
        )
        text = event.describe()
        assert "imc-radix4" in text and "digit -2" in text and "hello" in text

    def test_clear(self):
        trace = ExecutionTrace()
        trace.record(CycleEvent(cycle=0, phase=Phase.FINALIZE))
        trace.clear()
        assert len(trace) == 0

    def test_phase_classification(self):
        assert Phase.IMC_RADIX4.is_compute_access()
        assert Phase.IMC_OVERFLOW.is_compute_access()
        assert not Phase.FINALIZE.is_compute_access()
        assert Phase.WRITEBACK_CARRY.is_writeback()
        assert not Phase.IMC_RADIX4.is_writeback()


class TestModSRAMMultiplierAdapter:
    def test_registered_in_the_registry(self):
        assert "modsram" in available_multipliers()
        assert isinstance(create_multiplier("modsram"), ModSRAMMultiplier)

    def test_matches_oracle(self, rng):
        multiplier = ModSRAMMultiplier()
        modulus = 65521
        for _ in range(5):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            assert multiplier.multiply(a, b, modulus) == (a * b) % modulus

    def test_reports_accumulate(self, rng):
        multiplier = ModSRAMMultiplier()
        modulus = 65521
        multiplier.multiply(3, 7, modulus)
        multiplier.multiply(5, 7, modulus)
        assert len(multiplier.reports) == 2
        assert multiplier.total_iteration_cycles() == sum(
            report.iteration_cycles for report in multiplier.reports
        )
        assert multiplier.lut_reuse_rate() == pytest.approx(0.5)

    def test_macro_is_provisioned_per_bitwidth(self):
        multiplier = ModSRAMMultiplier()
        multiplier.multiply(3, 7, 65521)
        multiplier.multiply(3, 7, (1 << 24) - 3)
        assert set(multiplier._accelerators) == {16, 24}

    def test_explicit_configuration_is_respected(self):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(16)
        multiplier = ModSRAMMultiplier(config)
        multiplier.multiply(3, 7, 65521)
        assert multiplier.accelerator_for(65521).config is config

    def test_cycles_matches_schedule(self):
        multiplier = ModSRAMMultiplier()
        assert multiplier.cycles(256) == 773  # full-range default
        paper = ModSRAMMultiplier(PAPER_CONFIG)
        assert paper.cycles(256) == 767

    def test_lut_reuse_rate_empty(self):
        assert ModSRAMMultiplier().lut_reuse_rate() == 0.0
