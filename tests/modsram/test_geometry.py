"""MacroGeometry: validation, paper-constant identity, banked algebra."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.modsram.analytical import AnalyticalCostModel, AnalyticalModSRAM
from repro.modsram.config import PAPER_CONFIG, ModSRAMConfig
from repro.modsram.geometry import SUPPORTED_RADICES, MacroGeometry


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs,key",
        (
            ({"rows": 0}, "rows"),
            ({"rows": 17}, "rows"),  # below the radix-4 memory-map floor
            ({"columns": 2}, "columns"),
            ({"banks": 0}, "banks"),
            ({"rows": 64, "banks": 7}, "banks"),  # does not divide rows
            ({"radix": 3}, "radix"),
            ({"radix": 32}, "radix"),
            ({"overflow_rows": 1}, "overflow_rows"),
            ({"rows": True}, "rows"),  # bools are not integers here
            ({"columns": 25.5}, "columns"),
        ),
    )
    def test_bad_fields_raise_naming_the_field(self, kwargs, key):
        with pytest.raises(ConfigurationError, match=f"'{key}'|{key}"):
            MacroGeometry(**kwargs)

    def test_every_supported_radix_constructs(self):
        for radix in SUPPORTED_RADICES:
            geometry = MacroGeometry(rows=64, radix=radix)
            assert geometry.radix_rows == radix + 1
            assert geometry.computed_radix_entries == radix - 1

    def test_minimum_rows_scale_with_the_luts(self):
        assert MacroGeometry().minimum_rows == 18
        assert MacroGeometry(radix=16, rows=40).minimum_rows == 30

    def test_apply_to_rejects_narrow_arrays(self):
        geometry = MacroGeometry(rows=64, columns=64)
        with pytest.raises(ConfigurationError, match="'columns'"):
            geometry.apply_to(ModSRAMConfig())  # 256-bit operands

    def test_as_dict_round_trips(self):
        geometry = MacroGeometry(rows=32, columns=128, banks=2)
        assert MacroGeometry(**geometry.as_dict()) == geometry


class TestPaperConstantIdentity:
    """The default geometry reproduces every pre-refactor closed form."""

    def test_cost_model_numbers_are_unchanged(self):
        model = AnalyticalCostModel(PAPER_CONFIG)
        assert model.load_cycles() == 6
        assert model.lut_fill_cycles() == 33
        assert model.lut_fill_cycles(reused=True) == 0
        assert model.radix4_refill_cycles() == 11
        assert model.iteration_cycles() == 767
        assert model.total_cycles() == 809
        assert model.report().iteration_cycles == 767

    def test_explicit_default_geometry_is_identical(self):
        implicit = AnalyticalCostModel(PAPER_CONFIG)
        explicit = AnalyticalCostModel(
            PAPER_CONFIG, MacroGeometry.from_config(PAPER_CONFIG)
        )
        assert implicit.report().as_dict() == explicit.report().as_dict()
        assert (
            implicit.array_stats().as_dict() == explicit.array_stats().as_dict()
        )

    @pytest.mark.parametrize("bits", (16, 33, 64, 128, 256))
    @pytest.mark.parametrize("extend", (False, True))
    def test_radix4_iterations_match_the_config_property(self, bits, extend):
        config = ModSRAMConfig(extend_for_full_range=extend).with_bitwidth(bits)
        geometry = MacroGeometry.from_config(config)
        assert geometry.iterations(bits, extend) == config.iterations


class TestBankedAlgebra:
    def test_banking_shortens_loads_and_fills_only(self):
        flat = AnalyticalCostModel(PAPER_CONFIG)
        banked = AnalyticalCostModel(
            PAPER_CONFIG, MacroGeometry(rows=64, columns=256, banks=4)
        )
        assert banked.load_cycles() == 3  # ceil(5/4) + 1
        assert banked.lut_fill_cycles() == 24  # 20 compute + ceil(13/4)
        assert banked.iteration_cycles() == flat.iteration_cycles()
        assert banked.finalize_cycles() == flat.finalize_cycles()
        assert banked.total_cycles() < flat.total_cycles()

    def test_banking_never_changes_the_access_profile(self):
        flat = AnalyticalCostModel(PAPER_CONFIG)
        banked = AnalyticalCostModel(
            PAPER_CONFIG, MacroGeometry(rows=64, columns=256, banks=8)
        )
        assert flat.array_stats().as_dict() == banked.array_stats().as_dict()

    def test_write_burst_cycles(self):
        geometry = MacroGeometry(rows=64, banks=4)
        assert geometry.write_burst_cycles(0) == 0
        assert geometry.write_burst_cycles(1) == 1
        assert geometry.write_burst_cycles(4) == 1
        assert geometry.write_burst_cycles(5) == 2


class TestHigherRadixAlgebra:
    def test_radix8_shortens_the_loop_and_grows_the_lut(self):
        radix4 = AnalyticalCostModel(PAPER_CONFIG)
        radix8 = AnalyticalCostModel(
            PAPER_CONFIG, MacroGeometry(rows=64, columns=256, radix=8)
        )
        assert radix8.iterations < radix4.iterations
        assert radix8.lut_fill_cycles() > radix4.lut_fill_cycles()

    def test_executable_tier_rejects_non_radix4_geometry(self):
        with pytest.raises(ConfigurationError, match="radix"):
            AnalyticalModSRAM(
                PAPER_CONFIG, MacroGeometry(rows=64, columns=256, radix=8)
            )

    def test_cost_model_rejects_narrow_geometry(self):
        with pytest.raises(ConfigurationError, match="'columns'"):
            AnalyticalCostModel(
                ModSRAMConfig(), MacroGeometry(rows=64, columns=64)
            )
