"""Tests for the cycle-level ModSRAM accelerator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OperandRangeError
from repro.modsram import (
    ModSRAMAccelerator,
    ModSRAMConfig,
    MultiplicationResult,
    PAPER_CONFIG,
    Phase,
)

BN254_P = 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47
SECP256K1_P = 2**256 - 2**32 - 977


def small_accelerator(bitwidth: int = 16, full_range: bool = True) -> ModSRAMAccelerator:
    config = ModSRAMConfig(extend_for_full_range=full_range).with_bitwidth(bitwidth)
    return ModSRAMAccelerator(config)


class TestFunctionalCorrectness:
    def test_small_known_product(self):
        accelerator = small_accelerator()
        result = accelerator.multiply(1234, 5678, 65521)
        assert result.product == (1234 * 5678) % 65521

    def test_zero_and_identity(self):
        accelerator = small_accelerator()
        assert accelerator.multiply(0, 999, 65521).product == 0
        assert accelerator.multiply(1, 999, 65521).product == 999

    def test_maximal_operands(self):
        accelerator = small_accelerator()
        assert accelerator.multiply(65520, 65520, 65521).product == 1

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_matches_oracle_16_bit(self, data):
        modulus = data.draw(st.integers(1 << 14, (1 << 16) - 1).map(lambda v: v | 1))
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        accelerator = small_accelerator()
        assert accelerator.multiply(a, b, modulus).product == (a * b) % modulus

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_matches_oracle_48_bit(self, data):
        modulus = data.draw(st.integers(1 << 46, (1 << 48) - 1).map(lambda v: v | 1))
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        accelerator = small_accelerator(48)
        assert accelerator.multiply(a, b, modulus).product == (a * b) % modulus

    def test_bn254_on_paper_configuration(self, rng):
        accelerator = ModSRAMAccelerator(PAPER_CONFIG)
        a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
        result = accelerator.multiply(a, b, BN254_P)
        assert result.product == (a * b) % BN254_P

    def test_secp256k1_on_full_range_configuration(self, rng):
        accelerator = ModSRAMAccelerator(ModSRAMConfig())
        a, b = rng.randrange(SECP256K1_P), rng.randrange(SECP256K1_P)
        result = accelerator.multiply(a, b, SECP256K1_P)
        assert result.product == (a * b) % SECP256K1_P


class TestCycleCounts:
    def test_paper_headline_767_cycles(self, rng):
        """The central claim: 767 main-loop cycles for one 256-bit multiply."""
        accelerator = ModSRAMAccelerator(PAPER_CONFIG)
        a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
        report = accelerator.multiply(a, b, BN254_P).report
        assert report.iterations == 128
        assert report.iteration_cycles == 767
        assert report.extra_overflow_folds == 0

    def test_cycle_count_is_data_independent(self):
        accelerator = small_accelerator()
        cycles = set()
        for a, b in ((0, 0), (1, 1), (65520, 65520), (12345, 54321)):
            cycles.add(accelerator.multiply(a, b, 65521).report.iteration_cycles)
        assert len(cycles) == 1

    def test_cycle_count_matches_schedule_formula(self):
        for bitwidth in (8, 16, 24, 32):
            accelerator = small_accelerator(bitwidth, full_range=False)
            modulus = (1 << bitwidth) - 5 if bitwidth != 24 else (1 << 24) - 3
            modulus |= 1
            a = (modulus - 3) >> 1  # keep the top bit clear for paper mode
            result = accelerator.multiply(a, 3, modulus)
            assert result.report.iteration_cycles == 3 * bitwidth - 1
            assert (
                result.report.iteration_cycles
                == accelerator.expected_iteration_cycles()
            )

    def test_full_range_configuration_costs_six_more_cycles(self):
        paper = small_accelerator(16, full_range=False)
        full = small_accelerator(16, full_range=True)
        a, b, modulus = 0x3FFF, 0x7ABC, 0xFFF1
        assert (
            full.multiply(a, b, modulus).report.iteration_cycles
            - paper.multiply(a, b, modulus).report.iteration_cycles
            == 6
        )

    def test_report_totals_and_latency(self):
        accelerator = small_accelerator()
        report = accelerator.multiply(11, 13, 65521).report
        assert report.total_cycles == (
            report.load_cycles
            + report.precompute_cycles
            + report.iteration_cycles
            + report.finalize_cycles
        )
        assert report.latency_us == pytest.approx(
            report.iteration_cycles / report.frequency_mhz
        )
        assert report.as_dict()["iteration_cycles"] == report.iteration_cycles

    def test_lut_reuse_skips_precompute_cycles(self):
        accelerator = small_accelerator()
        first = accelerator.multiply(111, 222, 65521).report
        second = accelerator.multiply(333, 222, 65521).report
        assert not first.lut_reused
        assert second.lut_reused
        assert first.precompute_cycles > 0
        assert second.precompute_cycles == 0
        third = accelerator.multiply(333, 223, 65521).report
        assert not third.lut_reused


class TestOperandValidation:
    def test_operands_must_be_reduced(self):
        accelerator = small_accelerator()
        with pytest.raises(OperandRangeError):
            accelerator.multiply(65521, 1, 65521)
        with pytest.raises(OperandRangeError):
            accelerator.multiply(-1, 1, 65521)

    def test_modulus_must_fit_the_macro(self):
        accelerator = small_accelerator(16)
        with pytest.raises(OperandRangeError):
            accelerator.multiply(1, 1, (1 << 17) - 1)

    def test_modulus_must_not_be_much_smaller_than_the_macro(self):
        accelerator = small_accelerator(16)
        with pytest.raises(OperandRangeError):
            accelerator.multiply(1, 1, 97)

    def test_paper_mode_rejects_top_bit_set_multiplier(self):
        accelerator = small_accelerator(16, full_range=False)
        with pytest.raises(OperandRangeError):
            accelerator.multiply(0x8000, 1, 0xFFF1)

    def test_tiny_modulus_rejected(self):
        accelerator = small_accelerator()
        with pytest.raises(OperandRangeError):
            accelerator.multiply(0, 0, 2)


class TestHardwareActivity:
    def test_array_statistics_reflect_the_schedule(self):
        accelerator = small_accelerator()
        accelerator.multiply(11, 13, 65521)
        iterations = accelerator.config.iterations
        stats = accelerator.array.stats
        # Two logic-SA accesses per iteration.
        assert stats.compute_reads == 2 * iterations
        # Every compute access activates exactly three rows.
        assert stats.rows_activated >= 3 * stats.compute_reads

    def test_no_read_disturb_on_the_8t_array(self):
        accelerator = small_accelerator()
        accelerator.multiply(11, 13, 65521)
        assert accelerator.array.stats.read_disturb_events == 0

    def test_counter_tracks_imc_accesses_and_writes(self):
        accelerator = small_accelerator()
        accelerator.multiply(11, 13, 65521)
        counts = accelerator.counter.as_dict()
        assert counts["imc_access"] == 2 * accelerator.config.iterations
        assert counts["memory_write"] > 0
        assert counts["modmul"] == 1

    def test_energy_report_is_positive(self):
        accelerator = small_accelerator()
        accelerator.multiply(11, 13, 65521)
        assert accelerator.energy_report().total_pj > 0

    def test_utilization_shortcut(self):
        accelerator = ModSRAMAccelerator(PAPER_CONFIG)
        assert accelerator.utilization().lut_rows == 13

    def test_multiply_many_reuses_luts(self):
        accelerator = small_accelerator()
        results = accelerator.multiply_many([(1, 7), (2, 7), (3, 7)], 65521)
        assert [r.report.lut_reused for r in results] == [False, True, True]
        assert all(
            r.product == (a * 7) % 65521
            for r, (a, _) in zip(results, [(1, 7), (2, 7), (3, 7)])
        )


class TestTrace:
    def test_trace_disabled_by_default(self):
        accelerator = small_accelerator()
        result = accelerator.multiply(5, 7, 65521)
        assert len(result.trace) == 0

    def test_trace_records_every_cycle(self):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(8)
        accelerator = ModSRAMAccelerator(config, trace=True)
        result = accelerator.multiply(0x2A, 0x51, 0xF1)
        report = result.report
        assert len(result.trace) == report.total_cycles
        histogram = result.trace.phase_histogram()
        assert histogram[Phase.IMC_RADIX4.value] == report.iterations
        assert histogram[Phase.IMC_OVERFLOW.value] == report.iterations

    def test_trace_compute_accesses_use_three_rows(self):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(8)
        accelerator = ModSRAMAccelerator(config, trace=True)
        trace = accelerator.multiply(0x2A, 0x51, 0xF1).trace
        for event in trace.phase_events(Phase.IMC_RADIX4):
            assert len(event.rows_read) == 3
        for event in trace.phase_events(Phase.IMC_OVERFLOW):
            assert len(event.rows_read) == 3

    def test_last_iteration_elides_the_carry_writeback(self):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(8)
        accelerator = ModSRAMAccelerator(config, trace=True)
        trace = accelerator.multiply(0x2A, 0x51, 0xF1).trace
        last_iteration = accelerator.config.iterations - 1
        events = trace.iteration_events(last_iteration)
        phases = [event.phase for event in events]
        assert phases.count(Phase.WRITEBACK_CARRY) == 1
        assert phases.count(Phase.WRITEBACK_SUM) == 2
