"""Fault-injection tests: what happens when the analogue assumptions break.

The correctness of ModSRAM rests on the logic-SA resolving four bitline
levels reliably.  These tests inject the two failure modes a silicon bring-up
would worry about — insufficient sensing margin and excessive bitline noise —
and check that the behavioural model *detects* them (raising
``SenseMarginError``) instead of silently producing a wrong product, and that
the disturb-protection of the 6T/8T cell choice is enforced.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError, ReadDisturbError, SenseMarginError
from repro.modsram import ModSRAMAccelerator, ModSRAMConfig
from repro.sram import (
    LogicSenseAmpModule,
    SenseAmpParameters,
    SixTransistorCell,
    SramArray,
)


class TestSenseMarginFaults:
    def test_degenerate_margin_is_rejected_at_configuration_time(self):
        """An offset of half a discharge step leaves no margin at all."""
        with pytest.raises(ConfigurationError):
            SenseAmpParameters(discharge_per_cell_v=0.25, sense_offset_v=0.125)

    def test_huge_noise_triggers_margin_errors_during_multiplication(self):
        """With 80 mV of bitline noise the macro cannot run reliably.

        The model raises rather than returning a silently wrong product:
        every logic-SA comparison whose noisy differential falls inside the
        amplifier offset is flagged.
        """
        noisy_sense = SenseAmpParameters(noise_sigma_v=0.08, sense_offset_v=0.02)
        config = dataclasses.replace(
            ModSRAMConfig().with_bitwidth(32), sense=noisy_sense
        )
        accelerator = ModSRAMAccelerator(config)
        modulus = (1 << 32) - 5
        with pytest.raises(SenseMarginError):
            # A couple of hundred noisy comparisons per access make at least
            # one marginal decision virtually certain over a whole multiply.
            for _ in range(3):
                accelerator.multiply(0x1234_5678, 0x0FED_CBA9, modulus)

    def test_moderate_noise_far_from_references_is_tolerated(self):
        """Noise well below the margin does not disturb the computation."""
        mild_sense = SenseAmpParameters(noise_sigma_v=0.002, sense_offset_v=0.02)
        config = dataclasses.replace(
            ModSRAMConfig().with_bitwidth(16), sense=mild_sense
        )
        accelerator = ModSRAMAccelerator(config)
        result = accelerator.multiply(1234, 5678, 65521)
        assert result.product == (1234 * 5678) % 65521

    def test_logic_sa_flags_marginal_column_directly(self):
        """A single marginal comparison is detected at the module level."""
        parameters = SenseAmpParameters(noise_sigma_v=0.2, sense_offset_v=0.02)
        module = LogicSenseAmpModule(columns=4, parameters=parameters)
        saw_margin_error = False
        for _ in range(200):
            try:
                module.column_level(2)
            except SenseMarginError:
                saw_margin_error = True
                break
        assert saw_margin_error


class TestReadDisturbFaults:
    def test_6t_array_cannot_run_the_logic_sa_access_pattern(self):
        """The design requires the 8T cell: 6T multi-row reads are disturbed."""
        array = SramArray(rows=8, cols=8, cell=SixTransistorCell)
        array.write_row(0, 0b1010)
        array.write_row(1, 0b0110)
        array.write_row(2, 0b0011)
        with pytest.raises(ReadDisturbError):
            array.activate_rows([0, 1, 2])

    def test_configuration_layer_blocks_6t_macros(self):
        """Mis-configuring the macro with a 6T cell is caught before any access."""
        with pytest.raises(ConfigurationError):
            ModSRAMConfig(cell=SixTransistorCell)
