"""Tests for the ModSRAM configuration and memory map."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, MemoryMapError
from repro.modsram import PAPER_CONFIG, MemoryMap, ModSRAMConfig
from repro.sram import SixTransistorCell


class TestConfig:
    def test_paper_configuration(self):
        assert PAPER_CONFIG.bitwidth == 256
        assert PAPER_CONFIG.rows == 64
        assert PAPER_CONFIG.columns == 256
        assert PAPER_CONFIG.technology_nm == 65
        assert PAPER_CONFIG.iterations == 128
        assert PAPER_CONFIG.expected_iteration_cycles == 767

    def test_default_configuration_is_full_range(self):
        config = ModSRAMConfig()
        assert config.extend_for_full_range
        assert config.iterations == 129
        assert config.expected_iteration_cycles == 773

    def test_register_width_is_n_plus_one(self):
        assert ModSRAMConfig().register_width == 257

    def test_lut_and_intermediate_rows(self):
        config = ModSRAMConfig()
        assert config.lut_rows == 13
        assert config.intermediate_rows == 2
        assert config.operand_capacity == 49
        assert config.minimum_rows == 18

    def test_frequency_comes_from_timing_model(self):
        assert ModSRAMConfig().frequency_mhz == pytest.approx(420.0, rel=0.02)

    def test_with_bitwidth_resizes_columns(self):
        config = ModSRAMConfig().with_bitwidth(64)
        assert config.bitwidth == 64
        assert config.columns == 64
        assert config.rows == 64

    def test_paper_mode_helper(self):
        assert not ModSRAMConfig().paper_mode().extend_for_full_range

    def test_columns_must_cover_bitwidth(self):
        with pytest.raises(ConfigurationError):
            ModSRAMConfig(bitwidth=256, columns=128)

    def test_rows_must_fit_memory_map(self):
        with pytest.raises(ConfigurationError):
            ModSRAMConfig(rows=17)

    def test_6t_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            ModSRAMConfig(cell=SixTransistorCell)

    def test_tiny_bitwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            ModSRAMConfig(bitwidth=2, columns=2)

    def test_odd_bitwidth_iteration_count(self):
        config = ModSRAMConfig(bitwidth=255, columns=256)
        assert config.iterations == 128


class TestMemoryMap:
    @pytest.fixture()
    def memory_map(self) -> MemoryMap:
        return MemoryMap(PAPER_CONFIG)

    def test_operand_rows(self, memory_map):
        assert memory_map.multiplier_row == 0
        assert memory_map.multiplicand_row == 1
        assert memory_map.modulus_row == 2
        assert len(memory_map.operand_region) == 49

    def test_lut_rows_count_matches_paper(self, memory_map):
        """The paper: radix-4 and overflow LUTs take 13 word lines in total."""
        assert len(memory_map.lut_rows) == 13
        assert len(memory_map.radix4_rows) == 5
        assert len(memory_map.overflow_rows) == 8

    def test_all_regions_are_disjoint(self, memory_map):
        regions = (
            set(memory_map.operand_region)
            | {memory_map.sum_row, memory_map.carry_row}
            | set(memory_map.lut_rows)
        )
        assert len(regions) == 49 + 2 + 13
        assert max(regions) == PAPER_CONFIG.rows - 1

    def test_radix4_row_lookup(self, memory_map):
        rows = {memory_map.radix4_row(d) for d in (0, 1, 2, -1, -2)}
        assert len(rows) == 5
        with pytest.raises(MemoryMapError):
            memory_map.radix4_row(3)

    def test_overflow_row_lookup(self, memory_map):
        assert memory_map.overflow_row(0) == memory_map.overflow_rows[0]
        assert memory_map.overflow_row(7) == memory_map.overflow_rows[7]
        with pytest.raises(MemoryMapError):
            memory_map.overflow_row(8)
        with pytest.raises(MemoryMapError):
            memory_map.overflow_row(-1)

    def test_operand_slot_lookup(self, memory_map):
        assert memory_map.operand_row(0) == 0
        assert memory_map.operand_row(48) == 48
        with pytest.raises(MemoryMapError):
            memory_map.operand_row(49)

    def test_utilization_matches_figure6(self, memory_map):
        """Figure 6: 49 operand-capable rows, 2 intermediates, 13 LUT rows."""
        utilization = memory_map.utilization()
        assert utilization.total_rows == 64
        assert utilization.operand_capacity == 49
        assert utilization.operand_rows_used == 3
        assert utilization.intermediate_rows == 2
        assert utilization.lut_rows == 13
        assert utilization.rows_used == 18
        assert utilization.free_rows == 46
        assert utilization.as_dict()["lut_rows"] == 13

    def test_utilization_with_point_addition_operands(self, memory_map):
        utilization = memory_map.utilization(operand_rows_used=12)
        assert utilization.rows_used == 12 + 2 + 13

    def test_utilization_bounds_checked(self, memory_map):
        with pytest.raises(MemoryMapError):
            memory_map.utilization(operand_rows_used=2)
        with pytest.raises(MemoryMapError):
            memory_map.utilization(operand_rows_used=50)

    def test_describe_contains_every_region(self, memory_map):
        description = memory_map.describe()
        assert description["sum_row"] == memory_map.sum_row
        assert len(description["overflow_rows"]) == 8

    def test_minimum_geometry_still_maps(self):
        config = ModSRAMConfig(bitwidth=16, columns=16, rows=18)
        memory_map = MemoryMap(config)
        assert len(memory_map.operand_region) == 3
        assert len(memory_map.lut_rows) == 13
