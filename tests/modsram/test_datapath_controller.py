"""Tests for the near-memory datapath and the controller FSM."""

from __future__ import annotations

import pytest

from repro.errors import ControllerError
from repro.modsram import Controller, ControllerState, ModSRAMConfig, NearMemoryDatapath
from repro.modsram.trace import Phase


@pytest.fixture()
def datapath() -> NearMemoryDatapath:
    return NearMemoryDatapath(ModSRAMConfig(bitwidth=16, columns=16))


class TestDatapathRegisters:
    def test_load_multiplier(self, datapath):
        datapath.load_multiplier(0xBEEF)
        assert datapath.multiplier == 0xBEEF
        assert datapath.stats.register_writes == 1
        assert datapath.stats.register_bits_written == 16

    def test_load_multiplier_width_checked(self, datapath):
        with pytest.raises(ControllerError):
            datapath.load_multiplier(1 << 16)

    def test_latch_imc_result_counts_two_register_writes(self, datapath):
        datapath.latch_imc_result(0x1F, 0x2A)
        assert datapath.sum_latch == 0x1F
        assert datapath.carry_latch == 0x2A
        assert datapath.stats.register_writes == 2

    def test_msb_extensions(self, datapath):
        datapath.set_accumulator_msbs(1, 0)
        assert datapath.sum_msb == 1
        assert datapath.carry_msb == 0
        with pytest.raises(ControllerError):
            datapath.set_accumulator_msbs(2, 0)

    def test_overflow_flipflops(self, datapath):
        datapath.set_shift_overflow(5)
        datapath.set_pending_carry_out(1)
        assert datapath.shift_overflow == 5
        assert datapath.pending_carry_out == 1
        assert datapath.stats.overflow_updates == 1
        with pytest.raises(ControllerError):
            datapath.set_shift_overflow(-1)
        with pytest.raises(ControllerError):
            datapath.set_pending_carry_out(2)

    def test_overflow_index_combines_all_sources(self, datapath):
        datapath.set_shift_overflow(3)
        datapath.set_pending_carry_out(1)
        assert datapath.overflow_index(1) == 3 + 1 + 4
        with pytest.raises(ControllerError):
            datapath.overflow_index(2)

    def test_reset_clears_everything(self, datapath):
        datapath.load_multiplier(5)
        datapath.set_shift_overflow(2)
        datapath.reset()
        assert datapath.multiplier == 0
        assert datapath.shift_overflow == 0
        assert datapath.stats.register_writes == 0

    def test_flipflop_count_tracks_register_file_size(self, datapath):
        # multiplier (16) + two redundant registers (17 each) + extensions.
        assert datapath.flipflop_count() == 16 + 2 * 17 + 6

    def test_stats_as_dict(self, datapath):
        datapath.load_multiplier(1)
        assert datapath.stats.as_dict()["register_writes"] == 1


class TestBoothWindow:
    def test_window_matches_reference_encoder(self, datapath):
        from repro.core.booth import booth_digits_radix4

        value = 0xB5E3
        datapath.load_multiplier(value)
        total = 9  # 16-bit full-range digit count
        digits = [datapath.booth_digit(i, total) for i in range(total)]
        assert digits == booth_digits_radix4(value, 16, full_range=True)

    def test_window_bounds_checked(self, datapath):
        datapath.load_multiplier(1)
        with pytest.raises(ControllerError):
            datapath.booth_window(9, 9)


class TestControllerFsm:
    def test_legal_phase_sequence(self):
        controller = Controller(iterations=2)
        controller.transition(ControllerState.LOAD)
        controller.tick(Phase.LOAD_MULTIPLIER)
        controller.transition(ControllerState.PRECOMPUTE)
        controller.tick(Phase.PRECOMPUTE)
        controller.transition(ControllerState.ITERATE)
        controller.begin_iteration(0)
        controller.tick(Phase.IMC_RADIX4)
        controller.tick(Phase.WRITEBACK_SUM)
        controller.begin_iteration(1)
        controller.transition(ControllerState.FINALIZE)
        controller.tick(Phase.FINALIZE)
        controller.transition(ControllerState.DONE)
        assert controller.finished()
        assert controller.budget.load_cycles == 1
        assert controller.budget.precompute_cycles == 1
        assert controller.budget.iteration_cycles == 2
        assert controller.budget.finalize_cycles == 1
        assert controller.budget.total_cycles == 5

    def test_illegal_transition_rejected(self):
        controller = Controller(iterations=1)
        with pytest.raises(ControllerError):
            controller.transition(ControllerState.ITERATE)

    def test_phase_not_allowed_in_state(self):
        controller = Controller(iterations=1)
        controller.transition(ControllerState.LOAD)
        with pytest.raises(ControllerError):
            controller.tick(Phase.IMC_RADIX4)

    def test_iterations_must_be_sequential(self):
        controller = Controller(iterations=3)
        controller.transition(ControllerState.LOAD)
        controller.transition(ControllerState.ITERATE)
        controller.begin_iteration(0)
        with pytest.raises(ControllerError):
            controller.begin_iteration(2)

    def test_iteration_out_of_range(self):
        controller = Controller(iterations=1)
        controller.transition(ControllerState.LOAD)
        controller.transition(ControllerState.ITERATE)
        with pytest.raises(ControllerError):
            controller.begin_iteration(1)

    def test_iterate_requires_iterate_state(self):
        controller = Controller(iterations=1)
        with pytest.raises(ControllerError):
            controller.begin_iteration(0)

    def test_expected_iteration_cycles(self):
        assert Controller(iterations=128).expected_iteration_cycles() == 767

    def test_returning_to_idle_resets_budget(self):
        controller = Controller(iterations=1)
        controller.transition(ControllerState.LOAD)
        controller.tick(Phase.LOAD_MULTIPLIER)
        controller.transition(ControllerState.ITERATE)
        controller.transition(ControllerState.FINALIZE)
        controller.transition(ControllerState.DONE)
        controller.transition(ControllerState.IDLE)
        assert controller.budget.total_cycles == 0
        assert controller.cycle == 0

    def test_invalid_iteration_count(self):
        with pytest.raises(ControllerError):
            Controller(iterations=0)

    def test_budget_as_dict(self):
        controller = Controller(iterations=1)
        assert controller.budget.as_dict()["total_cycles"] == 0
