"""Tests for graph-aware chip scheduling and chip graph execution."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.modsram import (
    AnalyticalCostModel,
    Chip,
    ChipScheduler,
    ModSRAMConfig,
    MultiplicationJob,
    PAPER_CONFIG,
)
from repro.workloads import (
    WorkloadGraph,
    ecdsa_sign_graph,
    ntt_graph,
    product_tree_graph,
)


def flat_graph(keys) -> WorkloadGraph:
    graph = WorkloadGraph("flat")
    for key in keys:
        graph.add(key)
    return graph


class TestFlatParity:
    """A dependency-free graph must schedule exactly like the flat stream."""

    @pytest.mark.parametrize("macros", [1, 2, 4])
    def test_placement_parity(self, macros):
        keys = [f"k{i % 5}" for i in range(37)] + ["k0"] * 3
        scheduler = ChipScheduler(macros, PAPER_CONFIG)
        stream = scheduler.schedule([MultiplicationJob(k) for k in keys])
        graph = scheduler.schedule_graph(flat_graph(keys))
        assert graph.makespan_cycles == stream.makespan_cycles
        assert graph.per_macro_jobs == stream.per_macro_jobs
        assert graph.per_macro_busy_cycles == stream.per_macro_cycles
        assert graph.lut_refills == stream.lut_refills
        assert graph.utilization == pytest.approx(stream.utilization)

    def test_chain_graph_is_serial(self):
        scheduler = ChipScheduler(4, PAPER_CONFIG)
        chain = flat_graph(["a", "b", "a"]).linearized()
        schedule = scheduler.schedule_graph(chain)
        model = AnalyticalCostModel(PAPER_CONFIG)
        # Serialized: makespan is the sum of every job's cost, and three
        # quarters of the chip idles.
        assert schedule.makespan_cycles == (
            3 * model.iteration_cycles() + 3 * model.radix4_refill_cycles()
        )
        assert schedule.utilization == pytest.approx(0.25)


class TestGraphAwareScheduling:
    def test_ntt_beats_the_flat_stream_at_four_macros(self):
        graph = ntt_graph(256)
        scheduler = ChipScheduler(4, PAPER_CONFIG)
        aware = scheduler.schedule_graph(graph)
        flat = scheduler.schedule_graph(graph.linearized())
        assert aware.makespan_cycles < flat.makespan_cycles
        assert aware.utilization > flat.utilization
        assert flat.makespan_cycles / aware.makespan_cycles >= 2.0

    def test_ecdsa_batch_beats_the_flat_stream(self):
        graph = ecdsa_sign_graph(32, signatures=4)
        scheduler = ChipScheduler(4, PAPER_CONFIG)
        aware = scheduler.schedule_graph(graph)
        flat = scheduler.schedule_graph(graph.linearized())
        assert flat.makespan_cycles / aware.makespan_cycles >= 2.0

    def test_critical_path_bounds_the_makespan(self):
        graph = ntt_graph(64)
        for macros in (1, 2, 8):
            schedule = ChipScheduler(macros, PAPER_CONFIG).schedule_graph(graph)
            assert schedule.makespan_cycles >= schedule.critical_path_cycles
            assert schedule.depth == graph.depth

    def test_dependencies_are_never_violated(self):
        # With more macros than width, the makespan floors at the critical
        # path — dependencies forbid going lower.
        graph = ntt_graph(16)  # width 8
        wide = ChipScheduler(32, PAPER_CONFIG).schedule_graph(graph)
        assert wide.makespan_cycles >= wide.critical_path_cycles
        assert wide.jobs == len(graph)

    def test_priority_orders_the_ready_front(self):
        graph = WorkloadGraph("prio")
        graph.add("low", priority=0)
        graph.add("high", priority=5)
        schedule = ChipScheduler(1, PAPER_CONFIG).schedule_graph(graph)
        # Both run on the single macro; the high-priority node goes first,
        # so the refill pattern is high-then-low (2 refills either way) —
        # but the schedule completes and accounts both.
        assert schedule.jobs == 2
        assert schedule.lut_refills == 2

    def test_empty_graph(self):
        schedule = ChipScheduler(2, PAPER_CONFIG).schedule_graph(
            WorkloadGraph("empty")
        )
        assert schedule.jobs == 0
        assert schedule.makespan_cycles == 0
        assert schedule.utilization == 0.0
        assert schedule.throughput_mops == 0.0

    def test_as_dict_round_trips_the_key_quantities(self):
        schedule = ChipScheduler(2, PAPER_CONFIG).schedule_graph(ntt_graph(16))
        data = schedule.as_dict()
        assert data["makespan_cycles"] == schedule.makespan_cycles
        assert data["critical_path_cycles"] == schedule.critical_path_cycles
        assert data["utilization"] == schedule.utilization
        assert data["depth"] == 4


class TestChipGraphExecution:
    def test_products_are_bit_identical(self, rng):
        modulus = 65521
        values = [rng.randrange(1, modulus) for _ in range(32)]
        graph = product_tree_graph(values)
        config = ModSRAMConfig().with_bitwidth(16)

        aware = Chip(4, config).run_graph(graph, modulus)
        chain = Chip(4, config).run_graph(graph.linearized(), modulus)
        reference = 1
        for value in values:
            reference = reference * value % modulus

        assert aware.values == chain.values
        assert aware.results == (reference,)
        assert aware.schedule.makespan_cycles < chain.schedule.makespan_cycles

    def test_measured_cycles_replace_the_nominal_charge(self, rng):
        modulus = 65521
        graph = product_tree_graph([3, 5, 7, 11])
        run = Chip(2, ModSRAMConfig().with_bitwidth(16)).run_graph(
            graph, modulus
        )
        assert run.schedule.jobs == 3
        assert run.schedule.total_busy_cycles > 0
        assert sum(run.schedule.per_macro_jobs) == 3

    def test_structural_graph_is_rejected(self):
        chip = Chip(2, ModSRAMConfig().with_bitwidth(16))
        with pytest.raises(ConfigurationError, match="structural"):
            chip.run_graph(ntt_graph(8), 65521)
