"""Tests for the layered simulation core: fidelity-tier parity and algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, OperandRangeError
from repro.modsram import (
    AnalyticalCostModel,
    AnalyticalModSRAM,
    Fidelity,
    FunctionalModSRAM,
    ModSRAMAccelerator,
    ModSRAMConfig,
    PAPER_CONFIG,
    build_simulator,
)

BN254_P = 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47
SECP256K1_P = 2**256 - 2**32 - 977


def tiers(config: ModSRAMConfig):
    return (
        ModSRAMAccelerator(config),
        AnalyticalModSRAM(config),
        FunctionalModSRAM(config),
    )


class TestProductParity:
    """All three tiers return identical products (acceptance criterion)."""

    @pytest.mark.parametrize(
        "modulus,config",
        [
            (BN254_P, PAPER_CONFIG),  # 254-bit, paper n/2 schedule
            (SECP256K1_P, ModSRAMConfig()),  # full 256-bit range
        ],
        ids=["bn254-paper", "secp256k1-full-range"],
    )
    def test_randomised_parity_at_paper_widths(self, modulus, config, rng):
        cycle, analytical, functional = tiers(config)
        for _ in range(2):
            a, b = rng.randrange(modulus), rng.randrange(modulus)
            expected = (a * b) % modulus
            assert cycle.multiply(a, b, modulus).product == expected
            assert analytical.multiply(a, b, modulus).product == expected
            assert functional.multiply(a, b, modulus).product == expected

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_randomised_parity_16_bit(self, data):
        modulus = data.draw(st.integers(1 << 14, (1 << 16) - 1).map(lambda v: v | 1))
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        config = ModSRAMConfig().with_bitwidth(16)
        cycle, analytical, functional = tiers(config)
        expected = (a * b) % modulus
        assert cycle.multiply(a, b, modulus).product == expected
        assert analytical.multiply(a, b, modulus).product == expected
        assert functional.multiply(a, b, modulus).product == expected

    def test_fast_tiers_enforce_the_same_preconditions(self):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(16)
        for simulator in (AnalyticalModSRAM(config), FunctionalModSRAM(config)):
            with pytest.raises(OperandRangeError):
                simulator.multiply(65521, 1, 65521)  # unreduced operand
            with pytest.raises(OperandRangeError):
                simulator.multiply(0x8000, 1, 0xFFF1)  # paper-mode top bit
            with pytest.raises(OperandRangeError):
                simulator.multiply(1, 1, 97)  # modulus far below the macro


class TestAnalyticalExactness:
    """The analytical tier's reports match the cycle tier field by field."""

    def test_paper_schedule_767_cycles(self, rng):
        analytical = AnalyticalModSRAM(PAPER_CONFIG)
        a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
        report = analytical.multiply(a, b, BN254_P).report
        assert report.iterations == 128
        assert report.iteration_cycles == 767

    @pytest.mark.parametrize("bitwidth", [16, 24, 48])
    @pytest.mark.parametrize("full_range", [True, False])
    def test_total_cycles_match_cycle_tier_exactly(self, bitwidth, full_range, rng):
        config = ModSRAMConfig(
            extend_for_full_range=full_range
        ).with_bitwidth(bitwidth)
        cycle = ModSRAMAccelerator(config)
        analytical = AnalyticalModSRAM(config)
        modulus = ((1 << bitwidth) - 5) | 1
        for _ in range(3):
            a = rng.randrange(modulus)
            if not full_range:
                a >>= 1  # paper schedule: keep the top bit clear
            b = rng.randrange(modulus)
            measured = cycle.multiply(a, b, modulus).report
            modelled = analytical.multiply(a, b, modulus).report
            assert modelled == measured  # every field, including totals
            assert modelled.total_cycles == measured.total_cycles

    def test_lut_reuse_flows_through_the_cost_model(self):
        config = ModSRAMConfig().with_bitwidth(16)
        analytical = AnalyticalModSRAM(config)
        first = analytical.multiply(111, 222, 65521).report
        second = analytical.multiply(333, 222, 65521).report
        assert not first.lut_reused and first.precompute_cycles > 0
        assert second.lut_reused and second.precompute_cycles == 0

    def test_cost_model_against_measured_budget(self, rng):
        config = ModSRAMConfig().with_bitwidth(32)
        model = AnalyticalCostModel(config)
        accelerator = ModSRAMAccelerator(config)
        modulus = ((1 << 32) - 5) | 1
        report = accelerator.multiply(
            rng.randrange(modulus), rng.randrange(modulus), modulus
        ).report
        assert model.load_cycles() == report.load_cycles
        assert model.lut_fill_cycles() == report.precompute_cycles
        assert model.iteration_cycles() == report.iteration_cycles
        assert model.total_cycles(
            subtractions=report.finalize_cycles - 2
        ) == report.total_cycles

    def test_radix4_refill_matches_the_point_scheduler_constant(self):
        from repro.modsram import PointOperationScheduler

        model = AnalyticalCostModel(PAPER_CONFIG)
        assert (
            model.radix4_refill_cycles()
            == PointOperationScheduler.RADIX4_PRECOMPUTE_CYCLES
        )


class TestAccessStatsParity:
    """Closed-form and register-file access profiles match the real array."""

    def test_functional_stats_match_the_simulated_array(self, rng):
        config = ModSRAMConfig().with_bitwidth(16)
        cycle = ModSRAMAccelerator(config)
        functional = FunctionalModSRAM(config)
        for pair in ((11, 13), (500, 13), (65520, 65519)):
            cycle.multiply(*pair, 65521)
            functional.multiply(*pair, 65521)
        assert functional.stats.as_dict() == cycle.array.stats.as_dict()

    def test_analytical_closed_form_matches_measured_stats(self, rng):
        config = ModSRAMConfig().with_bitwidth(16)
        cycle = ModSRAMAccelerator(config)
        result = cycle.multiply(12345, 54321, 65521)
        model = AnalyticalCostModel(config)
        closed_form = model.array_stats(
            reused=result.report.lut_reused,
            extra_folds=result.report.extra_overflow_folds,
        )
        assert closed_form.as_dict() == cycle.array.stats.as_dict()

    def test_analytical_energy_is_positive_and_tier_consistent(self):
        config = ModSRAMConfig().with_bitwidth(16)
        cycle = ModSRAMAccelerator(config)
        analytical = AnalyticalModSRAM(config)
        cycle.multiply(11, 13, 65521)
        analytical.multiply(11, 13, 65521)
        measured = cycle.energy_report()
        modelled = analytical.energy_report()
        assert modelled.total_pj > 0
        # Same array profile => identical array-side energy components.
        assert modelled.precharge_pj == pytest.approx(measured.precharge_pj)
        assert modelled.wordline_pj == pytest.approx(measured.wordline_pj)
        assert modelled.write_pj == pytest.approx(measured.write_pj)


class TestFunctionalOperations:
    def test_operation_counts_reflect_the_schedule(self):
        config = ModSRAMConfig().with_bitwidth(16)
        functional = FunctionalModSRAM(config)
        result = functional.multiply(11, 13, 65521)
        iterations = config.iterations
        assert result.operations["imc_access"] == 2 * iterations
        assert result.operations["modmul"] == 1
        assert result.operations["memory_write"] > 0

    def test_per_multiplication_stats_delta_feeds_the_energy_model(self):
        config = ModSRAMConfig().with_bitwidth(16)
        functional = FunctionalModSRAM(config)
        first = functional.multiply(11, 13, 65521)
        second = functional.multiply(12, 13, 65521)
        # The per-multiplication profile stands alone (not cumulative) ...
        assert first.stats.row_writes > second.stats.row_writes  # LUT reuse
        assert (
            first.stats.merged_with(second.stats).as_dict()
            == functional.stats.as_dict()
        )
        # ... and prices one multiplication directly.
        assert config.energy.from_stats(second.stats).total_pj > 0

    def test_counts_are_per_multiplication_deltas(self):
        config = ModSRAMConfig().with_bitwidth(16)
        functional = FunctionalModSRAM(config)
        first = functional.multiply(11, 13, 65521)
        second = functional.multiply(12, 13, 65521)
        assert second.lut_reused
        assert second.operations["imc_access"] == first.operations["imc_access"]
        assert "memory_write" in first.operations
        # Reuse skips the 13 LUT row writes.
        assert (
            first.operations["memory_write"]
            - second.operations["memory_write"]
            == 13
        )


class TestFidelitySelection:
    def test_build_simulator_types(self):
        assert isinstance(build_simulator("cycle"), ModSRAMAccelerator)
        assert isinstance(build_simulator("analytical"), AnalyticalModSRAM)
        assert isinstance(build_simulator("functional"), FunctionalModSRAM)
        assert isinstance(
            build_simulator(Fidelity.FUNCTIONAL), FunctionalModSRAM
        )

    def test_unknown_fidelity_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fidelity"):
            build_simulator("rtl")

    def test_unknown_fidelity_error_names_the_valid_tiers(self):
        with pytest.raises(ConfigurationError) as excinfo:
            build_simulator("netlist")
        message = str(excinfo.value)
        for tier in Fidelity:
            assert tier.value in message

    def test_hdl_tier_builds_the_event_driven_simulator(self):
        from repro.hdl.eventsim import HdlModSRAM

        config = ModSRAMConfig().with_bitwidth(16)
        simulator = build_simulator("hdl", config)
        assert isinstance(simulator, HdlModSRAM)
        assert isinstance(build_simulator(Fidelity.HDL, config), HdlModSRAM)
        result = simulator.multiply(123, 456, 65521)
        assert result.product == 123 * 456 % 65521

    def test_coerce_accepts_mixed_case_strings(self):
        assert Fidelity.coerce("CYCLE") is Fidelity.CYCLE
        assert Fidelity.coerce("hdl") is Fidelity.HDL
