"""Tests for the prior-work PIM design models (Table 3 / Figure 6 inputs)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BPNTT,
    CRYPTOPIM,
    MENTT,
    MODSRAM,
    RMNTT,
    XPOLY,
    adc_area_fraction,
    available_designs,
    bpntt_cycles,
    bpntt_rows,
    bpntt_transform_cycles,
    get_design,
    mentt_cycles,
    mentt_rows,
    modsram_rows,
    register_design,
)
from repro.baselines.base import PimDesignSpec
from repro.errors import ConfigurationError, OperandRangeError


class TestRegistry:
    def test_all_table3_designs_registered(self):
        assert set(available_designs()) >= {
            "modsram",
            "mentt",
            "bpntt",
            "rm-ntt",
            "cryptopim",
            "x-poly",
        }

    def test_get_design(self):
        assert get_design("mentt") is MENTT
        assert get_design("bpntt") is BPNTT
        with pytest.raises(ConfigurationError):
            get_design("unknown")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_design(
                PimDesignSpec(
                    key="mentt",
                    label="dup",
                    application="x",
                    computation_method="x",
                    technology_nm=65,
                    cell_type="6T",
                    array_size="1x1",
                    frequency_mhz=1.0,
                    native_bitwidths=(16,),
                    area_mm2=None,
                    reference="",
                )
            )


class TestMentt:
    def test_cycles_match_table3_at_256_bits(self):
        assert mentt_cycles(256) == 66049
        assert MENTT.cycles(256) == 66049

    def test_rows_match_paper_statement(self):
        """§5.4: computing in 256 bits requires a total of 1282 rows."""
        assert mentt_rows(256) == 1282
        assert MENTT.rows_required(256) == 1282

    def test_quadratic_scaling(self):
        assert mentt_cycles(32) == 33 * 33
        assert mentt_cycles(256) / mentt_cycles(128) == pytest.approx(4, rel=0.05)

    def test_spec_fields_match_table3(self):
        assert MENTT.technology_nm == 65
        assert MENTT.cell_type == "6T SRAM"
        assert MENTT.frequency_mhz == 151.0
        assert MENTT.area_mm2 == 0.36
        assert 16 in MENTT.native_bitwidths


class TestBpntt:
    def test_cycles_match_table3_at_256_bits(self):
        assert bpntt_cycles(256) == 1465
        assert BPNTT.cycles(256) == 1465

    def test_linear_scaling(self):
        assert bpntt_cycles(512) - bpntt_cycles(256) == 5 * 256

    def test_transform_cost_is_another_multiplication(self):
        assert bpntt_transform_cycles(256) == bpntt_cycles(256)

    def test_row_requirement_is_constant(self):
        assert bpntt_rows(16) == bpntt_rows(256) == 6

    def test_spec_fields_match_table3(self):
        assert BPNTT.technology_nm == 45
        assert BPNTT.frequency_mhz == 3800.0
        assert BPNTT.area_mm2 == 0.063
        assert BPNTT.computation_method == "Montgomery"


class TestReramDesigns:
    def test_no_cycle_counts_reported(self):
        for design in (RMNTT, CRYPTOPIM, XPOLY):
            assert design.cycles(256) is None
            assert design.latency_us(256) is None

    def test_spec_fields_match_table3(self):
        assert RMNTT.technology_nm == 28
        assert RMNTT.application == "HE NTT"
        assert CRYPTOPIM.area_mm2 == 0.152
        assert CRYPTOPIM.frequency_mhz == 909.0
        assert XPOLY.area_mm2 == 0.27
        assert XPOLY.computation_method == "Barrett"

    def test_adc_fraction_matches_section_5_4(self):
        assert adc_area_fraction() >= 0.70


class TestModsramEntry:
    def test_cycles_match_headline(self):
        assert MODSRAM.cycles(256) == 767

    def test_working_set_rows(self):
        assert modsram_rows(256) == 18
        assert MODSRAM.rows_required(256) == 18

    def test_area_and_frequency_come_from_the_models(self):
        assert MODSRAM.area_mm2 == pytest.approx(0.052, abs=0.003)
        assert MODSRAM.frequency_mhz == pytest.approx(420, abs=2)

    def test_latency_is_under_two_microseconds(self):
        assert MODSRAM.latency_us(256) == pytest.approx(767 / 420.2, rel=0.01)

    def test_as_row_shape(self):
        row = MODSRAM.as_row(256)
        assert row["design"].startswith("This work")
        assert row["cycles"] == 767

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            MODSRAM.cycles(0)
        with pytest.raises(OperandRangeError):
            MODSRAM.rows_required(-1)
