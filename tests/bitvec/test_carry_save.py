"""Unit and property tests for the carry-save (redundant) value."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bitvec import BitVector, CarrySaveValue, csa_step
from repro.errors import BitWidthError

WIDTH = 16
word = st.integers(0, (1 << WIDTH) - 1)


class TestConstruction:
    def test_zero(self):
        value = CarrySaveValue.zero(8)
        assert value.resolve() == 0
        assert value.width == 8

    def test_from_int_puts_value_in_sum_word(self):
        value = CarrySaveValue.from_int(37, 8)
        assert value.sum_word.value == 37
        assert value.carry_word.value == 0
        assert int(value) == 37

    def test_width_mismatch_rejected(self):
        with pytest.raises(BitWidthError):
            CarrySaveValue(BitVector(0, 4), BitVector(0, 5))


class TestCsaStep:
    @given(word, word, word)
    def test_unconstrained_step_preserves_sum(self, a, b, c):
        new_sum, new_carry = csa_step(a, b, c)
        assert new_sum + new_carry == a + b + c


class TestShift:
    @given(word, word, st.integers(0, 3))
    def test_shift_preserves_value_with_overflow(self, s, c, amount):
        value = CarrySaveValue(BitVector(s, WIDTH), BitVector(c, WIDTH))
        shifted, sum_overflow, carry_overflow = value.shifted_left(amount)
        reconstructed = shifted.resolve() + ((sum_overflow + carry_overflow) << WIDTH)
        assert reconstructed == (s + c) << amount

    def test_shift_by_two_overflow_fields_are_two_bits(self):
        value = CarrySaveValue(
            BitVector((1 << WIDTH) - 1, WIDTH), BitVector((1 << WIDTH) - 1, WIDTH)
        )
        _, sum_overflow, carry_overflow = value.shifted_left(2)
        assert sum_overflow == 0b11
        assert carry_overflow == 0b11


class TestAdd:
    @given(word, word, word)
    def test_add_preserves_value_with_escape(self, s, c, addend):
        value = CarrySaveValue(BitVector(s, WIDTH), BitVector(c, WIDTH))
        added, escaped = value.add(addend)
        assert added.resolve() + (escaped << WIDTH) == s + c + addend

    @given(word, word, word)
    def test_escape_is_a_single_bit(self, s, c, addend):
        value = CarrySaveValue(BitVector(s, WIDTH), BitVector(c, WIDTH))
        _, escaped = value.add(addend)
        assert escaped in (0, 1)

    def test_add_rejects_oversized_addend(self):
        value = CarrySaveValue.zero(8)
        with pytest.raises(BitWidthError):
            value.add(1 << 8)

    def test_add_rejects_negative_addend(self):
        with pytest.raises(BitWidthError):
            CarrySaveValue.zero(8).add(-1)

    def test_string_rendering_mentions_both_words(self):
        text = str(CarrySaveValue.from_int(5, 4))
        assert "sum=" in text and "carry=" in text
