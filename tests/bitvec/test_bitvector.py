"""Unit and property tests for the fixed-width bit vector."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bitvec import BitVector, maj3, xor3
from repro.errors import BitWidthError


class TestConstruction:
    def test_value_and_width_are_stored(self):
        vector = BitVector(0b1011, 6)
        assert vector.value == 0b1011
        assert vector.width == 6
        assert len(vector) == 6

    def test_zeros_and_ones(self):
        assert BitVector.zeros(8).value == 0
        assert BitVector.ones(8).value == 0xFF

    def test_from_bits_lsb_first(self):
        vector = BitVector.from_bits([1, 0, 1, 1])
        assert vector.value == 0b1101

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(BitWidthError):
            BitVector.from_bits([0, 2, 1])

    def test_from_bits_rejects_too_many_bits(self):
        with pytest.raises(BitWidthError):
            BitVector.from_bits([1, 1, 1], width=2)

    def test_negative_value_rejected(self):
        with pytest.raises(BitWidthError):
            BitVector(-1, 4)

    def test_oversized_value_rejected(self):
        with pytest.raises(BitWidthError):
            BitVector(16, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(BitWidthError):
            BitVector(0, 0)


class TestAccessors:
    def test_bit_indexing(self):
        vector = BitVector(0b0110, 4)
        assert [vector.bit(i) for i in range(4)] == [0, 1, 1, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(BitWidthError):
            BitVector(0, 4).bit(4)

    def test_bits_round_trip(self):
        vector = BitVector(0b10110, 5)
        assert BitVector.from_bits(vector.bits(), 5) == vector

    def test_msb_and_lsb(self):
        vector = BitVector(0b110101, 6)
        assert vector.msb() == 1
        assert vector.msb(3) == 0b110
        assert vector.lsb() == 1
        assert vector.lsb(3) == 0b101

    def test_msb_count_validation(self):
        with pytest.raises(BitWidthError):
            BitVector(0, 4).msb(5)
        with pytest.raises(BitWidthError):
            BitVector(0, 4).lsb(0)

    def test_slice(self):
        vector = BitVector(0b110101, 6)
        assert vector.slice(1, 4) == 0b010
        assert vector.slice(0, 6) == 0b110101

    def test_slice_validation(self):
        with pytest.raises(BitWidthError):
            BitVector(0, 4).slice(2, 2)

    def test_popcount(self):
        assert BitVector(0b10110111, 8).popcount() == 6

    def test_int_and_bool_conversions(self):
        assert int(BitVector(5, 4)) == 5
        assert bool(BitVector(0, 4)) is False
        assert bool(BitVector(1, 4)) is True

    def test_iter_yields_lsb_first(self):
        assert list(BitVector(0b011, 3)) == [1, 1, 0]


class TestOperations:
    def test_shift_left_returns_overflow(self):
        vector = BitVector(0b1101, 4)
        shifted, overflow = vector.shift_left(2)
        assert shifted.value == 0b0100
        assert overflow == 0b11

    def test_shift_left_zero_amount(self):
        vector = BitVector(0b1101, 4)
        shifted, overflow = vector.shift_left(0)
        assert shifted == vector
        assert overflow == 0

    def test_shift_left_negative_amount_rejected(self):
        with pytest.raises(BitWidthError):
            BitVector(1, 4).shift_left(-1)

    def test_shift_right_returns_dropped_bits(self):
        shifted, dropped = BitVector(0b1011, 4).shift_right(2)
        assert shifted.value == 0b10
        assert dropped == 0b11

    def test_bitwise_operators(self):
        a = BitVector(0b1100, 4)
        b = BitVector(0b1010, 4)
        assert (a ^ b).value == 0b0110
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110
        assert (~a).value == 0b0011

    def test_width_mismatch_rejected(self):
        with pytest.raises(BitWidthError):
            BitVector(1, 4) ^ BitVector(1, 5)

    def test_add_wraps_within_width(self):
        assert (BitVector(0b1111, 4) + 1).value == 0

    def test_add_with_carry(self):
        total, carry = BitVector(0b1111, 4).add_with_carry(0b0001)
        assert total.value == 0
        assert carry == 1

    def test_resized_truncates_and_extends(self):
        vector = BitVector(0b1101, 4)
        assert vector.resized(2).value == 0b01
        assert vector.resized(8).value == 0b1101

    def test_rendering(self):
        vector = BitVector(0b101, 5)
        assert str(vector) == "5'b00101"
        assert vector.to_binary(group=2) == "0_01_01"
        assert "0x5" in repr(vector)


class TestLogicHelpers:
    def test_xor3_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert xor3(a, b, c) == (a + b + c) % 2

    def test_maj3_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert maj3(a, b, c) == (1 if a + b + c >= 2 else 0)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_csa_identity(self, a, b, c):
        """XOR3 plus shifted MAJ equals the arithmetic sum (the CSA identity)."""
        assert xor3(a, b, c) + (maj3(a, b, c) << 1) == a + b + c


class TestShiftProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 6))
    def test_shift_left_preserves_value(self, value, amount):
        vector = BitVector(value, 32)
        shifted, overflow = vector.shift_left(amount)
        assert shifted.value + (overflow << 32) == value << amount

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_add_with_carry_is_exact(self, a, b):
        total, carry = BitVector(a, 32).add_with_carry(b)
        assert total.value + (carry << 32) == a + b
