"""Tests for the per-exhibit reproduction modules (tables, figures, report)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DESIGN_ORDER,
    build_report,
    format_value,
    render_table,
    reproduce_figure1,
    reproduce_figure5,
    reproduce_figure6,
    reproduce_figure7,
    reproduce_headline_claims,
    reproduce_table3,
    reproduce_tables,
)
from repro.core.complexity import PAPER_FIGURE1_BITWIDTHS


class TestRendering:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(1234567) == "1,234,567"
        assert format_value(0.25) == "0.25"
        assert format_value(1.5e9) == "1.500e+09"
        assert format_value("text") == "text"
        assert format_value(0.0) == "0"

    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6


class TestTable1:
    def test_default_reproduction(self):
        result = reproduce_tables()
        assert len(result.encoder_rows) == 8
        assert len(result.radix4_rows) == 5
        assert len(result.overflow_rows) == 8
        assert "Table 1a" in result.render()
        assert "Table 2" in result.render()

    def test_lut_values_are_reduced(self):
        result = reproduce_tables(multiplicand=12345, modulus=65521)
        for _, value in result.radix4_rows + result.overflow_rows:
            assert 0 <= value < 65521


class TestFigure1:
    def test_quick_reproduction_uses_analytic_series(self):
        result = reproduce_figure1(measure=False)
        assert result.bitwidths == PAPER_FIGURE1_BITWIDTHS
        assert result.measured_modsram == result.analytic_series["r4csa-lut"]

    def test_measured_cycles_match_the_formula_at_small_widths(self):
        result = reproduce_figure1(bitwidths=(8, 16, 32), measure=True)
        assert result.measured_modsram == [23, 47, 95]

    def test_speedup_over_mentt_grows_with_bitwidth(self):
        result = reproduce_figure1(measure=False)
        speedups = result.speedup_over_mentt()
        assert speedups == sorted(speedups)
        assert speedups[-1] > 80  # 66049 / 767 ≈ 86

    def test_render_contains_every_bitwidth(self):
        text = reproduce_figure1(measure=False).render()
        for bitwidth in PAPER_FIGURE1_BITWIDTHS:
            assert str(bitwidth) in text

    def test_rows_shape(self):
        result = reproduce_figure1(measure=False)
        rows = result.rows()
        assert len(rows) == len(PAPER_FIGURE1_BITWIDTHS)
        assert len(rows[0]) == 1 + len(result.analytic_series) + 1


class TestFigure5:
    def test_total_and_breakdown_close_to_paper(self):
        result = reproduce_figure5()
        assert abs(result.total_error_percent) < 5
        for component, share in result.breakdown.percentages.items():
            assert abs(share - result.paper_breakdown_percent[component]) < 2.0

    def test_render_mentions_overhead(self):
        assert "overhead" in reproduce_figure5().render()

    def test_rows_have_four_components(self):
        assert len(reproduce_figure5().rows()) == 4


class TestFigure6:
    def test_row_requirements(self):
        result = reproduce_figure6()
        assert result.rows_by_design["mentt"] == 1282
        assert result.rows_by_design["bpntt"] == 6
        assert result.rows_by_design["modsram"] == 18
        assert result.modsram_utilization.lut_rows == 13
        assert result.modsram_array_rows == 64

    def test_mentt_does_not_fit_the_array_modsram_uses(self):
        """The paper's point: 1282 rows cannot fit a 64-row bank."""
        result = reproduce_figure6()
        assert result.rows_by_design["mentt"] > result.modsram_array_rows
        assert result.rows_by_design["modsram"] <= result.modsram_array_rows

    def test_render(self):
        text = reproduce_figure6().render()
        assert "MeNTT" in text and "ModSRAM" in text and "LUT rows" in text


class TestFigure7:
    def test_operating_point_and_ordering(self):
        result = reproduce_figure7()
        assert result.vector_size == 2**15
        assert result.bitwidth == 256
        ntt = result.ntt.as_dict()
        msm = result.msm.as_dict()
        # The qualitative shape of Figure 7: MSM >> NTT in every category,
        # and register writes dominate memory accesses dominate modmuls.
        for key in ntt:
            assert msm[key] > ntt[key]
        for counts in (ntt, msm):
            assert (
                counts["register_writes"]
                > counts["memory_access"]
                > counts["modular_multiplication"]
            )

    def test_rows_cover_both_kernels(self):
        rows = reproduce_figure7().rows()
        assert len(rows) == 6
        assert {row[0] for row in rows} == {"NTT", "MSM"}

    def test_render(self):
        assert "2^15" in reproduce_figure7().render()


class TestTable3:
    def test_design_order_matches_paper_columns(self):
        assert DESIGN_ORDER[0] == "modsram"
        assert len(DESIGN_ORDER) == 6

    def test_cycle_columns(self):
        result = reproduce_table3()
        assert result.rows_by_design["modsram"]["cycles"] == 767
        assert result.rows_by_design["mentt"]["cycles"] == 66049
        assert result.rows_by_design["bpntt"]["cycles"] == 1465
        assert result.rows_by_design["rm-ntt"]["cycles"] is None

    def test_cycle_reductions(self):
        result = reproduce_table3()
        assert result.cycle_reduction_vs("mentt") > 98.0
        assert 45.0 < result.best_prior_cycle_reduction() < 50.0
        assert 50.0 < result.cycle_reduction_vs("bpntt", include_transform=True) < 55.0

    def test_reduction_against_design_without_cycles_rejected(self):
        with pytest.raises(ValueError):
            reproduce_table3().cycle_reduction_vs("x-poly")

    def test_render_contains_all_designs(self):
        text = reproduce_table3().render()
        for label in ("MeNTT", "BP-NTT", "RM-NTT", "CryptoPIM", "X-Poly", "This work"):
            assert label in text

    def test_rows_shape(self):
        rows = reproduce_table3().rows()
        assert len(rows) == 6
        assert all(len(row) == 10 for row in rows)


class TestHeadlineAndReport:
    def test_headline_claims_hold_without_measurement(self):
        result = reproduce_headline_claims(measure=False)
        assert result.all_hold()
        assert len(result.claims) == 7
        assert "767" in result.render()

    def test_quick_report_contains_every_exhibit(self):
        report = build_report(quick=True)
        for marker in ("Table 1a", "Figure 1", "Figure 5", "Figure 6", "Figure 7", "Table 3", "Headline"):
            assert marker in report
