"""Tests for the beyond-the-paper energy analysis."""

from __future__ import annotations

import pytest

from repro.analysis.energy import (
    measure_energy_per_multiplication,
    reproduce_energy_analysis,
)


class TestEnergyPerMultiplication:
    def test_small_width_measurement(self):
        result = measure_energy_per_multiplication(bitwidth=32)
        assert result.iteration_cycles == 95
        assert result.energy_per_multiplication_pj > 0
        assert result.energy_per_bit_pj == pytest.approx(
            result.energy_per_multiplication_pj / 32
        )

    def test_breakdown_sums_to_total(self):
        result = measure_energy_per_multiplication(bitwidth=32)
        data = result.breakdown.as_dict()
        assert data["total_pj"] == pytest.approx(
            data["precharge_pj"]
            + data["wordline_pj"]
            + data["sensing_pj"]
            + data["write_pj"]
            + data["near_memory_pj"]
        )

    def test_energy_grows_with_bitwidth(self):
        small = measure_energy_per_multiplication(bitwidth=32)
        large = measure_energy_per_multiplication(bitwidth=64)
        assert large.energy_per_multiplication_pj > 1.5 * small.energy_per_multiplication_pj

    def test_sweep_table(self):
        results, table = reproduce_energy_analysis(bitwidths=(32, 64))
        assert len(results) == 2
        assert "energy/mul" in table
        assert results[0].bitwidth == 32 and results[1].bitwidth == 64
