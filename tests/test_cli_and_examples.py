"""Tests for the command-line interface and the example scripts."""

from __future__ import annotations

import os
import py_compile
import subprocess
import sys

import pytest

from repro.cli import build_parser, main

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
ALL_EXAMPLES = (
    "quickstart.py",
    "engine_quickstart.py",
    "ecc_point_multiplication.py",
    "zkp_pipeline.py",
    "design_space_exploration.py",
    "dataflow_walkthrough.py",
    "ecdsa_signing.py",
    "serving_quickstart.py",
    "sharded_serving.py",
)
#: Examples cheap enough to execute end-to-end inside the unit-test suite.
FAST_EXAMPLES = (
    "quickstart.py",
    "engine_quickstart.py",
    "dataflow_walkthrough.py",
    "ecdsa_signing.py",
    "serving_quickstart.py",
    "sharded_serving.py",
)


class TestCliParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in ("report", "multiply", "cycles", "area", "verify"):
            arguments = parser.parse_args(
                [command] + (["1", "2"] if command == "multiply" else [])
            )
            assert arguments.command == command

    def test_hex_and_decimal_operands(self):
        parser = build_parser()
        arguments = parser.parse_args(["multiply", "0x10", "16"])
        assert arguments.a == 16 and arguments.b == 16

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliCommands:
    def test_multiply_command(self, capsys):
        assert main(["multiply", "0x1234", "0x5678", "--modulus", "0xFFF1"]) == 0
        output = capsys.readouterr().out
        assert hex((0x1234 * 0x5678) % 0xFFF1) in output

    def test_multiply_on_a_named_curve(self, capsys):
        assert main(["multiply", "12345", "67890", "--curve", "bn254"]) == 0
        assert "product" in capsys.readouterr().out

    def test_multiply_unknown_backend(self, capsys):
        assert main(["multiply", "1", "2", "--backend", "nonexistent"]) == 2
        assert "unknown backend" in capsys.readouterr().out

    def test_cycles_command(self, capsys):
        assert main(["cycles", "--bitwidth", "256"]) == 0
        output = capsys.readouterr().out
        assert "767" in output and "66,049" in output

    def test_area_command(self, capsys):
        assert main(["area"]) == 0
        output = capsys.readouterr().out
        assert "sram array" in output and "overhead" in output

    def test_verify_command(self, capsys):
        assert main(["verify", "--bitwidth", "16", "--cases", "2"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestExamples:
    def test_every_example_exists_and_compiles(self):
        for name in ALL_EXAMPLES:
            path = os.path.join(EXAMPLES_DIR, name)
            assert os.path.exists(path), name
            py_compile.compile(path, doraise=True)

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        completed = subprocess.run(
            [sys.executable, path],
            capture_output=True,
            text=True,
            timeout=300,
            check=False,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()

    def test_quickstart_reports_the_headline_cycle_count(self):
        path = os.path.join(EXAMPLES_DIR, "quickstart.py")
        completed = subprocess.run(
            [sys.executable, path], capture_output=True, text=True, timeout=300, check=False
        )
        assert completed.returncode == 0, completed.stderr
        assert "767" in completed.stdout
