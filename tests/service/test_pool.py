"""Tests for the sharded worker pool: routing, parity, spill, metrics.

Worker-crash handling has its own module (``test_pool_failures.py``);
these tests cover the healthy paths.  Pools here are deliberately small
(two workers) — correctness does not need cores, only the benchmark does.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.engine import Engine, EngineSpec
from repro.errors import ConfigurationError, OperandRangeError
from repro.service import (
    InlineExecutor,
    PoolConfig,
    PoolExecutor,
    Server,
    ServerConfig,
    shard_for,
)
from repro.workloads import product_tree_graph


def run(coroutine):
    return asyncio.run(coroutine)


MODULI = (997, 65521, (1 << 61) - 1, (1 << 127) - 1)


class TestShardRouting:
    def test_stable_and_in_range(self):
        for modulus in MODULI:
            home = shard_for(modulus, 4)
            assert 0 <= home < 4
            assert shard_for(modulus, 4) == home  # deterministic

    def test_single_worker_owns_everything(self):
        assert all(shard_for(modulus, 1) == 0 for modulus in MODULI)

    def test_different_worker_counts_cover_all_shards(self):
        # Many moduli must spread over the shard space (sanity, not
        # uniformity): 64 random primes into 4 shards hit every shard.
        rng = random.Random(7)
        homes = {
            shard_for(rng.randrange(3, 1 << 64) | 1, 4) for _ in range(64)
        }
        assert homes == {0, 1, 2, 3}


class TestPoolConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            PoolConfig(start_method="nope")
        with pytest.raises(ConfigurationError):
            PoolConfig(spill_threshold=0)
        with pytest.raises(ConfigurationError):
            PoolConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            PoolConfig(monitor_interval_s=0)

    def test_pool_rejects_bad_workers_and_backends(self):
        with pytest.raises(ConfigurationError):
            PoolExecutor(workers=0)
        with pytest.raises(ConfigurationError, match="unknown backend"):
            PoolExecutor(spec=EngineSpec(backend="not-a-backend"))


class TestPoolParity:
    def test_pairs_and_graphs_bit_identical_to_inline(self, rng):
        """The parity lock: same traffic, same products, both executors."""
        modulus = 65521
        pairs = [
            (rng.randrange(modulus), rng.randrange(modulus)) for _ in range(32)
        ]
        leaves = [rng.randrange(1, modulus) for _ in range(16)]
        graph = product_tree_graph(leaves)

        async def serve(workers):
            async with Server(
                backend="montgomery", modulus=modulus, workers=workers
            ) as server:
                batch = await server.multiply_batch(pairs)
                tree = await server.submit_graph(graph)
                return batch.values, tree.values

        inline_values = run(serve(None))
        pool_values = run(serve(2))
        assert inline_values == pool_values
        reference = 1
        for leaf in leaves:
            reference = reference * leaf % modulus
        assert pool_values[1] == (reference,)

    def test_pool_response_carries_shard(self):
        async def scenario():
            async with Server(
                backend="montgomery", modulus=997, workers=2
            ) as server:
                response = await server.multiply(3, 5)
                assert response.value == 15
                assert response.shard == server.executor.home_shard(997)
                inline = Server(backend="montgomery", modulus=997)
                async with inline:
                    assert (await inline.multiply(3, 5)).shard is None

        run(scenario())

    def test_admission_validation_still_rejects_bad_operands(self):
        async def scenario():
            async with Server(
                backend="montgomery", modulus=997, workers=2
            ) as server:
                with pytest.raises(OperandRangeError):
                    await server.multiply(1000, 5)

        run(scenario())


class TestPoolBehaviour:
    def test_moduli_route_to_their_home_shards(self):
        async def scenario():
            pool = PoolExecutor(
                spec=EngineSpec(backend="montgomery"), workers=2
            )
            async with Server(
                backend="montgomery", modulus=997, executor=pool
            ) as server:
                for modulus in MODULI:
                    response = await server.multiply(3, 5, modulus=modulus)
                    assert response.value == 15 % modulus
                    assert response.shard == pool.home_shard(modulus)
            await pool.close()
            rollup = pool.metrics.rollup()
            assert rollup["spilled_jobs"] == 0
            assert rollup["jobs"] == len(MODULI)

        run(scenario())

    def test_skewed_traffic_spills_to_least_loaded(self):
        """One hot modulus must not serialize on its home shard."""

        async def scenario():
            pool = PoolExecutor(
                spec=EngineSpec(backend="r4csa-lut"),
                workers=2,
                config=PoolConfig(spill_threshold=1),
            )
            modulus = (1 << 127) - 1
            config = ServerConfig(max_batch=8, batch_window_ms=0.0)
            async with Server(
                backend="r4csa-lut", modulus=modulus, config=config,
                executor=pool,
            ) as server:
                pairs = [(i + 2, i + 5) for i in range(8)]
                responses = await asyncio.gather(*(
                    server.multiply_batch(pairs) for _ in range(8)
                ))
                assert all(
                    response.values == tuple(a * b % modulus for a, b in pairs)
                    for response in responses
                )
                shards = {response.shard for response in responses}
            await pool.close()
            assert shards == {0, 1}, "skewed traffic stayed on one shard"
            assert pool.metrics.rollup()["spilled_jobs"] > 0

        run(scenario())

    def test_pool_backlog_counts_toward_admission(self):
        """Batches buffered in the pool still bound new admissions.

        Inline, execution blocks the dispatcher, so ``max_pending`` caps
        in-flight work by construction; with a pool the dispatcher hands
        batches off immediately, and without backlog accounting a flood
        would buffer without bound in the worker queues.
        """

        async def scenario():
            from repro.errors import AdmissionError

            modulus = (1 << 127) - 1
            pairs = [(i + 2, i + 3) for i in range(200)]
            config = ServerConfig(
                max_batch=len(pairs), batch_window_ms=0.0, max_pending=4
            )
            async with Server(
                backend="r4csa-lut", modulus=modulus, config=config,
                workers=1,
            ) as server:
                tasks = [
                    asyncio.ensure_future(server.multiply_batch(pairs))
                    for _ in range(4)
                ]
                while server.executor.backlog() < 4:
                    await asyncio.sleep(0.002)
                assert server.pending == 0  # all handed to the pool...
                with pytest.raises(AdmissionError):  # ...and still counted
                    await server.multiply(3, 5)
                responses = await asyncio.gather(*tasks)
                expected = tuple(a * b % modulus for a, b in pairs)
                assert all(r.values == expected for r in responses)

        run(scenario())

    def test_cross_process_cache_stats_merge(self):
        async def scenario():
            async with Server(
                backend="montgomery", modulus=997, workers=2
            ) as server:
                for _ in range(4):
                    await server.multiply(3, 5)
                summary = server.metrics_summary()
            cache = summary["context_cache"]
            # One worker warmed the modulus once; later calls hit.
            assert cache["misses"] == 1
            assert cache["hits"] >= 1
            assert summary["engine_multiplications"] >= 4
            executor = summary["executor"]
            assert executor["kind"] == "pool"
            assert executor["workers"] == 2
            assert len(executor["per_shard"]) == 2
            assert executor["cache"]["misses"] == 1

        run(scenario())

    def test_pool_restart_after_stop(self):
        """A server-owned pool survives a stop/start cycle."""

        async def scenario():
            server = Server(backend="montgomery", modulus=997, workers=2)
            await server.start()
            first = await server.multiply(3, 5)
            await server.stop()
            await server.start()
            second = await server.multiply(3, 5)
            await server.stop()
            assert first.value == second.value == 15

        run(scenario())

    def test_inline_executor_describe_and_stats(self):
        engine = Engine(backend="montgomery", modulus=997)
        executor = InlineExecutor(engine)
        engine.multiply(3, 5)
        assert executor.describe()["kind"] == "inline"
        assert executor.engine_multiplications() == 1
        assert executor.cache_stats().misses == 1

    def test_executor_and_workers_are_mutually_exclusive(self):
        engine = Engine(backend="montgomery", modulus=997)
        with pytest.raises(ConfigurationError, match="not both"):
            Server(
                engine=engine,
                executor=InlineExecutor(engine),
                workers=2,
            )
