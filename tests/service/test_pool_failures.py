"""Worker failure paths: crash retry, retry exhaustion, clean drain.

The pool's contract under fire: a killed worker's in-flight batch is
re-dispatched to another shard (jobs are pure, so retries are
idempotent), the per-shard metrics keep counting across the restart, and
``Server`` shutdown drains cleanly with the pool still attached.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.engine import EngineSpec
from repro.errors import WorkerCrashError
from repro.service import (
    PoolConfig,
    PoolExecutor,
    Server,
    ServerConfig,
)


def run(coroutine):
    return asyncio.run(coroutine)


#: A 127-bit Mersenne prime: heavy enough per multiplication (r4csa-lut)
#: that a few hundred pairs keep a worker busy while the test kills it.
SLOW_MODULUS = (1 << 127) - 1


async def _wait_for(predicate, timeout_s: float = 5.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


class TestWorkerCrash:
    def test_killed_worker_batch_retries_on_another_shard(self):
        async def scenario():
            # A huge spill threshold pins the batch to its home shard, so
            # the test knows exactly which worker to kill.
            pool = PoolExecutor(
                spec=EngineSpec(backend="r4csa-lut"),
                workers=2,
                config=PoolConfig(spill_threshold=10 ** 9),
            )
            config = ServerConfig(max_batch=4096, batch_window_ms=0.0)
            async with Server(
                backend="r4csa-lut", modulus=SLOW_MODULUS, config=config,
                executor=pool,
            ) as server:
                home = pool.home_shard(SLOW_MODULUS)
                pairs = [(i + 2, i + 3) for i in range(400)]
                task = asyncio.ensure_future(server.multiply_batch(pairs))
                await _wait_for(lambda: pool.shard_depths()[home] > 0)
                os.kill(pool._shards[home].process.pid, signal.SIGKILL)
                response = await task
                assert response.values == tuple(
                    a * b % SLOW_MODULUS for a, b in pairs
                )
                assert response.shard != home, "retry must land elsewhere"
                # A fresh process replaced the dead one.
                await _wait_for(lambda: pool._shards[home].alive)
                follow_up = await server.multiply(3, 5)
                assert follow_up.value == 15
            rollup = pool.metrics.rollup()
            await pool.close()
            assert rollup["worker_restarts"] == 1
            assert rollup["retried_jobs"] == 1
            assert rollup["failed_jobs"] == 0
            # The dead worker's engine counters folded, not vanished: the
            # merged job/pair accounting covers both dispatch attempts.
            assert rollup["jobs"] >= 2
            assert rollup["per_shard"][home]["restarts"] == 1

        run(scenario())

    def test_retry_exhaustion_fails_with_worker_crash_error(self):
        async def scenario():
            pool = PoolExecutor(
                spec=EngineSpec(backend="r4csa-lut"),
                workers=1,
                config=PoolConfig(
                    spill_threshold=10 ** 9,
                    max_retries=0,
                    restart_workers=True,
                ),
            )
            config = ServerConfig(max_batch=4096, batch_window_ms=0.0)
            async with Server(
                backend="r4csa-lut", modulus=SLOW_MODULUS, config=config,
                executor=pool,
            ) as server:
                pairs = [(i + 2, i + 3) for i in range(400)]
                task = asyncio.ensure_future(server.multiply_batch(pairs))
                await _wait_for(lambda: pool.shard_depths()[0] > 0)
                os.kill(pool._shards[0].process.pid, signal.SIGKILL)
                with pytest.raises(WorkerCrashError, match="giving up"):
                    await task
            rollup = pool.metrics.rollup()
            await pool.close()
            assert rollup["failed_jobs"] == 1
            assert rollup["worker_restarts"] == 1

        run(scenario())

    def test_unreplaced_dead_worker_is_counted_once(self):
        """With restarts disabled, one death is one restart event.

        The monitor must mark the slot handled; re-detecting the same
        corpse every poll tick would inflate restart/retired counters
        without bound.
        """

        async def scenario():
            pool = PoolExecutor(
                spec=EngineSpec(backend="r4csa-lut"),
                workers=2,
                config=PoolConfig(
                    spill_threshold=10 ** 9, restart_workers=False
                ),
            )
            config = ServerConfig(max_batch=4096, batch_window_ms=0.0)
            async with Server(
                backend="r4csa-lut", modulus=SLOW_MODULUS, config=config,
                executor=pool,
            ) as server:
                home = pool.home_shard(SLOW_MODULUS)
                pairs = [(i + 2, i + 3) for i in range(400)]
                task = asyncio.ensure_future(server.multiply_batch(pairs))
                await _wait_for(lambda: pool.shard_depths()[home] > 0)
                os.kill(pool._shards[home].process.pid, signal.SIGKILL)
                response = await task  # retried on the surviving shard
                assert response.shard != home
                # Let several monitor ticks pass over the unreplaced corpse.
                await asyncio.sleep(0.2)
                assert pool.metrics.rollup()["worker_restarts"] == 1
                assert not pool._shards[home].alive
            await pool.close()

        run(scenario())

    def test_server_close_drains_with_work_in_flight(self):
        """``stop(drain=True)`` resolves every admitted request."""

        async def scenario():
            config = ServerConfig(max_batch=64, batch_window_ms=0.0)
            server = Server(
                backend="r4csa-lut", modulus=SLOW_MODULUS, config=config,
                workers=2,
            )
            await server.start()
            pairs = [(i + 2, i + 3) for i in range(64)]
            tasks = [
                asyncio.ensure_future(server.multiply_batch(pairs))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await server.stop(drain=True)
            responses = await asyncio.gather(*tasks)
            expected = tuple(a * b % SLOW_MODULUS for a, b in pairs)
            assert all(
                response.values == expected for response in responses
            )
            assert server.metrics.completed_requests == 4

        run(scenario())

    def test_stop_without_drain_fails_inflight_pool_batches(self):
        async def scenario():
            config = ServerConfig(max_batch=4096, batch_window_ms=0.0)
            server = Server(
                backend="r4csa-lut", modulus=SLOW_MODULUS, config=config,
                workers=1,
            )
            await server.start()
            executor = server.executor
            pairs = [(i + 2, i + 3) for i in range(400)]
            task = asyncio.ensure_future(server.multiply_batch(pairs))
            await _wait_for(lambda: executor.outstanding > 0)
            await server.stop(drain=False)
            with pytest.raises(Exception):
                await task

        run(scenario())
