"""Tests for the async serving layer: Server, Client, metrics, self-test."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    ServiceError,
)
from repro.service import (
    Client,
    Server,
    ServerConfig,
    run_self_test,
)
from repro.workloads import ntt_graph, product_tree_graph


def run(coroutine):
    return asyncio.run(coroutine)


class TestLifecycle:
    def test_context_manager_starts_and_stops(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                assert server.running
                response = await server.multiply(5, 7)
                assert response.value == 35
            assert not server.running

        run(scenario())

    def test_submit_without_start_is_an_error(self):
        async def scenario():
            server = Server(backend="schoolbook", modulus=997)
            with pytest.raises(ServiceError, match="not running"):
                await server.multiply(1, 2)

        run(scenario())

    def test_stop_without_drain_fails_pending(self):
        async def scenario():
            config = ServerConfig(batch_window_ms=50.0, max_batch=1024)
            server = Server(backend="schoolbook", modulus=997, config=config)
            await server.start()
            task = asyncio.ensure_future(server.multiply(3, 4))
            await asyncio.sleep(0)  # enqueue before stopping
            await server.stop(drain=False)
            with pytest.raises(ServiceError):
                await task

        run(scenario())


class TestRequests:
    def test_batch_request_round_trip(self, rng):
        async def scenario():
            modulus = 65521
            async with Server(backend="barrett", modulus=modulus) as server:
                pairs = [
                    (rng.randrange(modulus), rng.randrange(modulus))
                    for _ in range(12)
                ]
                response = await server.multiply_batch(pairs)
                assert response.values == tuple(
                    a * b % modulus for a, b in pairs
                )
                assert response.kind == "pairs"
                assert response.backend == "barrett"

        run(scenario())

    def test_graph_request_round_trip(self, rng):
        async def scenario():
            modulus = 997
            values = [rng.randrange(1, modulus) for _ in range(16)]
            reference = 1
            for value in values:
                reference = reference * value % modulus
            async with Server(backend="montgomery", modulus=modulus) as server:
                response = await server.submit_graph(product_tree_graph(values))
                assert response.values == (reference,)
                assert response.kind == "graph"
                assert response.batched_pairs == 15

        run(scenario())

    def test_structural_graph_is_rejected_at_submit(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                with pytest.raises(ConfigurationError, match="structural"):
                    await server.submit_graph(ntt_graph(8))

        run(scenario())

    def test_empty_batch_is_rejected(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                with pytest.raises(ConfigurationError, match="at least one"):
                    await server.multiply_batch([])

        run(scenario())

    def test_concurrent_requests_coalesce_into_batches(self, rng):
        async def scenario():
            modulus = 65521
            config = ServerConfig(max_batch=64, batch_window_ms=20.0)
            async with Server(
                backend="barrett", modulus=modulus, config=config
            ) as server:
                pairs = [
                    (rng.randrange(modulus), rng.randrange(modulus))
                    for _ in range(8)
                ]
                responses = await asyncio.gather(
                    *(server.multiply(a, b) for a, b in pairs)
                )
                for (a, b), response in zip(pairs, responses):
                    assert response.value == a * b % modulus
                # Every single-pair request rode a multi-pair batch call.
                assert server.metrics.batches < len(pairs)
                assert any(r.batched_pairs > 1 for r in responses)

        run(scenario())


class TestBatchCap:
    def test_coalescing_honours_max_batch(self, rng):
        async def scenario():
            modulus = 65521
            config = ServerConfig(max_batch=8, batch_window_ms=20.0)
            async with Server(
                backend="barrett", modulus=modulus, config=config
            ) as server:
                pairs = [
                    (rng.randrange(modulus), rng.randrange(modulus))
                    for _ in range(6)
                ]
                first, second = await asyncio.gather(
                    server.multiply_batch(pairs, tenant="a"),
                    server.multiply_batch(pairs, tenant="b"),
                )
                # 6 + 6 > 8: the requests must not share one engine call.
                assert first.batched_pairs == 6
                assert second.batched_pairs == 6
                assert server.metrics.batches == 2

        run(scenario())

    def test_oversized_single_request_still_runs(self, rng):
        async def scenario():
            modulus = 997
            config = ServerConfig(max_batch=4)
            async with Server(
                backend="schoolbook", modulus=modulus, config=config
            ) as server:
                pairs = [
                    (rng.randrange(modulus), rng.randrange(modulus))
                    for _ in range(10)
                ]
                response = await server.multiply_batch(pairs)
                assert response.values == tuple(
                    a * b % modulus for a, b in pairs
                )

        run(scenario())


class TestTenantStateCleanup:
    def test_drained_tenants_are_forgotten(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                for index in range(20):
                    await server.multiply(index + 1, 3, tenant=f"t{index}")
                # Completed tenants leave no queue, rotation slot or
                # pending counter behind.
                assert server.pending == 0
                assert not server._tenants
                assert not server._rr
                assert not server._pending_by_tenant
                # Metrics still remember every tenant's completions.
                assert len(server.metrics.per_tenant_completed) == 20

        run(scenario())


class TestAdmissionAndDeadlines:
    def test_global_backpressure(self):
        async def scenario():
            config = ServerConfig(max_pending=2)
            async with Server(
                backend="schoolbook", modulus=997, config=config
            ) as server:
                server._pending = config.max_pending  # queue artificially full
                with pytest.raises(AdmissionError, match="queue full"):
                    await server.multiply(1, 2)
                server._pending = 0
                assert server.metrics.rejected_requests == 1

        run(scenario())

    def test_per_tenant_backpressure(self):
        async def scenario():
            config = ServerConfig(max_pending_per_tenant=1)
            async with Server(
                backend="schoolbook", modulus=997, config=config
            ) as server:
                server._pending_by_tenant["greedy"] = 1
                with pytest.raises(AdmissionError, match="greedy"):
                    await server.multiply(1, 2, tenant="greedy")
                # Other tenants are unaffected.
                server._pending_by_tenant["greedy"] = 0
                response = await server.multiply(3, 5, tenant="patient")
                assert response.value == 15

        run(scenario())

    def test_expired_deadline_fails_the_request(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                with pytest.raises(DeadlineError, match="deadline exceeded"):
                    await server.multiply(1, 2, deadline_ms=-1.0)
                assert server.metrics.deadline_misses == 1

        run(scenario())

    def test_generous_deadline_completes(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                response = await server.multiply(6, 7, deadline_ms=5000.0)
                assert response.value == 42

        run(scenario())


class TestOperandValidation:
    def test_bad_operands_fail_only_the_submitting_caller(self, rng):
        async def scenario():
            modulus = 65521
            config = ServerConfig(batch_window_ms=20.0)
            async with Server(
                backend="barrett", modulus=modulus, config=config
            ) as server:
                good = server.multiply(3, 5, tenant="good")
                bad = server.multiply(modulus, 2, tenant="bad")  # a >= p
                results = await asyncio.gather(
                    good, bad, return_exceptions=True
                )
                assert results[0].value == 15  # not poisoned by the bad job
                from repro.errors import OperandRangeError

                assert isinstance(results[1], OperandRangeError)

        run(scenario())

    def test_explicit_default_modulus_coalesces_with_none(self, rng):
        async def scenario():
            modulus = 997
            config = ServerConfig(batch_window_ms=20.0)
            async with Server(
                backend="schoolbook", modulus=modulus, config=config
            ) as server:
                first, second = await asyncio.gather(
                    server.multiply(3, 5),                      # modulus=None
                    server.multiply(7, 11, modulus=modulus),    # explicit
                )
                assert (first.value, second.value) == (15, 77)
                # Same effective modulus: one engine batch, not two.
                assert server.metrics.batches == 1
                assert first.batched_pairs == 2

        run(scenario())

    def test_missing_modulus_fails_at_submit(self):
        async def scenario():
            from repro.errors import ModulusError

            async with Server(backend="schoolbook") as server:
                with pytest.raises(ModulusError, match="no modulus"):
                    await server.multiply(1, 2)

        run(scenario())


class TestPriority:
    def test_higher_priority_jobs_dispatch_first_within_a_tenant(self):
        async def scenario():
            order = []
            config = ServerConfig(batch_window_ms=0.0, max_batch=1)
            async with Server(
                backend="schoolbook", modulus=997, config=config
            ) as server:
                async def tracked(a, priority):
                    response = await server.multiply(a, 2, priority=priority)
                    order.append((priority, response.value))

                # Enqueue three jobs in one tick; the dispatcher then
                # serves them one per batch, highest priority first.
                await asyncio.gather(
                    tracked(1, 0), tracked(2, 5), tracked(3, 1)
                )
            assert sorted(order, key=lambda item: -item[0]) == order

        run(scenario())


class TestFairness:
    def test_round_robin_across_tenant_queues(self):
        async def scenario():
            config = ServerConfig(batch_window_ms=20.0)
            async with Server(
                backend="schoolbook", modulus=997, config=config
            ) as server:
                tenants = ("a", "b", "c")
                responses = await asyncio.gather(*(
                    server.multiply(i + 1, 2, tenant=tenants[i % 3])
                    for i in range(9)
                ))
                assert all(r.values for r in responses)
                completed = server.metrics.per_tenant_completed
                assert set(completed) == set(tenants)
                assert all(count == 3 for count in completed.values())

        run(scenario())


class TestClient:
    def test_client_binds_tenant_and_deadline(self):
        async def scenario():
            async with Server(backend="schoolbook", modulus=997) as server:
                client = Client(server, tenant="wallet", deadline_ms=5000.0)
                response = await client.multiply(10, 20)
                assert response.tenant == "wallet"
                assert response.value == 200
                batch = await client.multiply_batch([(2, 3), (4, 5)])
                assert batch.values == (6, 20)

        run(scenario())


class TestMetrics:
    def test_summary_shape(self, rng):
        async def scenario():
            modulus = 997
            async with Server(backend="montgomery", modulus=modulus) as server:
                await server.multiply_batch(
                    [(rng.randrange(modulus), rng.randrange(modulus))
                     for _ in range(4)]
                )
                summary = server.metrics_summary()
            for key in (
                "completed_requests",
                "requests_per_second",
                "latency",
                "context_cache",
                "engine_multiplications",
                "mean_batch_size",
            ):
                assert key in summary
            assert summary["completed_requests"] == 1
            assert summary["engine_multiplications"] == 4
            assert summary["context_cache"]["misses"] == 1

        run(scenario())


class TestMetricsAcrossRestarts:
    def test_elapsed_time_accumulates_over_start_stop_cycles(self):
        import time

        from repro.service import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.start()
        time.sleep(0.01)
        metrics.stop()
        first_run = metrics.elapsed_seconds
        assert first_run >= 0.01
        metrics.start()  # restart must not discard the first run's time
        time.sleep(0.01)
        metrics.stop()
        assert metrics.elapsed_seconds >= first_run + 0.01

    def test_server_restart_keeps_throughput_honest(self):
        async def scenario():
            server = Server(backend="schoolbook", modulus=997)
            await server.start()
            await server.multiply(2, 3)
            await server.stop()
            elapsed_first = server.metrics.elapsed_seconds
            await server.start()
            await server.multiply(4, 5)
            await server.stop()
            assert server.metrics.completed_requests == 2
            assert server.metrics.elapsed_seconds >= elapsed_first

        run(scenario())


class TestSelfTest:
    def test_quick_self_test_verifies_everything(self):
        summary = run_self_test(quick=True, backend="montgomery")
        assert summary["failed_requests"] == 0
        assert summary["verified_requests"] == summary["completed_requests"]
        assert summary["completed_requests"] == (
            summary["tenants"] * summary["requests_per_tenant"]
        )
        assert summary["rejected_requests"] == 0
        # Both tenants made identical progress (fairness end to end).
        counts = set(summary["per_tenant_completed"].values())
        assert len(counts) == 1
