"""Tests for the WorkloadGraph core: construction, levels, views."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.modsram.chip import MultiplicationJob
from repro.workloads import Ref, WorkloadGraph


def diamond() -> WorkloadGraph:
    """a -> (b, c) -> d: the smallest graph with real parallelism."""
    graph = WorkloadGraph("diamond")
    a = graph.add("a")
    b = graph.add("b", deps=[a])
    c = graph.add("c", deps=[a])
    graph.add("d", deps=[b, c])
    return graph


class TestConstruction:
    def test_insertion_is_topological(self):
        graph = diamond()
        assert len(graph) == 4
        for node in graph:
            assert all(dep < node.index for dep in node.deps)

    def test_forward_dependency_is_rejected(self):
        graph = WorkloadGraph()
        graph.add("a")
        with pytest.raises(ConfigurationError, match="not an earlier node"):
            graph.add("b", deps=[5])

    def test_self_dependency_is_rejected(self):
        graph = WorkloadGraph()
        with pytest.raises(ConfigurationError):
            graph.add("a", deps=[0])

    def test_operand_refs_become_deps(self):
        graph = WorkloadGraph()
        a = graph.add("a", a=3, b=5)
        b = graph.add("b", a=Ref(a), b=7)
        assert graph.node(b).deps == (a,)
        assert graph.executable

    def test_metadata_round_trips(self):
        graph = WorkloadGraph()
        index = graph.add(
            "key", tag="op", field_name="bn254.base", priority=3
        )
        node = graph.node(index)
        assert node.tag == "op"
        assert node.field_name == "bn254.base"
        assert node.priority == 3
        assert node.job() == MultiplicationJob(multiplicand="key", tag="op")


class TestStructure:
    def test_levels_partition_the_nodes(self):
        graph = diamond()
        levels = graph.topological_levels()
        assert levels == [[0], [1, 2], [3]]
        assert graph.depth == 3
        assert graph.width == 2
        assert graph.parallelism == pytest.approx(4 / 3)

    def test_roots_and_sinks(self):
        graph = diamond()
        assert graph.roots() == [0]
        assert graph.sinks() == [3]

    def test_dependents_inverts_deps(self):
        graph = diamond()
        assert graph.dependents() == [[1, 2], [3], [3], []]

    def test_empty_graph(self):
        graph = WorkloadGraph()
        assert graph.depth == 0
        assert graph.width == 0
        assert graph.parallelism == 0.0
        assert not graph.executable
        assert list(graph.to_jobs()) == []

    def test_executable_requires_all_operands(self):
        graph = WorkloadGraph()
        graph.add("a", a=1, b=2)
        assert graph.executable
        graph.add("b")  # structural node
        assert not graph.executable


class TestViews:
    def test_to_jobs_preserves_insertion_order(self):
        graph = diamond()
        jobs = list(graph.to_jobs())
        assert [job.multiplicand for job in jobs] == ["a", "b", "c", "d"]
        assert all(isinstance(job, MultiplicationJob) for job in jobs)

    def test_linearized_is_a_chain(self):
        chain = diamond().linearized()
        assert chain.depth == len(chain) == 4
        assert chain.width == 1
        for node in chain:
            expected = (node.index - 1,) if node.index else ()
            assert node.deps == expected

    def test_linearized_preserves_payload(self):
        graph = WorkloadGraph()
        a = graph.add("a", a=3, b=5, tag="t", priority=1)
        graph.add("b", a=Ref(a), b=7)
        chain = graph.linearized()
        assert chain.node(0).a == 3 and chain.node(0).tag == "t"
        assert chain.node(1).a == Ref(a)
        assert chain.executable

    def test_as_dict_summary(self):
        data = diamond().as_dict()
        assert data["nodes"] == 4
        assert data["edges"] == 4
        assert data["depth"] == 3
        assert data["width"] == 2
        assert data["lut_groups"] == 4
        assert data["executable"] is False
