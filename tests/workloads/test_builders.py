"""Tests for the workload graph builders and their stream parity."""

from __future__ import annotations

import pytest

from repro.ecc.streams import (
    ecdsa_sign_stream,
    point_operation_jobs,
    scalar_multiplication_stream,
)
from repro.errors import OperandRangeError
from repro.modsram.scheduler import DOUBLING_SEQUENCE, MIXED_ADDITION_SEQUENCE
from repro.workloads import (
    ecdsa_sign_graph,
    msm_graph,
    ntt_graph,
    point_operation_graph,
    product_tree_graph,
    scalar_multiplication_graph,
)
from repro.zkp.streams import msm_stream, ntt_stream


class TestStreamParity:
    """graph.to_jobs() must reproduce the legacy streams exactly."""

    def test_point_operation(self):
        graph = point_operation_graph(DOUBLING_SEQUENCE, tag="dbl[0]")
        assert list(graph.to_jobs()) == list(
            point_operation_jobs(DOUBLING_SEQUENCE, "dbl[0]")
        )

    def test_scalar_multiplication(self):
        graph = scalar_multiplication_graph(48)
        assert list(graph.to_jobs()) == list(scalar_multiplication_stream(48))

    def test_ecdsa_sign(self):
        graph = ecdsa_sign_graph(32, signatures=2)
        assert list(graph.to_jobs()) == list(
            ecdsa_sign_stream(32, signatures=2)
        )

    def test_ntt(self):
        graph = ntt_graph(128)
        assert list(graph.to_jobs()) == list(ntt_stream(128))

    def test_msm(self):
        graph = msm_graph(8, window_bits=2, scalar_bits=8)
        assert list(graph.to_jobs()) == list(
            msm_stream(8, window_bits=2, scalar_bits=8)
        )


class TestPointOperationStructure:
    def test_doubling_has_intra_op_parallelism(self):
        graph = point_operation_graph(DOUBLING_SEQUENCE, tag="dbl")
        # yy, xx and z3 are mutually independent: depth far below node count.
        assert graph.depth < len(graph)
        assert graph.width >= 3

    def test_mixed_addition_dependencies_follow_the_formula(self):
        graph = point_operation_graph(MIXED_ADDITION_SEQUENCE, tag="add")
        by_product = {
            name: graph.node(index)
            for index, (name, _, _) in enumerate(MIXED_ADDITION_SEQUENCE)
        }
        # hh = h^2 with h = u2 - x1: must depend on the u2 node.
        assert by_product["u2"].index in by_product["hh"].deps
        # t1 = r * (v_minus_x3) joins r (via s2), v, rr and hhh.
        assert by_product["s2"].index in by_product["t1"].deps
        assert by_product["v"].index in by_product["t1"].deps
        assert by_product["rr"].index in by_product["t1"].deps


class TestScalarMultiplicationStructure:
    def test_ladder_steps_chain(self):
        graph = scalar_multiplication_graph(8, additions=0)
        # Depth grows with the ladder: each doubling waits for the previous.
        assert graph.depth >= 8
        # But each step contributes fewer levels than multiplications.
        assert graph.depth < len(graph)

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            scalar_multiplication_graph(0)


class TestEcdsaStructure:
    def test_inversion_overlaps_the_ladder(self):
        graph = ecdsa_sign_graph(16)
        levels = graph.topological_levels()
        # The inversion chain starts at level 0 (independent of the ladder):
        # some level must contain both a ladder node and an inversion node.
        tags_at_level0 = {graph.node(index).tag for index in levels[0]}
        assert "inversion" in tags_at_level0
        assert any(tag.startswith("dbl[") for tag in tags_at_level0)

    def test_signatures_are_independent(self):
        one = ecdsa_sign_graph(16, signatures=1)
        four = ecdsa_sign_graph(16, signatures=4)
        # Same critical-path depth, four times the nodes: pure width.
        assert four.depth == one.depth
        assert len(four) == 4 * len(one)
        assert four.width == 4 * one.width

    def test_s_computation_joins_both_strands(self):
        graph = ecdsa_sign_graph(8)
        final = graph.nodes[-1]
        assert final.tag == "s-computation"
        assert len(final.deps) >= 2
        assert graph.sinks() == [final.index]

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            ecdsa_sign_graph(16, signatures=0)
        with pytest.raises(OperandRangeError):
            ecdsa_sign_graph(0)


class TestNttStructure:
    def test_levels_are_the_stages(self):
        size = 64
        graph = ntt_graph(size)
        levels = graph.topological_levels()
        assert len(levels) == 6  # log2(64)
        assert all(len(level) == size // 2 for level in levels)
        assert graph.width == size // 2

    def test_butterflies_depend_on_both_inputs(self):
        graph = ntt_graph(8)
        levels = graph.topological_levels()
        for index in levels[1]:
            assert len(graph.node(index).deps) == 2

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            ntt_graph(3)
        with pytest.raises(OperandRangeError):
            ntt_graph(0)


class TestMsmStructure:
    def test_windows_parallel_until_horner(self):
        graph = msm_graph(8, window_bits=2, scalar_bits=8)
        # Bucket chains across windows are independent: width exceeds one
        # point operation by a wide margin.
        assert graph.width > len(MIXED_ADDITION_SEQUENCE)
        assert graph.depth < len(graph)

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            msm_graph(0)
        with pytest.raises(OperandRangeError):
            msm_graph(8, scalar_bits=0)


class TestProductTree:
    def test_structure_and_executability(self):
        graph = product_tree_graph(range(2, 18))  # 16 leaves
        assert len(graph) == 15
        assert graph.depth == 4
        assert graph.width == 8
        assert graph.executable
        assert len(graph.sinks()) == 1

    def test_odd_leaf_counts_carry_over(self):
        graph = product_tree_graph([2, 3, 5])
        assert len(graph) == 2
        assert graph.depth == 2

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            product_tree_graph([7])
