"""Tests for level-batched graph execution through the Engine."""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.errors import ConfigurationError
from repro.workloads import (
    Ref,
    WorkloadGraph,
    execute_graph,
    ntt_graph,
    product_tree_graph,
)


def tree_reference(values, modulus):
    product = 1
    for value in values:
        product = product * value % modulus
    return product


class TestExecuteGraph:
    def test_product_tree_matches_reference(self, rng):
        modulus = 997
        values = [rng.randrange(1, modulus) for _ in range(32)]
        engine = Engine(backend="montgomery", modulus=modulus)
        execution = execute_graph(engine, product_tree_graph(values))
        assert execution.result == tree_reference(values, modulus)
        assert execution.batches == 5  # log2(32) levels
        assert execution.max_batch == 16
        assert execution.backend == "montgomery"

    def test_batched_equals_sequential(self, rng):
        modulus = 65521
        values = [rng.randrange(1, modulus) for _ in range(16)]
        graph = product_tree_graph(values)
        level_batched = execute_graph(
            Engine(backend="barrett", modulus=modulus), graph
        )
        sequential = execute_graph(
            Engine(backend="barrett", modulus=modulus), graph.linearized()
        )
        assert level_batched.values == sequential.values
        # The chain degenerates to one node per batch.
        assert sequential.batches == len(graph)

    def test_constants_are_range_reduced(self):
        engine = Engine(backend="schoolbook", modulus=97)
        graph = WorkloadGraph("raw")
        a = graph.add("n0", a=1000, b=2000)  # leaves exceed the modulus
        graph.add("n1", a=Ref(a), b=3000)
        execution = execute_graph(engine, graph)
        expected = (1000 % 97) * (2000 % 97) % 97
        expected = expected * (3000 % 97) % 97
        assert execution.values[-1] == expected

    def test_structural_graph_is_rejected(self):
        engine = Engine(backend="schoolbook", modulus=97)
        with pytest.raises(ConfigurationError, match="structural"):
            execute_graph(engine, ntt_graph(8))

    def test_modeled_cycles_accumulate(self):
        engine = Engine(backend="r4csa-lut", modulus=0xFFF1)
        graph = product_tree_graph([3, 5, 7, 11])
        execution = execute_graph(engine, graph)
        per_call = engine.context().modeled_cycles_per_multiply
        assert execution.modeled_cycles == per_call * len(graph)

    def test_as_dict_is_json_clean(self, rng):
        import json

        engine = Engine(backend="schoolbook", modulus=251)
        execution = execute_graph(engine, product_tree_graph([2, 3, 5, 7]))
        payload = json.loads(json.dumps(execution.as_dict()))
        assert payload["nodes"] == 3
        assert payload["results"] == [2 * 3 * 5 * 7 % 251]
