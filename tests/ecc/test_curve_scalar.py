"""Tests for curve construction, the group law and scalar multiplication."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import (
    AffinePoint,
    CURVE_SPECS,
    PrimeField,
    build_curve,
    get_curve,
    montgomery_ladder,
    scalar_multiply,
    scalar_multiply_wnaf,
    wnaf_digits,
)
from repro.ecc.curve import EllipticCurve
from repro.errors import CurveError, OperandRangeError

SECP256K1_2G = (
    0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5,
    0x1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A,
)


@pytest.fixture(scope="module")
def secp():
    return get_curve("secp256k1")


@pytest.fixture(scope="module")
def bn254():
    return get_curve("bn254")


class TestCurveDatabase:
    def test_known_curves_present(self):
        assert set(CURVE_SPECS) == {"secp256k1", "bn254", "p256"}

    def test_bitwidths(self):
        assert CURVE_SPECS["secp256k1"].bitwidth == 256
        assert CURVE_SPECS["bn254"].bitwidth == 254
        assert CURVE_SPECS["p256"].bitwidth == 256

    def test_generators_satisfy_curve_equations(self):
        for name in CURVE_SPECS:
            curve = get_curve(name)
            assert curve.contains(curve.generator)

    def test_generators_have_the_stated_order(self):
        for name in CURVE_SPECS:
            curve = get_curve(name)
            spec = CURVE_SPECS[name]
            assert scalar_multiply(curve, spec.order, curve.generator).is_infinity

    def test_unknown_curve_rejected(self):
        with pytest.raises(CurveError):
            get_curve("curve25519")

    def test_case_insensitive_lookup(self):
        assert get_curve("BN254").name == "bn254"

    def test_build_curve_field_mismatch_rejected(self):
        with pytest.raises(CurveError):
            build_curve(CURVE_SPECS["bn254"], field=PrimeField(97))

    def test_curves_registry_mapping(self):
        from repro.ecc import CURVES

        assert "bn254" in CURVES
        assert CURVES["bn254"].field_modulus == CURVE_SPECS["bn254"].field_modulus
        assert sorted(CURVES.keys()) == sorted(CURVE_SPECS.keys())
        with pytest.raises(CurveError):
            CURVES["nope"]


class TestGroupLaw:
    def test_known_point_doubling(self, secp):
        doubled = secp.double(secp.generator)
        assert doubled.coordinates() == SECP256K1_2G

    def test_addition_is_commutative(self, secp):
        g = secp.generator
        two_g = secp.double(g)
        three_g_a = secp.add(g, two_g)
        three_g_b = secp.add(two_g, g)
        assert three_g_a == three_g_b

    def test_identity_element(self, secp):
        g = secp.generator
        assert secp.add(g, secp.infinity()) == g
        assert secp.add(secp.infinity(), g) == g

    def test_inverse_element(self, secp):
        g = secp.generator
        assert secp.add(g, secp.negate(g)).is_infinity

    def test_double_equals_add_to_itself(self, secp):
        g = secp.generator
        assert secp.double(g) == secp.add(g, g)

    def test_point_validation(self, secp):
        with pytest.raises(CurveError):
            secp.affine_point(1, 1)

    def test_infinity_has_no_coordinates(self):
        with pytest.raises(CurveError):
            AffinePoint.infinity().coordinates()

    def test_jacobian_round_trip(self, secp):
        g = secp.generator
        assert secp.to_affine(secp.to_jacobian(g)) == g
        assert secp.to_affine(secp.to_jacobian(secp.infinity())).is_infinity

    def test_mixed_addition_matches_general_addition(self, secp, rng):
        g = secp.generator
        p = scalar_multiply(curve=secp, scalar=rng.randrange(3, 1 << 64), point=g)
        q = scalar_multiply(curve=secp, scalar=rng.randrange(3, 1 << 64), point=g)
        general = secp.jacobian_add(secp.to_jacobian(p), secp.to_jacobian(q))
        mixed = secp.jacobian_add_mixed(secp.to_jacobian(p), q)
        assert secp.to_affine(general) == secp.to_affine(mixed)

    def test_singular_curve_rejected(self):
        with pytest.raises(CurveError):
            EllipticCurve("bad", PrimeField(97), a=0, b=0)

    def test_curve_without_generator(self):
        curve = EllipticCurve("nameless", PrimeField(97), a=2, b=3)
        with pytest.raises(CurveError):
            _ = curve.generator

    def test_associativity_small_sample(self, secp):
        g = secp.generator
        p2 = secp.double(g)
        p3 = secp.add(p2, g)
        assert secp.add(secp.add(g, p2), p3) == secp.add(g, secp.add(p2, p3))

    def test_nist_curve_with_nonzero_a(self):
        p256 = get_curve("p256")
        doubled = p256.double(p256.generator)
        assert p256.contains(doubled)


class TestScalarMultiplication:
    def test_small_multiples(self, secp):
        g = secp.generator
        accumulated = secp.infinity()
        for k in range(1, 8):
            accumulated = secp.add(accumulated, g)
            assert scalar_multiply(secp, k, g) == accumulated

    def test_zero_scalar(self, secp):
        assert scalar_multiply(secp, 0, secp.generator).is_infinity

    def test_negative_scalar_rejected(self, secp):
        with pytest.raises(OperandRangeError):
            scalar_multiply(secp, -1, secp.generator)

    @given(st.integers(1, 2**128 - 1))
    @settings(max_examples=10, deadline=None)
    def test_algorithms_agree(self, scalar):
        curve = get_curve("secp256k1")
        g = curve.generator
        expected = scalar_multiply(curve, scalar, g)
        assert scalar_multiply_wnaf(curve, scalar, g) == expected
        assert montgomery_ladder(curve, scalar, g) == expected

    def test_distributivity_over_scalars(self, bn254, rng):
        g = bn254.generator
        k1 = rng.randrange(1, 1 << 64)
        k2 = rng.randrange(1, 1 << 64)
        left = scalar_multiply(bn254, k1 + k2, g)
        right = bn254.add(scalar_multiply(bn254, k1, g), scalar_multiply(bn254, k2, g))
        assert left == right

    def test_wnaf_digit_properties(self):
        for scalar in (1, 2, 255, 0xDEADBEEF, (1 << 96) - 7):
            digits = wnaf_digits(scalar, 4)
            reconstructed = sum(d << i for i, d in enumerate(digits))
            assert reconstructed == scalar
            for digit in digits:
                assert digit == 0 or (digit % 2 == 1 and abs(digit) < 8)

    def test_wnaf_width_validated(self):
        with pytest.raises(OperandRangeError):
            wnaf_digits(5, 1)

    def test_wnaf_scalar_validated(self):
        with pytest.raises(OperandRangeError):
            wnaf_digits(-5, 4)
