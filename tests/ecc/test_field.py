"""Tests for the prime-field layer with pluggable multiplier backends."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import R4CSALutMultiplier
from repro.ecc import PrimeField
from repro.errors import ModulusError, OperandRangeError
from repro.instrumentation import OperationCounter

P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF  # P-256


class TestFieldConstruction:
    def test_element_is_reduced(self):
        field = PrimeField(97)
        assert field.element(200).value == 200 % 97
        assert field.element(-1).value == 96

    def test_identities(self):
        field = PrimeField(97)
        assert field.zero().is_zero()
        assert field.one().value == 1

    def test_bitwidth(self):
        assert PrimeField(P).bitwidth == 256

    def test_even_or_tiny_modulus_rejected(self):
        with pytest.raises(ModulusError):
            PrimeField(100)
        with pytest.raises(ModulusError):
            PrimeField(2)

    def test_equality_and_hash(self):
        assert PrimeField(97) == PrimeField(97)
        assert PrimeField(97) != PrimeField(101)
        assert hash(PrimeField(97)) == hash(PrimeField(97))


class TestArithmetic:
    @pytest.fixture()
    def field(self) -> PrimeField:
        return PrimeField(97)

    def test_add_sub_mul(self, field):
        a, b = field.element(45), field.element(77)
        assert (a + b).value == (45 + 77) % 97
        assert (a - b).value == (45 - 77) % 97
        assert (a * b).value == (45 * 77) % 97

    def test_negation_and_division(self, field):
        a = field.element(45)
        assert (-a).value == 97 - 45
        assert (a / a).value == 1

    def test_power(self, field):
        a = field.element(3)
        assert (a ** 10).value == pow(3, 10, 97)
        assert (a ** 0).value == 1
        assert (a ** -1).value == pow(3, 95, 97)

    def test_inverse(self, field):
        a = field.element(45)
        assert (a.inverse() * a).value == 1

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(OperandRangeError):
            field.zero().inverse()

    def test_square(self, field):
        assert field.element(9).square().value == 81

    def test_mixing_fields_rejected(self, field):
        other = PrimeField(101)
        with pytest.raises(OperandRangeError):
            field.element(1) + other.element(1)

    def test_int_operands_are_coerced(self, field):
        assert (field.element(10) * 20).value == 200 % 97
        assert field.element(10) == 10 + 97

    def test_element_range_validated(self, field):
        from repro.ecc.field import FieldElement

        with pytest.raises(OperandRangeError):
            FieldElement(97, field)

    @given(st.integers(0, P - 1), st.integers(0, P - 1))
    @settings(max_examples=40, deadline=None)
    def test_field_axioms_sample(self, a, b):
        field = PrimeField(P)
        x, y = field.element(a), field.element(b)
        assert (x + y).value == (a + b) % P
        assert (x * y).value == (a * b) % P
        assert ((x + y) * (x - y)).value == (a * a - b * b) % P


class TestBackendsAndCounting:
    def test_r4csa_backend_matches_schoolbook(self, rng):
        reference = PrimeField(P)
        hardware_algorithm = PrimeField(P, multiplier=R4CSALutMultiplier())
        for _ in range(5):
            a, b = rng.randrange(P), rng.randrange(P)
            assert (
                reference.element(a) * reference.element(b)
            ).value == (hardware_algorithm.element(a) * hardware_algorithm.element(b)).value

    def test_operation_counter(self):
        counter = OperationCounter("test")
        field = PrimeField(97, counter=counter)
        a, b = field.element(5), field.element(9)
        _ = a * b
        _ = a + b
        _ = a - b
        _ = a.inverse()
        assert counter.count("modmul") == 1
        assert counter.count("modadd") == 1
        assert counter.count("modsub") == 1
        assert counter.count("modinv") == 1

    def test_inversion_cost_estimate(self):
        field = PrimeField(P)
        assert field.inversion_multiplication_cost() == 256 + 128

    def test_repr_mentions_backend(self):
        assert "schoolbook" in repr(PrimeField(97))
