"""Tests for the ECDSA application layer."""

from __future__ import annotations

import pytest

from repro.ecc import Ecdsa, PrimeField, build_curve, get_curve
from repro.ecc.curve import AffinePoint, EllipticCurve
from repro.ecc.curves_data import CURVE_SPECS
from repro.core import R4CSALutMultiplier
from repro.errors import CurveError, OperandRangeError

MESSAGE = b"ModSRAM: modular multiplication in SRAM"


@pytest.fixture(scope="module")
def ecdsa() -> Ecdsa:
    return Ecdsa(get_curve("secp256k1"))


@pytest.fixture(scope="module")
def keypair(ecdsa) -> "KeyPair":
    return ecdsa.generate_keypair(0x1B0B5C0FFEE1234567890ABCDEF)


class TestKeyGeneration:
    def test_public_key_is_on_the_curve(self, ecdsa, keypair):
        assert ecdsa.curve.contains(keypair.public_key)

    def test_private_key_range_checked(self, ecdsa):
        with pytest.raises(OperandRangeError):
            ecdsa.generate_keypair(0)
        with pytest.raises(OperandRangeError):
            ecdsa.generate_keypair(ecdsa.order)

    def test_curve_without_order_rejected(self):
        curve = EllipticCurve("orderless", PrimeField(97), a=2, b=3)
        with pytest.raises(CurveError):
            Ecdsa(curve)


class TestSignAndVerify:
    def test_round_trip(self, ecdsa, keypair):
        signature = ecdsa.sign(keypair.private_key, MESSAGE)
        assert ecdsa.verify(keypair.public_key, MESSAGE, signature)

    def test_signing_is_deterministic(self, ecdsa, keypair):
        first = ecdsa.sign(keypair.private_key, MESSAGE)
        second = ecdsa.sign(keypair.private_key, MESSAGE)
        assert first == second

    def test_different_messages_give_different_signatures(self, ecdsa, keypair):
        assert ecdsa.sign(keypair.private_key, b"a") != ecdsa.sign(
            keypair.private_key, b"b"
        )

    def test_tampered_message_rejected(self, ecdsa, keypair):
        signature = ecdsa.sign(keypair.private_key, MESSAGE)
        assert not ecdsa.verify(keypair.public_key, MESSAGE + b"!", signature)

    def test_wrong_key_rejected(self, ecdsa, keypair):
        other = ecdsa.generate_keypair(0xDEAD_BEEF_1234)
        signature = ecdsa.sign(keypair.private_key, MESSAGE)
        assert not ecdsa.verify(other.public_key, MESSAGE, signature)

    def test_malformed_signature_rejected(self, ecdsa, keypair):
        from repro.ecc.ecdsa import Signature

        assert not ecdsa.verify(keypair.public_key, MESSAGE, Signature(0, 1))
        assert not ecdsa.verify(keypair.public_key, MESSAGE, Signature(1, 0))
        assert not ecdsa.verify(
            keypair.public_key, MESSAGE, Signature(ecdsa.order, 1)
        )

    def test_infinity_public_key_rejected(self, ecdsa, keypair):
        signature = ecdsa.sign(keypair.private_key, MESSAGE)
        assert not ecdsa.verify(AffinePoint.infinity(), MESSAGE, signature)

    def test_private_key_range_checked_on_sign(self, ecdsa):
        with pytest.raises(OperandRangeError):
            ecdsa.sign(0, MESSAGE)

    def test_works_on_bn254_and_p256(self):
        for name in ("bn254", "p256"):
            ecdsa = Ecdsa(get_curve(name))
            keypair = ecdsa.generate_keypair(0xA5A5_5A5A_1234_5678)
            signature = ecdsa.sign(keypair.private_key, MESSAGE)
            assert ecdsa.verify(keypair.public_key, MESSAGE, signature)


class TestOnAlgorithmBackend:
    def test_signature_verifies_when_field_runs_on_r4csa_lut(self):
        """The full PKC workload with the paper's algorithm as the multiplier."""
        spec = CURVE_SPECS["secp256k1"]
        field = PrimeField(spec.field_modulus, multiplier=R4CSALutMultiplier())
        curve = build_curve(spec, field=field)
        ecdsa = Ecdsa(curve)
        keypair = ecdsa.generate_keypair(0xC0FFEE)
        signature = ecdsa.sign(keypair.private_key, MESSAGE)
        assert ecdsa.verify(keypair.public_key, MESSAGE, signature)
        assert field.counter.count("modmul") > 1000
