"""Tests for the radix-8 Booth interleaved multiplier (background extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithms import Radix8InterleavedMultiplier, build_radix8_lut
from repro.errors import ModulusError, OperandRangeError

BN254_P = 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47


class TestRadix8Lut:
    def test_nine_entries(self):
        lut = build_radix8_lut(33, 97)
        assert sorted(lut) == list(range(-4, 5))

    def test_entries_are_reduced_residues(self):
        lut = build_radix8_lut(33, 97)
        for digit, value in lut.items():
            assert 0 <= value < 97
            assert value == (digit * 33) % 97

    def test_validation(self):
        with pytest.raises(ModulusError):
            build_radix8_lut(0, 2)
        with pytest.raises(OperandRangeError):
            build_radix8_lut(97, 97)


class TestRadix8Multiplier:
    def test_small_known_values(self):
        multiplier = Radix8InterleavedMultiplier()
        assert multiplier.multiply(7, 9, 11) == 63 % 11
        assert multiplier.multiply(96, 96, 97) == 1

    @given(modulus=st.integers(3, 2**64 - 1).map(lambda v: v | 1), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, modulus, data):
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        multiplier = Radix8InterleavedMultiplier()
        assert multiplier.multiply(a, b, modulus) == (a * b) % modulus

    def test_curve_sized_operands(self, rng):
        multiplier = Radix8InterleavedMultiplier()
        for _ in range(5):
            a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
            assert multiplier.multiply(a, b, BN254_P) == (a * b) % BN254_P

    def test_one_third_fewer_iterations_than_radix4(self, rng):
        from repro.core.algorithms import Radix4InterleavedMultiplier

        radix8 = Radix8InterleavedMultiplier()
        radix4 = Radix4InterleavedMultiplier()
        a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
        radix8.multiply(a, b, BN254_P)
        radix4.multiply(a, b, BN254_P)
        ratio = radix4.stats.iterations / radix8.stats.iterations
        assert 1.4 < ratio < 1.6

    def test_cycle_model_below_radix4(self):
        from repro.core.algorithms import Radix4InterleavedMultiplier

        assert (
            Radix8InterleavedMultiplier().cycles(256)
            < Radix4InterleavedMultiplier().cycles(256)
        )

    def test_lut_rows_tradeoff(self):
        """The radix-8 LUT needs nine word lines versus five for radix-4."""
        assert Radix8InterleavedMultiplier().lut_rows() == 9

    def test_registered(self):
        from repro.core import available_multipliers

        assert "radix8-interleaved" in available_multipliers()
