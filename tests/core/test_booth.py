"""Tests for the radix-4 / radix-8 Booth encoders (Table 1a)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.booth import (
    RADIX4_ENCODER_TABLE,
    RADIX8_ENCODER_TABLE,
    booth_digit_count,
    booth_digit_radix4,
    booth_digits_radix4,
    booth_digits_radix8,
    encoder_truth_table,
)
from repro.errors import BitWidthError, OperandRangeError


class TestEncoderTable:
    def test_paper_table_1a_values(self):
        """The encoder matches Table 1a of the paper row by row."""
        expected = {
            (0, 0, 0): 0,
            (0, 0, 1): +1,
            (0, 1, 0): +1,
            (0, 1, 1): +2,
            (1, 0, 0): -2,
            (1, 0, 1): -1,
            (1, 1, 0): -1,
            (1, 1, 1): 0,
        }
        assert RADIX4_ENCODER_TABLE == expected

    def test_encoder_function_matches_table(self):
        for (high, mid, low), digit in RADIX4_ENCODER_TABLE.items():
            assert booth_digit_radix4(high, mid, low) == digit

    def test_encoder_is_the_booth_identity(self):
        """digit == a_{i-1} + a_i - 2*a_{i+1} for every input combination."""
        for (high, mid, low), digit in RADIX4_ENCODER_TABLE.items():
            assert digit == low + mid - 2 * high

    def test_encoder_rejects_non_bits(self):
        with pytest.raises(OperandRangeError):
            booth_digit_radix4(2, 0, 0)

    def test_truth_table_export_has_eight_sorted_rows(self):
        rows = encoder_truth_table()
        assert len(rows) == 8
        assert rows[0] == (0, 0, 0, 0)
        assert rows[-1] == (1, 1, 1, 0)

    def test_radix8_table_covers_all_sixteen_inputs(self):
        assert len(RADIX8_ENCODER_TABLE) == 16
        assert set(RADIX8_ENCODER_TABLE.values()) == {-4, -3, -2, -1, 0, 1, 2, 3, 4}


class TestDigitCount:
    def test_paper_iteration_count_at_256_bits(self):
        assert booth_digit_count(256, full_range=False) == 128
        assert booth_digit_count(256, full_range=True) == 129

    def test_odd_bitwidth_needs_no_extra_digit(self):
        assert booth_digit_count(255, full_range=True) == 128
        assert booth_digit_count(255, full_range=False) == 128

    def test_invalid_bitwidth(self):
        with pytest.raises(BitWidthError):
            booth_digit_count(0)


class TestRadix4Digits:
    def test_digits_are_most_significant_first(self):
        digits = booth_digits_radix4(0b0110, 4, full_range=False)
        # 6 = 2*4 - 2: digits (MSB first) are [+2, -2].
        assert digits == [2, -2]

    def test_known_small_value(self):
        # 0b1010 = 10; with full_range the expansion uses 3 digits.
        digits = booth_digits_radix4(10, 4, full_range=True)
        value = 0
        for digit in digits:
            value = value * 4 + digit
        assert value == 10

    @given(st.integers(0, 2**64 - 1))
    def test_expansion_reconstructs_value_full_range(self, value):
        digits = booth_digits_radix4(value, 64, full_range=True)
        reconstructed = 0
        for digit in digits:
            reconstructed = reconstructed * 4 + digit
        assert reconstructed == value

    @given(st.integers(0, 2**63 - 1))
    def test_expansion_reconstructs_value_paper_mode(self, value):
        """With the top bit clear the paper's n/2 digit count is exact."""
        digits = booth_digits_radix4(value, 64, full_range=False)
        assert len(digits) == 32
        reconstructed = 0
        for digit in digits:
            reconstructed = reconstructed * 4 + digit
        assert reconstructed == value

    @given(st.integers(0, 2**64 - 1))
    def test_digits_are_valid_booth_digits(self, value):
        for digit in booth_digits_radix4(value, 64):
            assert digit in (-2, -1, 0, 1, 2)

    def test_paper_mode_rejects_top_bit_set(self):
        with pytest.raises(OperandRangeError):
            booth_digits_radix4(1 << 63, 64, full_range=False)

    def test_value_outside_bitwidth_rejected(self):
        with pytest.raises(BitWidthError):
            booth_digits_radix4(1 << 8, 8)

    def test_negative_value_rejected(self):
        with pytest.raises(OperandRangeError):
            booth_digits_radix4(-1, 8)

    def test_zero_expansion(self):
        assert all(d == 0 for d in booth_digits_radix4(0, 16))


class TestRadix8Digits:
    @given(st.integers(0, 2**48 - 1))
    def test_expansion_reconstructs_value(self, value):
        digits = booth_digits_radix8(value, 48)
        reconstructed = 0
        for digit in digits:
            reconstructed = reconstructed * 8 + digit
        assert reconstructed == value

    def test_digit_range(self):
        for digit in booth_digits_radix8(0xDEADBEEF, 32):
            assert -4 <= digit <= 4

    def test_radix8_uses_fewer_digits_than_radix4(self):
        value = (1 << 62) - 12345
        assert len(booth_digits_radix8(value, 64)) < len(
            booth_digits_radix4(value, 64)
        )
