"""Tests for the analytic cycle-complexity models behind Figure 1."""

from __future__ import annotations

import pytest

from repro.core.complexity import (
    COMPLEXITY_MODELS,
    PAPER_FIGURE1_BITWIDTHS,
    complexity_sweep,
    cycles_csa_interleaved,
    cycles_interleaved,
    cycles_mentt_bit_serial,
    cycles_mentt_projected,
    cycles_r4csa_lut,
    cycles_radix4_interleaved,
)
from repro.errors import OperandRangeError


class TestPaperNumbers:
    def test_mentt_at_256_bits_matches_table3(self):
        assert cycles_mentt_bit_serial(256) == 66049

    def test_r4csa_at_256_bits_matches_table3(self):
        assert cycles_r4csa_lut(256) == 767

    def test_paper_figure_bitwidths(self):
        assert PAPER_FIGURE1_BITWIDTHS == (8, 16, 32, 64, 128, 256)

    def test_our_algorithm_is_linear(self):
        assert cycles_r4csa_lut(512) == 2 * cycles_r4csa_lut(256) + 1

    def test_mentt_is_quadratic(self):
        ratio = cycles_mentt_bit_serial(256) / cycles_mentt_bit_serial(128)
        assert 3.9 < ratio < 4.1

    def test_ordering_between_curves(self):
        """At every plotted bitwidth: ours < projected MeNTT < MeNTT."""
        for bitwidth in PAPER_FIGURE1_BITWIDTHS:
            assert (
                cycles_r4csa_lut(bitwidth)
                < cycles_mentt_projected(bitwidth)
                < cycles_mentt_bit_serial(bitwidth)
            )

    def test_radix4_halves_interleaved_iterations(self):
        assert cycles_radix4_interleaved(256) < cycles_interleaved(256) / 2

    def test_csa_interleaved_between_interleaved_and_ours(self):
        assert cycles_r4csa_lut(256) < cycles_csa_interleaved(256) <= cycles_interleaved(256)


class TestSweep:
    def test_default_sweep_contains_the_figure_curves(self):
        sweep = complexity_sweep()
        assert set(sweep) == {"mentt", "mentt-projected", "r4csa-lut"}
        for series in sweep.values():
            assert len(series) == len(PAPER_FIGURE1_BITWIDTHS)

    def test_sweep_with_explicit_models(self):
        sweep = complexity_sweep(bitwidths=(16, 32), keys=("interleaved", "r4csa-lut"))
        assert sweep["interleaved"] == [96, 192]
        assert sweep["r4csa-lut"] == [47, 95]

    def test_unknown_model_rejected(self):
        with pytest.raises(OperandRangeError):
            complexity_sweep(keys=("nope",))

    def test_models_declare_their_order(self):
        assert COMPLEXITY_MODELS["mentt"].order == "O(n^2)"
        assert COMPLEXITY_MODELS["r4csa-lut"].order == "O(n)"

    def test_every_model_rejects_non_positive_bitwidth(self):
        for model in COMPLEXITY_MODELS.values():
            with pytest.raises(OperandRangeError):
                model.cycles(0)

    def test_model_sweep_method(self):
        model = COMPLEXITY_MODELS["r4csa-lut"]
        assert model.sweep((8, 16)) == [23, 47]
