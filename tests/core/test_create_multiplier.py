"""Tests for create_multiplier's keyword-option validation."""

from __future__ import annotations

import pytest

from repro.core import available_multipliers, create_multiplier
from repro.core.algorithms.r4csa_lut import R4CSALutMultiplier
from repro.errors import ConfigurationError


class TestCreateMultiplier:
    def test_known_kwargs_are_accepted(self):
        multiplier = create_multiplier("r4csa-lut", full_range=False)
        assert isinstance(multiplier, R4CSALutMultiplier)
        assert multiplier.full_range is False

    def test_unknown_kwarg_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown option"):
            create_multiplier("r4csa-lut", lut_depth=4)

    def test_error_names_the_accepted_options(self):
        with pytest.raises(ConfigurationError, match="full_range"):
            create_multiplier("r4csa-lut", nonsense=True)

    def test_unknown_kwarg_on_no_option_multiplier(self):
        with pytest.raises(ConfigurationError, match="unknown option"):
            create_multiplier("schoolbook", anything=1)

    def test_unknown_name_still_raises(self):
        with pytest.raises(ConfigurationError, match="unknown multiplier"):
            create_multiplier("nonexistent")

    @pytest.mark.parametrize("name", available_multipliers())
    def test_every_registered_multiplier_constructs_bare(self, name):
        assert create_multiplier(name).name == name
