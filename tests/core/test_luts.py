"""Tests for the precomputation LUT builders (Tables 1b and 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.luts import (
    RADIX4_DIGIT_ORDER,
    build_overflow_lut,
    build_radix4_lut,
)
from repro.ecc.curves_data import CURVE_SPECS
from repro.errors import ModulusError, OperandRangeError

BN254_P = CURVE_SPECS["bn254"].field_modulus


class TestRadix4Lut:
    def test_entries_match_table_1b(self):
        modulus = 97
        multiplicand = 33
        lut = build_radix4_lut(multiplicand, modulus)
        assert lut[0] == 0
        assert lut[+1] == 33
        assert lut[+2] == 66
        assert lut[-2] == (97 - 66)
        assert lut[-1] == (97 - 33)

    def test_row_order_matches_paper(self):
        lut = build_radix4_lut(5, 97)
        assert [digit for digit, _ in lut.rows()] == list(RADIX4_DIGIT_ORDER)
        assert lut.digits == RADIX4_DIGIT_ORDER

    def test_only_three_entries_need_computation(self):
        lut = build_radix4_lut(5, 97)
        assert lut.computed_entry_count() == 3

    def test_len_is_five(self):
        assert len(build_radix4_lut(5, 97)) == 5

    @given(st.integers(3, 10**6))
    @settings(max_examples=60)
    def test_entries_are_reduced_and_congruent(self, modulus):
        modulus |= 1
        multiplicand = modulus // 3
        lut = build_radix4_lut(multiplicand, modulus)
        for digit in RADIX4_DIGIT_ORDER:
            value = lut[digit]
            assert 0 <= value < modulus
            assert value % modulus == (digit * multiplicand) % modulus

    def test_bn254_entries_are_reduced(self):
        lut = build_radix4_lut(BN254_P - 1, BN254_P)
        for digit in RADIX4_DIGIT_ORDER:
            assert 0 <= lut[digit] < BN254_P

    def test_unknown_digit_rejected(self):
        with pytest.raises(OperandRangeError):
            build_radix4_lut(5, 97)[3]

    def test_multiplicand_out_of_range_rejected(self):
        with pytest.raises(OperandRangeError):
            build_radix4_lut(97, 97)

    def test_small_modulus_rejected(self):
        with pytest.raises(ModulusError):
            build_radix4_lut(0, 2)


class TestOverflowLut:
    def test_paper_rows_are_the_first_eight(self):
        lut = build_overflow_lut(97, 8, entry_count=16)
        assert len(lut.paper_rows()) == 8
        assert lut.paper_rows()[0] == (0, 0)

    def test_entries_are_weighted_residues(self):
        register_width = 9
        modulus = 251
        lut = build_overflow_lut(modulus, register_width)
        for index in range(len(lut)):
            assert lut[index] == (index << register_width) % modulus

    def test_entry_zero_is_zero(self):
        assert build_overflow_lut(997, 11)[0] == 0

    @given(st.integers(3, 2**40), st.integers(4, 64))
    @settings(max_examples=60)
    def test_entries_always_reduced(self, modulus, register_width):
        modulus |= 1
        lut = build_overflow_lut(modulus, register_width)
        for _, value in lut.rows():
            assert 0 <= value < modulus

    def test_index_out_of_range_rejected(self):
        lut = build_overflow_lut(97, 8, entry_count=8)
        with pytest.raises(OperandRangeError):
            lut[8]

    def test_invalid_register_width_rejected(self):
        with pytest.raises(OperandRangeError):
            build_overflow_lut(97, 0)

    def test_invalid_entry_count_rejected(self):
        with pytest.raises(OperandRangeError):
            build_overflow_lut(97, 8, entry_count=0)

    def test_default_entry_count_matches_table_2(self):
        assert len(build_overflow_lut(97, 8)) == 8
