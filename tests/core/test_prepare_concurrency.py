"""The prepare() contract: idempotent and thread-safe (base-class docs).

The serving layers warm shared multipliers from worker threads, so a
per-modulus precomputation racing itself must build exactly once and
leave the instance consistent.  These tests pin that contract for the
two multipliers with real per-modulus state: the paper's R4CSA-LUT
(overflow-table build under the instance lock) and the compiled backend
(kernel build under the process-wide cache lock).
"""

from __future__ import annotations

import random
import threading

import pytest

import repro.core.algorithms.r4csa_lut as r4csa_module
from repro.compiled import CompiledMultiplier, clear_kernel_cache
from repro.compiled import cache as compiled_cache
from repro.core.algorithms.r4csa_lut import R4CSALutMultiplier
from repro.ecc.curves_data import CURVE_SPECS

BN254_P = CURVE_SPECS["bn254"].field_modulus
THREADS = 12


def _race(target) -> list:
    """Run ``target`` from THREADS threads released by one barrier."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def runner():
        try:
            barrier.wait()
            target()
        except Exception as exc:  # pragma: no cover - diagnostic only
            errors.append(exc)

    threads = [threading.Thread(target=runner) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestR4CSAPrepare:
    def test_concurrent_prepare_builds_the_lut_exactly_once(self, monkeypatch):
        builds = []
        real_build = r4csa_module.build_overflow_lut

        def counting_build(modulus, register_width, entry_count):
            builds.append(modulus)
            return real_build(
                modulus, register_width, entry_count=entry_count
            )

        monkeypatch.setattr(
            r4csa_module, "build_overflow_lut", counting_build
        )
        multiplier = R4CSALutMultiplier()
        errors = _race(lambda: multiplier.prepare(BN254_P))
        assert not errors
        assert builds == [BN254_P], (
            f"expected exactly one overflow-LUT build, got {len(builds)}"
        )

    def test_prepare_is_idempotent(self, monkeypatch):
        builds = []
        real_build = r4csa_module.build_overflow_lut
        monkeypatch.setattr(
            r4csa_module,
            "build_overflow_lut",
            lambda m, w, entry_count: (
                builds.append(m),
                real_build(m, w, entry_count=entry_count),
            )[1],
        )
        multiplier = R4CSALutMultiplier()
        for _ in range(5):
            multiplier.prepare(BN254_P)
        assert len(builds) == 1

    def test_races_still_multiply_correctly(self):
        multiplier = R4CSALutMultiplier()
        rng = random.Random(3)
        a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
        results = []
        errors = _race(
            lambda: (
                multiplier.prepare(BN254_P),
                results.append(multiplier.multiply(a, b, BN254_P)),
            )
        )
        assert not errors
        assert set(results) == {a * b % BN254_P}


class TestCompiledPrepare:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_kernel_cache()
        yield
        clear_kernel_cache()

    def test_concurrent_prepare_compiles_exactly_once(self):
        multipliers = [CompiledMultiplier() for _ in range(THREADS)]
        iterator = iter(multipliers)
        lock = threading.Lock()

        def prepare_one():
            with lock:
                multiplier = next(iterator)
            multiplier.prepare(BN254_P)

        errors = _race(prepare_one)
        assert not errors
        assert compiled_cache.kernel_cache_stats()["builds"] == 1
        kernels = {m.kernel_for(BN254_P) for m in multipliers}
        assert len(kernels) == 1
