"""Tests for R4CSA-LUT (Algorithm 3), the paper's proposed algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import R4CSALutContext, R4CSALutMultiplier
from repro.core.algorithms.r4csa_lut import OVERFLOW_LUT_ENTRIES
from repro.errors import OperandRangeError

BN254_P = 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47
SECP256K1_P = 2**256 - 2**32 - 977


class TestCorrectness:
    def test_small_known_values(self):
        multiplier = R4CSALutMultiplier()
        assert multiplier.multiply(21, 18, 24 | 1) == (21 * 18) % 25
        assert multiplier.multiply(7, 9, 11) == 63 % 11

    def test_paper_five_bit_example_operands(self):
        """The Figure 3 walk-through operands: A=10101, B=10010, p=11000(+1)."""
        multiplier = R4CSALutMultiplier()
        a, b, p = 0b10101, 0b10010, 0b11001  # an odd 5-bit modulus
        assert multiplier.multiply(a, b, p) == (a * b) % p

    def test_bn254_operands(self, rng):
        multiplier = R4CSALutMultiplier()
        for _ in range(10):
            a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
            assert multiplier.multiply(a, b, BN254_P) == (a * b) % BN254_P

    def test_secp256k1_full_range_operands(self, rng):
        multiplier = R4CSALutMultiplier(full_range=True)
        for _ in range(10):
            a, b = rng.randrange(SECP256K1_P), rng.randrange(SECP256K1_P)
            assert multiplier.multiply(a, b, SECP256K1_P) == (a * b) % SECP256K1_P

    def test_identity_and_zero(self):
        multiplier = R4CSALutMultiplier()
        assert multiplier.multiply(0, 12345, BN254_P) == 0
        assert multiplier.multiply(1, 12345, BN254_P) == 12345
        assert multiplier.multiply(BN254_P - 1, 1, BN254_P) == BN254_P - 1

    @given(
        st.integers(3, 2**64 - 1),
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_oracle_for_random_moduli(self, modulus, data):
        modulus |= 1  # the register sizing assumes nothing, but avoid even edge
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        multiplier = R4CSALutMultiplier()
        assert multiplier.multiply(a, b, modulus) == (a * b) % modulus

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle_for_curve_sized_operands(self, data):
        modulus = data.draw(st.sampled_from([BN254_P, SECP256K1_P]))
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        multiplier = R4CSALutMultiplier()
        assert multiplier.multiply(a, b, modulus) == (a * b) % modulus


class TestStructure:
    def test_iteration_count_paper_mode(self, rng):
        """The algorithm needs ceil(n/2) iterations for an n-bit modulus.

        The functional reference sizes its registers from the modulus
        (254 bits for BN254, hence 127 iterations); the 256-bit hardware
        datapath of the accelerator performs 128 (see the modsram tests).
        """
        multiplier = R4CSALutMultiplier(full_range=False)
        a = rng.randrange(BN254_P)  # BN254 operands keep bit 255 clear
        b = rng.randrange(BN254_P)
        multiplier.multiply(a, b, BN254_P)
        assert multiplier.stats.iterations == (BN254_P.bit_length() + 1) // 2 == 127

    def test_no_full_additions_inside_the_loop(self, rng):
        """Only the single finalisation addition propagates carries."""
        multiplier = R4CSALutMultiplier()
        multiplier.multiply(rng.randrange(65521), rng.randrange(65521), 65521)
        assert multiplier.stats.full_additions == 1
        assert multiplier.stats.carry_save_additions == 2 * multiplier.stats.iterations

    def test_two_lut_lookups_per_iteration(self, rng):
        multiplier = R4CSALutMultiplier()
        multiplier.multiply(rng.randrange(65521), rng.randrange(65521), 65521)
        assert multiplier.stats.lut_lookups == 2 * multiplier.stats.iterations

    def test_lut_context_reused_for_same_multiplicand(self):
        multiplier = R4CSALutMultiplier()
        multiplier.multiply(10, 77, 65521)
        multiplier.multiply(20, 77, 65521)
        assert multiplier.stats.precomputations == 1
        multiplier.multiply(20, 78, 65521)
        assert multiplier.stats.precomputations == 2

    def test_cycle_model_matches_paper(self):
        multiplier = R4CSALutMultiplier()
        assert multiplier.cycles(256) == 767
        assert multiplier.cycles(128) == 383
        assert multiplier.cycles(8) == 23

    def test_cycle_model_rejects_bad_bitwidth(self):
        with pytest.raises(OperandRangeError):
            R4CSALutMultiplier().cycles(0)

    def test_paper_mode_rejects_full_range_multiplier(self):
        multiplier = R4CSALutMultiplier(full_range=False)
        with pytest.raises(OperandRangeError):
            multiplier.multiply(SECP256K1_P - 1, 3, SECP256K1_P)


class TestTraceAndInvariants:
    def test_trace_records_every_iteration(self):
        multiplier = R4CSALutMultiplier(record_trace=True)
        multiplier.multiply(0b10101, 0b10010, 0b11001)
        assert len(multiplier.last_trace) == multiplier.stats.iterations
        assert [snap.iteration for snap in multiplier.last_trace] == list(
            range(len(multiplier.last_trace))
        )

    def test_overflow_index_stays_within_the_generated_lut(self, rng):
        multiplier = R4CSALutMultiplier(record_trace=True)
        for _ in range(20):
            a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
            multiplier.multiply(a, b, BN254_P)
            for snapshot in multiplier.last_trace:
                assert 0 <= snapshot.overflow_index < OVERFLOW_LUT_ENTRIES

    def test_overflow_index_matches_paper_table_2_range_in_practice(self, rng):
        """Empirically the 3-bit overflow field of Table 2 suffices."""
        multiplier = R4CSALutMultiplier(record_trace=True)
        for _ in range(20):
            a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
            multiplier.multiply(a, b, BN254_P)
            assert max(s.overflow_index for s in multiplier.last_trace) <= 7

    def test_redundant_accumulator_is_congruent_every_iteration(self, rng):
        """sum + carry + pending*2^w stays congruent to the running product."""
        modulus = 65521
        a, b = rng.randrange(modulus), rng.randrange(modulus)
        multiplier = R4CSALutMultiplier(record_trace=True)
        multiplier.multiply(a, b, modulus)

        from repro.core.booth import booth_digits_radix4

        context = R4CSALutContext.create(b, modulus)
        digits = booth_digits_radix4(a, context.bitwidth, full_range=True)
        running = 0
        for snapshot, digit in zip(multiplier.last_trace, digits):
            running = (4 * running + digit * b) % modulus
            resolved = (
                snapshot.sum_word
                + snapshot.carry_word
                + (snapshot.pending_overflow << context.register_width)
            )
            assert resolved % modulus == running

    def test_context_exposes_both_luts(self):
        context = R4CSALutContext.create(77, 65521)
        assert context.radix4_lut[+2] == (2 * 77) % 65521
        assert len(context.overflow_lut) == OVERFLOW_LUT_ENTRIES
        assert context.register_width == 17
