"""Cross-algorithm property tests.

Every algorithm in the family must agree with the big-integer oracle and
with every other algorithm for the same operands; these tests drive them all
from one hypothesis strategy so a regression in any one implementation is
caught by disagreement rather than by a hand-picked case.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BarrettMultiplier,
    CsaInterleavedMultiplier,
    InterleavedMultiplier,
    MontgomeryMultiplier,
    R4CSALutMultiplier,
    Radix4InterleavedMultiplier,
    SchoolbookMultiplier,
)

BN254_P = 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47


def _odd_modulus(minimum: int = 3, maximum: int = 2**80):
    return st.integers(minimum, maximum).map(lambda value: value | 1)


ALGORITHMS = (
    InterleavedMultiplier,
    Radix4InterleavedMultiplier,
    CsaInterleavedMultiplier,
    R4CSALutMultiplier,
    MontgomeryMultiplier,
    BarrettMultiplier,
)


class TestAgainstOracle:
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda cls: cls.name)
    @given(modulus=_odd_modulus(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_python_semantics(self, algorithm, modulus, data):
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        assert algorithm().multiply(a, b, modulus) == (a * b) % modulus


class TestAlgebraicProperties:
    @given(modulus=_odd_modulus(maximum=2**48), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_commutativity(self, modulus, data):
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        multiplier = R4CSALutMultiplier()
        assert multiplier.multiply(a, b, modulus) == multiplier.multiply(b, a, modulus)

    @given(modulus=_odd_modulus(maximum=2**40), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_associativity_through_the_oracle(self, modulus, data):
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        c = data.draw(st.integers(0, modulus - 1))
        multiplier = R4CSALutMultiplier()
        left = multiplier.multiply(multiplier.multiply(a, b, modulus), c, modulus)
        right = multiplier.multiply(a, multiplier.multiply(b, c, modulus), modulus)
        assert left == right

    @given(modulus=_odd_modulus(maximum=2**40), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_distributivity_over_addition(self, modulus, data):
        a = data.draw(st.integers(0, modulus - 1))
        b = data.draw(st.integers(0, modulus - 1))
        c = data.draw(st.integers(0, modulus - 1))
        multiplier = R4CSALutMultiplier()
        left = multiplier.multiply(a, (b + c) % modulus, modulus)
        right = (
            multiplier.multiply(a, b, modulus) + multiplier.multiply(a, c, modulus)
        ) % modulus
        assert left == right

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_all_algorithms_agree_on_curve_field(self, data):
        a = data.draw(st.integers(0, BN254_P - 1))
        b = data.draw(st.integers(0, BN254_P - 1))
        results = {cls.name: cls().multiply(a, b, BN254_P) for cls in ALGORITHMS}
        results["schoolbook"] = SchoolbookMultiplier().multiply(a, b, BN254_P)
        assert len(set(results.values())) == 1, results
