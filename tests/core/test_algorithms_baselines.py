"""Tests for the baseline modular-multiplication algorithms.

Covers Algorithm 1 (interleaved), Algorithm 2 (radix-4 interleaved), the
radix-2 CSA interleaved variant, Montgomery, Barrett and the schoolbook
oracle, plus the registry through which they are all exposed.
"""

from __future__ import annotations

import pytest

import repro.modsram  # noqa: F401  (registers the "modsram" multiplier)
from repro.core import (
    BarrettMultiplier,
    CsaInterleavedMultiplier,
    InterleavedMultiplier,
    MontgomeryMultiplier,
    Radix4InterleavedMultiplier,
    SchoolbookMultiplier,
    available_multipliers,
    create_multiplier,
    get_multiplier,
)
from repro.core.algorithms.barrett import BarrettContext
from repro.core.algorithms.montgomery import MontgomeryContext
from repro.errors import ConfigurationError, ModulusError, OperandRangeError

BN254_P = 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47

ALL_ALGORITHMS = (
    SchoolbookMultiplier,
    InterleavedMultiplier,
    Radix4InterleavedMultiplier,
    CsaInterleavedMultiplier,
    MontgomeryMultiplier,
    BarrettMultiplier,
)


@pytest.fixture(params=ALL_ALGORITHMS, ids=lambda cls: cls.name)
def multiplier(request):
    return request.param()


class TestCommonBehaviour:
    def test_small_known_product(self, multiplier):
        assert multiplier.multiply(7, 9, 11) == (7 * 9) % 11

    def test_zero_operand(self, multiplier):
        assert multiplier.multiply(0, 5, 97) == 0
        assert multiplier.multiply(5, 0, 97) == 0

    def test_one_operand(self, multiplier):
        assert multiplier.multiply(1, 83, 97) == 83

    def test_maximal_operands(self, multiplier):
        modulus = 65521
        assert multiplier.multiply(modulus - 1, modulus - 1, modulus) == 1

    def test_large_curve_operands(self, multiplier, rng):
        for _ in range(5):
            a = rng.randrange(BN254_P)
            b = rng.randrange(BN254_P)
            assert multiplier.multiply(a, b, BN254_P) == (a * b) % BN254_P

    def test_result_always_reduced(self, multiplier, rng, small_modulus):
        for _ in range(20):
            a = rng.randrange(small_modulus)
            b = rng.randrange(small_modulus)
            result = multiplier.multiply(a, b, small_modulus)
            assert 0 <= result < small_modulus
            assert result == (a * b) % small_modulus

    def test_operand_validation(self, multiplier):
        with pytest.raises(OperandRangeError):
            multiplier.multiply(97, 1, 97)
        with pytest.raises(OperandRangeError):
            multiplier.multiply(-1, 1, 97)
        with pytest.raises(ModulusError):
            multiplier.multiply(0, 0, 1)

    def test_stats_track_multiplications(self, multiplier):
        multiplier.multiply(3, 4, 97)
        multiplier.multiply(5, 6, 97)
        assert multiplier.stats.multiplications == 2
        multiplier.reset_stats()
        assert multiplier.stats.multiplications == 0


class TestInterleaved:
    def test_iteration_count_tracks_multiplier_bits(self):
        multiplier = InterleavedMultiplier()
        multiplier.multiply(0b1011, 7, 13)
        assert multiplier.stats.iterations == 4

    def test_cycle_model_is_linear(self):
        multiplier = InterleavedMultiplier()
        assert multiplier.cycles(256) == 6 * 256
        assert multiplier.cycles(64) == 6 * 64


class TestRadix4Interleaved:
    def test_halves_the_iterations(self, rng):
        radix4 = Radix4InterleavedMultiplier(full_range=False)
        modulus = (1 << 64) - 59
        a = rng.randrange(1 << 62)
        b = rng.randrange(modulus)
        radix4.multiply(a, b, modulus)
        assert radix4.stats.iterations == 32

    def test_full_range_handles_top_bit(self, rng):
        radix4 = Radix4InterleavedMultiplier(full_range=True)
        modulus = (1 << 64) - 59
        a = modulus - 1
        b = rng.randrange(modulus)
        assert radix4.multiply(a, b, modulus) == (a * b) % modulus

    def test_paper_mode_rejects_top_bit(self):
        radix4 = Radix4InterleavedMultiplier(full_range=False)
        modulus = (1 << 64) - 59
        with pytest.raises(OperandRangeError):
            radix4.multiply(modulus - 1, 3, modulus)

    def test_cycle_model(self):
        assert Radix4InterleavedMultiplier().cycles(256) == 5 * 128


class TestCsaInterleaved:
    def test_uses_carry_save_additions(self, rng):
        multiplier = CsaInterleavedMultiplier()
        modulus = 65521
        multiplier.multiply(rng.randrange(modulus), rng.randrange(modulus), modulus)
        assert multiplier.stats.carry_save_additions == 2 * 16
        assert multiplier.stats.full_additions == 1  # only the final addition

    def test_cycle_model(self):
        assert CsaInterleavedMultiplier().cycles(256) == 6 * 256 - 1


class TestMontgomery:
    def test_context_constants(self):
        context = MontgomeryContext.create(97)
        assert context.radix == 128
        assert (context.modulus_inverse * 97) % context.radix == context.radix - 1

    def test_reduce_matches_definition(self, rng):
        context = MontgomeryContext.create(65521)
        for _ in range(50):
            value = rng.randrange(65521 * context.radix)
            reduced = context.reduce(value)
            assert reduced == (value * pow(context.radix, -1, 65521)) % 65521

    def test_round_trip_through_montgomery_form(self, rng):
        context = MontgomeryContext.create(BN254_P)
        value = rng.randrange(BN254_P)
        assert context.from_montgomery(context.to_montgomery(value)) == value

    def test_multiply_in_montgomery_form(self, rng):
        context = MontgomeryContext.create(BN254_P)
        a, b = rng.randrange(BN254_P), rng.randrange(BN254_P)
        product = context.from_montgomery(
            context.multiply(context.to_montgomery(a), context.to_montgomery(b))
        )
        assert product == (a * b) % BN254_P

    def test_even_modulus_rejected(self):
        with pytest.raises(ModulusError):
            MontgomeryContext.create(100)

    def test_reduce_input_range_checked(self):
        context = MontgomeryContext.create(97)
        with pytest.raises(OperandRangeError):
            context.reduce(97 * context.radix)

    def test_context_is_cached_per_modulus(self):
        multiplier = MontgomeryMultiplier()
        multiplier.multiply(3, 4, 97)
        multiplier.multiply(5, 6, 97)
        assert multiplier.stats.precomputations == 1
        multiplier.multiply(5, 6, 101)
        assert multiplier.stats.precomputations == 2

    def test_cycle_model_is_quadratic_in_words(self):
        multiplier = MontgomeryMultiplier()
        assert multiplier.cycles(256) > multiplier.cycles(128) > multiplier.cycles(64)


class TestBarrett:
    def test_context_mu(self):
        context = BarrettContext.create(97)
        assert context.mu == (1 << (2 * 7)) // 97

    def test_reduce_matches_modulo(self, rng):
        context = BarrettContext.create(65521)
        for _ in range(50):
            value = rng.randrange(65521 * 65521)
            assert context.reduce(value) == value % 65521

    def test_reduce_range_checked(self):
        context = BarrettContext.create(97)
        with pytest.raises(OperandRangeError):
            context.reduce(97 * 97)

    def test_context_cached(self):
        multiplier = BarrettMultiplier()
        multiplier.multiply(3, 4, 97)
        multiplier.multiply(5, 6, 97)
        assert multiplier.stats.precomputations == 1


class TestRegistry:
    def test_all_algorithms_registered(self):
        names = available_multipliers()
        for expected in (
            "schoolbook",
            "interleaved",
            "radix4-interleaved",
            "csa-interleaved",
            "montgomery",
            "barrett",
            "r4csa-lut",
            "modsram",
        ):
            assert expected in names

    def test_get_and_create(self):
        cls = get_multiplier("interleaved")
        assert cls is InterleavedMultiplier
        instance = create_multiplier("barrett")
        assert isinstance(instance, BarrettMultiplier)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_multiplier("does-not-exist")

    def test_descriptions_are_non_empty(self):
        for name in available_multipliers():
            assert get_multiplier(name).description
