"""The docs site stays honest without mkdocs installed.

CI builds the site with ``mkdocs build --strict``; these tests
approximate the strict checks in plain pytest so a broken link, a stale
generated page or an undocumented public object fails *every* test run,
not just the docs job:

* every internal markdown link resolves to a real file;
* every ``mkdocs.yml`` nav entry resolves to a real page, and the
  reference pages are reachable from the nav;
* the generated reference pages match a fresh regeneration (drift gate);
* every top-level public object of ``repro.engine``, ``repro.service``,
  ``repro.workloads`` and ``repro.cluster`` carries a docstring
  (doc-coverage gate).
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import os
import re

import pytest

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
MKDOCS_YML = os.path.join(REPO_ROOT, "mkdocs.yml")

#: Markdown links: [text](target), ignoring images' extra bang.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _load_generator():
    path = os.path.join(REPO_ROOT, "tools", "generate_docs.py")
    spec = importlib.util.spec_from_file_location("generate_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _markdown_files():
    for root, _, names in os.walk(DOCS_DIR):
        for name in sorted(names):
            if name.endswith(".md"):
                yield os.path.join(root, name)


def _nav_pages():
    """Every page path mentioned in the mkdocs nav (regex, no yaml dep)."""
    with open(MKDOCS_YML, "r", encoding="utf-8") as handle:
        text = handle.read()
    return re.findall(r":\s*([\w./-]+\.md)\s*$", text, flags=re.MULTILINE)


class TestSiteStructure:
    def test_mkdocs_config_exists_and_is_strict(self):
        with open(MKDOCS_YML, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert "strict: true" in text
        assert "nav:" in text

    def test_every_nav_entry_resolves(self):
        pages = _nav_pages()
        assert pages, "mkdocs nav lists no pages"
        for page in pages:
            assert os.path.exists(os.path.join(DOCS_DIR, page)), (
                f"mkdocs nav references missing page {page}"
            )

    def test_core_pages_are_in_the_nav(self):
        pages = set(_nav_pages())
        for required in (
            "index.md",
            "quickstart.md",
            "architecture.md",
            "serving.md",
            "cluster.md",
            "artifacts.md",
            "reference/cli.md",
            "reference/engine.md",
            "reference/service.md",
            "reference/workloads.md",
            "reference/cluster.md",
            "compiled.md",
            "reference/compiled.md",
            "dse.md",
            "reference/dse.md",
        ):
            assert required in pages, f"{required} missing from mkdocs nav"

    def test_internal_links_resolve(self):
        """The pytest stand-in for ``mkdocs build --strict`` link checking."""
        broken = []
        for path in _markdown_files():
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for target in _LINK.findall(text):
                if "://" in target or target.startswith(("mailto:", "#")):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), relative)
                )
                if not os.path.exists(resolved):
                    broken.append(
                        f"{os.path.relpath(path, REPO_ROOT)} -> {target}"
                    )
        assert not broken, "broken internal links:\n" + "\n".join(broken)


class TestGeneratedReference:
    def test_generated_pages_are_fresh(self):
        """Committed reference pages must match a fresh regeneration."""
        generator = _load_generator()
        for relative, content in generator.generate().items():
            path = os.path.join(generator.OUTPUT_DIR, relative)
            assert os.path.exists(path), (
                f"docs/reference/{relative} missing; run "
                "python tools/generate_docs.py"
            )
            with open(path, "r", encoding="utf-8") as handle:
                committed = handle.read()
            assert committed == content, (
                f"docs/reference/{relative} is stale; run "
                "python tools/generate_docs.py"
            )

    def test_cli_page_covers_every_subcommand(self):
        from repro.cli import build_parser

        with open(
            os.path.join(DOCS_DIR, "reference", "cli.md"), encoding="utf-8"
        ) as handle:
            text = handle.read()
        parser = build_parser()
        import argparse

        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        for name in subparsers.choices:
            assert f"`repro {name}`" in text, (
                f"CLI reference is missing subcommand {name!r}"
            )
        assert "--workers" in text, "serve --workers missing from CLI docs"


class TestDocCoverage:
    """Top-level public objects of the user-facing subsystems are documented."""

    MODULES = (
        "repro.engine",
        "repro.service",
        "repro.workloads",
        "repro.cluster",
        "repro.compiled",
        "repro.dse",
    )

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_surface_has_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert (module.__doc__ or "").strip(), f"{module_name} has no docstring"
        undocumented = []
        for name in getattr(module, "__all__", ()):
            obj = getattr(module, name)
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
        assert not undocumented, (
            f"{module_name}.__all__ entries without docstrings: "
            f"{undocumented}"
        )

    @pytest.mark.parametrize("module_name", MODULES)
    def test_generator_enforces_the_same_gate(self, module_name):
        """The docs build fails on missing docstrings, not just this test."""
        generator = _load_generator()
        # Raises DocCoverageError (failing this test) if coverage regresses.
        page = generator.render_api_page(module_name)
        assert page.startswith(generator.GENERATED_NOTE)
