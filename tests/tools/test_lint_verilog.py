"""tools/lint_verilog.py catches the defect classes it claims to.

Hermetic: a known-good module pair is written to ``tmp_path``, then each
test seeds one defect and asserts the lint names it.  The emitted macro
RTL itself is lint-checked in ``tests/hdl/test_verilog_emit.py``.
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

CHILD = """\
module leaf (
  input wire clk,
  input wire [3:0] d,
  output wire [3:0] q
);
  reg [3:0] r;
  wire [3:0] nxt;
  assign nxt = (d ^ r);
  assign q = r;
  always @(posedge clk) begin : seq
    r <= nxt;
  end
endmodule // leaf
"""

PARENT = """\
module top (
  input wire clk,
  input wire [3:0] d,
  output wire [3:0] q
);
  wire [3:0] mid;
  leaf u_leaf (
    .clk(clk),
    .d(d),
    .q(mid)
  );
  assign q = mid;
endmodule // top
"""


def _load():
    path = os.path.join(REPO_ROOT, "tools", "lint_verilog.py")
    spec = importlib.util.spec_from_file_location("lint_verilog", path)
    module = importlib.util.module_from_spec(spec)
    # dataclass field resolution needs the module visible in sys.modules.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def lint():
    return _load()


@pytest.fixture()
def files(tmp_path):
    child = tmp_path / "leaf.v"
    parent = tmp_path / "top.v"
    child.write_text(CHILD)
    parent.write_text(PARENT)
    return child, parent


def test_clean_pair_has_no_findings(lint, files):
    assert lint.lint_files(list(files)) == []


def test_undeclared_identifier(lint, files):
    child, parent = files
    child.write_text(CHILD.replace("(d ^ r)", "(d ^ ghost)"))
    findings = lint.lint_files([child, parent])
    assert any("ghost" in finding for finding in findings)


def test_double_driven_wire(lint, files):
    child, parent = files
    child.write_text(CHILD.replace("assign q = r;", "assign q = r;\n  assign q = nxt;"))
    findings = lint.lint_files([child, parent])
    assert any("multiple assigns" in finding for finding in findings)


def test_continuous_assign_to_reg(lint, files):
    child, parent = files
    child.write_text(CHILD.replace("assign q = r;", "assign q = r;\n  assign r = d;"))
    findings = lint.lint_files([child, parent])
    assert any("continuous assign" in finding for finding in findings)


def test_reg_written_from_two_always_blocks(lint, files):
    child, parent = files
    extra = (
        "  always @(posedge clk) begin : seq2\n"
        "    r <= d;\n"
        "  end\n"
        "endmodule // leaf"
    )
    child.write_text(CHILD.replace("endmodule // leaf", extra))
    findings = lint.lint_files([child, parent])
    assert any("2 always blocks" in finding for finding in findings)


def test_undriven_output_port(lint, files):
    child, parent = files
    child.write_text(CHILD.replace("assign q = r;\n", ""))
    findings = lint.lint_files([child, parent])
    assert any("never" in finding and "'q'" in finding for finding in findings)


def test_unbalanced_begin_end(lint, files):
    child, parent = files
    child.write_text(CHILD.replace("  end\nendmodule // leaf", "endmodule // leaf"))
    findings = lint.lint_files([child, parent])
    assert any("open begin" in finding for finding in findings)


def test_missing_endmodule(lint, files):
    child, parent = files
    child.write_text(CHILD.replace("endmodule // leaf", ""))
    findings = lint.lint_files([child, parent])
    assert any("missing endmodule" in finding for finding in findings)


def test_instance_of_unknown_module(lint, files):
    _, parent = files
    findings = lint.lint_files([parent])  # leaf.v not given to the lint
    assert any("unknown module 'leaf'" in finding for finding in findings)


def test_instance_unconnected_port(lint, files):
    child, parent = files
    parent.write_text(PARENT.replace("    .d(d),\n", ""))
    findings = lint.lint_files([child, parent])
    assert any("'d' unconnected" in finding for finding in findings)


def test_instance_width_mismatch(lint, files):
    child, parent = files
    parent.write_text(PARENT.replace("wire [3:0] mid;", "wire [7:0] mid;"))
    findings = lint.lint_files([child, parent])
    assert any("width" in finding for finding in findings)


def test_duplicate_module_across_files(lint, files, tmp_path):
    child, parent = files
    twin = tmp_path / "leaf_copy.v"
    twin.write_text(CHILD)
    findings = lint.lint_files([child, twin, parent])
    assert any("duplicate module 'leaf'" in finding for finding in findings)


def test_cli_exit_codes(lint, files, tmp_path, capsys):
    child, parent = files
    assert lint.main([str(child), str(parent)]) == 0
    assert "clean" in capsys.readouterr().out
    child.write_text(CHILD.replace("(d ^ r)", "(d ^ ghost)"))
    assert lint.main([str(child), str(parent)]) == 1
    assert lint.main([str(tmp_path / "absent.v")]) == 2
