"""tools/check_bench.py guards the benchmark artifact schemas.

The ``BENCH_*.json`` artifacts are gitignored (CI regenerates and
uploads them every run), so these tests are hermetic: they synthesize
minimal schema-conforming payloads instead of reading artifacts that
only exist after a local benchmark run — any artifacts that *are*
present in the repo root get validated opportunistically.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_bench.py")
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def checker():
    return _load_checker()


def _synthesize(checker, spec):
    """A minimal payload satisfying ``spec`` (the schema, inverted)."""
    if isinstance(spec, checker.Value):
        return spec.expected
    if isinstance(spec, dict):
        return {key: _synthesize(checker, sub) for key, sub in spec.items()}
    if isinstance(spec, list):
        return [_synthesize(checker, spec[0])]
    if spec is bool:
        return True
    if spec is int:
        return 1
    if spec is dict:
        return {}
    if spec is list:
        return []
    if spec is str:
        return "x"
    return 1.5  # NUMBER / float leaves


@pytest.fixture(scope="module")
def cluster_payload(checker):
    return _synthesize(checker, checker.SCHEMAS["BENCH_cluster.json"])


class TestSchemas:
    def test_every_schema_names_a_real_benchmark(self, checker):
        for name in checker.SCHEMAS:
            stem = name[len("BENCH_"):-len(".json")]
            script = os.path.join(REPO_ROOT, "benchmarks", f"bench_{stem}.py")
            assert os.path.exists(script), (
                f"{name} schema has no benchmarks/bench_{stem}.py emitter"
            )

    def test_synthesized_payloads_validate(self, checker, tmp_path):
        """The synthesizer and the validator agree on every schema."""
        for name, schema in checker.SCHEMAS.items():
            path = tmp_path / name
            path.write_text(json.dumps(_synthesize(checker, schema)))
            assert not checker.check_file(str(path))

    def test_artifacts_present_in_the_repo_root_validate(self, checker):
        present = sorted(
            name
            for name in os.listdir(REPO_ROOT)
            if name.startswith("BENCH_") and name.endswith(".json")
        )
        if not present:
            pytest.skip("no BENCH_*.json artifacts written locally")
        for name in present:
            errors = checker.check_file(os.path.join(REPO_ROOT, name))
            assert not errors, f"{name}: {errors}"


class TestValidator:
    def test_missing_key_is_reported_with_its_path(self, checker, tmp_path):
        path = tmp_path / "BENCH_cluster.json"
        path.write_text(json.dumps({"benchmark": "cluster"}))
        errors = checker.check_file(str(path))
        assert any("node_scaling: missing" in error for error in errors)

    def test_wrong_benchmark_name_fails(self, checker, tmp_path, cluster_payload):
        payload = dict(cluster_payload, benchmark="serve")
        path = tmp_path / "BENCH_cluster.json"
        path.write_text(json.dumps(payload))
        errors = checker.check_file(str(path))
        assert any("expected 'cluster'" in error for error in errors)

    def test_type_drift_fails(self, checker, tmp_path, cluster_payload):
        payload = json.loads(json.dumps(cluster_payload))
        payload["kill_recovery"]["lost"] = "0"  # stringly-typed drift
        path = tmp_path / "BENCH_cluster.json"
        path.write_text(json.dumps(payload))
        errors = checker.check_file(str(path))
        assert any("lost: expected int" in error for error in errors)

    def test_bool_is_not_a_number(self, checker, tmp_path, cluster_payload):
        payload = json.loads(json.dumps(cluster_payload))
        payload["kill_recovery"]["lost"] = False  # bool passes isinstance(int)
        path = tmp_path / "BENCH_cluster.json"
        path.write_text(json.dumps(payload))
        errors = checker.check_file(str(path))
        assert any("expected number, got bool" in error for error in errors)

    def test_hdl_agreement_regression_fails(self, checker, tmp_path):
        """A cosim mismatch can never slip through the schema gate."""
        payload = _synthesize(checker, checker.SCHEMAS["BENCH_hdl.json"])
        payload["agreement"]["rows"][0]["cycles_match"] = False
        path = tmp_path / "BENCH_hdl.json"
        path.write_text(json.dumps(payload))
        errors = checker.check_file(str(path))
        assert any("cycles_match" in error for error in errors)
        payload["agreement"]["rows"][0]["cycles_match"] = True
        payload["paper_point"]["ok"] = False
        path.write_text(json.dumps(payload))
        errors = checker.check_file(str(path))
        assert any("paper_point.ok" in error for error in errors)

    def test_unknown_artifact_name_fails(self, checker, tmp_path):
        path = tmp_path / "BENCH_mystery.json"
        path.write_text("{}")
        errors = checker.check_file(str(path))
        assert errors and "no schema registered" in errors[0]

    def test_unreadable_json_fails(self, checker, tmp_path):
        path = tmp_path / "BENCH_cluster.json"
        path.write_text("{not json")
        errors = checker.check_file(str(path))
        assert errors and "unreadable" in errors[0]

    def test_main_exit_codes(self, checker, tmp_path, capsys, cluster_payload):
        good = tmp_path / "BENCH_cluster.json"
        good.write_text(json.dumps(cluster_payload))
        assert checker.main([str(good)]) == 0
        bad = tmp_path / "bad" / "BENCH_cluster.json"
        bad.parent.mkdir()
        bad.write_text("{}")
        assert checker.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok   BENCH_cluster.json" in out
        assert "FAIL" in out
