"""Unit tests for the per-modulus kernel codegen layer."""

from __future__ import annotations

import random

import pytest

from repro.compiled.codegen import (
    STRATEGIES,
    compile_kernel_namespace,
    derive_constants,
    generate_source,
    kernel_filename,
)
from repro.core.algorithms.r4csa_lut import OVERFLOW_LUT_ENTRIES
from repro.core.luts import build_overflow_lut
from repro.ecc.curves_data import CURVE_SPECS
from repro.errors import ConfigurationError, ModulusError

BN254_P = CURVE_SPECS["bn254"].field_modulus
SECP256K1_P = CURVE_SPECS["secp256k1"].field_modulus
SMALL_MODULI = (97, 101, 251, 997, 65521, (1 << 61) - 1)


class TestDeriveConstants:
    @pytest.mark.parametrize("modulus", [BN254_P, SECP256K1_P, *SMALL_MODULI])
    def test_barrett_constants_are_exact(self, modulus):
        constants = derive_constants(modulus)
        n = modulus.bit_length()
        assert constants.bit_width == n
        assert constants.register_width == n + 1
        assert constants.barrett_shift == 2 * n
        assert constants.barrett_mu == (1 << (2 * n)) // modulus

    def test_montgomery_constants_only_for_odd_moduli(self):
        odd = derive_constants(997)
        assert odd.montgomery_r == 1 << 10
        assert odd.montgomery_r2 == (odd.montgomery_r ** 2) % 997
        # n' satisfies p * p^-1 ≡ -1 (mod R), the REDC identity.
        assert (997 * odd.montgomery_n_prime) % odd.montgomery_r == (
            odd.montgomery_r - 1
        )
        even = derive_constants(1000)
        assert even.montgomery_r is None
        assert even.montgomery_r2 is None
        assert even.montgomery_n_prime is None
        # Barrett constants exist either way.
        assert even.barrett_mu == (1 << 20) // 1000

    def test_overflow_lut_matches_the_core_table(self):
        constants = derive_constants(BN254_P)
        reference = build_overflow_lut(
            BN254_P,
            BN254_P.bit_length() + 1,
            entry_count=OVERFLOW_LUT_ENTRIES,
        )
        assert constants.overflow_lut == reference.entries
        assert len(constants.overflow_lut) == OVERFLOW_LUT_ENTRIES

    def test_rejects_degenerate_moduli(self):
        for modulus in (2, 1, 0, -5):
            with pytest.raises(ModulusError):
                derive_constants(modulus)

    def test_describe_reports_sizes_not_values(self):
        summary = derive_constants(BN254_P).describe()
        assert summary["bit_width"] == 254
        assert summary["overflow_lut_entries"] == OVERFLOW_LUT_ENTRIES
        assert summary["montgomery"] is True


class TestGeneratedSource:
    def test_constants_are_baked_into_the_source(self):
        constants = derive_constants(997)
        source = generate_source(constants)
        assert "997" in source
        assert str(constants.barrett_mu) in source
        assert "def multiply" in source
        assert "def batch_multiply" in source
        # The branch-free correction, not an if-statement.
        assert "-(r >= _p)" in source
        assert "if " not in source

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_compiled_namespace_computes_correct_products(self, strategy):
        rng = random.Random(0xABC)
        for modulus in (997, 65521, (1 << 61) - 1, BN254_P):
            namespace = compile_kernel_namespace(
                derive_constants(modulus), strategy
            )
            multiply = namespace["multiply"]
            batch = namespace["batch_multiply"]
            pairs = [
                (rng.randrange(modulus), rng.randrange(modulus))
                for _ in range(32)
            ]
            expected = [a * b % modulus for a, b in pairs]
            assert [multiply(a, b) for a, b in pairs] == expected
            assert batch(pairs) == expected

    def test_namespace_carries_the_source(self):
        namespace = compile_kernel_namespace(derive_constants(997))
        assert namespace["__source__"] == generate_source(
            derive_constants(997)
        )

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown codegen"):
            generate_source(derive_constants(997), "simd")

    def test_kernel_filename_names_modulus_and_strategy(self):
        name = kernel_filename(997, "barrett")
        assert "barrett" in name and "0x3e5" in name

    def test_barrett_edge_operands(self):
        """0, 1 and p-1 — the extremes of the single-correction proof."""
        for modulus in (3, 5, 997, BN254_P, SECP256K1_P):
            namespace = compile_kernel_namespace(derive_constants(modulus))
            multiply = namespace["multiply"]
            edge = [0, 1, modulus - 1, modulus // 2]
            for a in edge:
                for b in edge:
                    assert multiply(a, b) == a * b % modulus
