"""Seeded differential fuzzing: compiled vs r4csa-lut vs big-int.

The ``compiled`` backend's value rests entirely on being bit-identical
to the paper's algorithm, so this harness races all three evaluators —
the generated Barrett kernel (both strategies, numpy path on and off),
the R4CSA-LUT reference implementation, and Python's big-int oracle —
across the moduli most likely to break a reduction scheme:

* random odd moduli at every width from 16 to 256 bits;
* Mersenne-adjacent moduli (``2**k - 1`` and close neighbours), where
  ``p`` hugs the top of its bit width and the Barrett estimate error is
  maximal;
* near-power-of-two moduli (``2**k ± small``), including *even* moduli
  (no Montgomery constants — the kernel must not depend on them);
* degenerate operands: 0, 1, ``p - 1`` and their products.

Every case is seeded, so a failure reproduces exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.compiled import CompiledMultiplier, clear_kernel_cache
from repro.core.algorithms.r4csa_lut import R4CSALutMultiplier

pytestmark = pytest.mark.slow

#: One RNG seed for the whole harness — failures name their case.
SEED = 0xD1FF

#: Bit widths the randomized sweep covers (the issue's 16..256 range).
WIDTHS = (16, 24, 31, 32, 48, 61, 64, 96, 128, 192, 224, 254, 255, 256)

#: Operand pairs per (modulus, evaluator) case.
PAIRS_PER_CASE = 24


def _random_odd_modulus(rng: random.Random, bits: int) -> int:
    return (1 << (bits - 1)) | rng.getrandbits(bits - 1) | 1


def _adversarial_moduli() -> list:
    """Mersenne-adjacent and near-power-of-two moduli, odd and even."""
    moduli = []
    for k in (17, 31, 61, 89, 127, 255):
        moduli.extend([(1 << k) - 1, (1 << k) - 3, (1 << k) + 1])
    for k in (16, 32, 64, 128, 256):
        moduli.extend([(1 << k) - 1, (1 << k) + 1, (1 << k) - 2])
    for k in (20, 40, 80):  # even moduli: no Montgomery constants
        moduli.append((1 << k) - 4)
    return sorted({m for m in moduli if m > 2})


def _evaluators() -> list:
    """(label, multiplier factory) for every compiled variant."""
    return [
        ("barrett", lambda: CompiledMultiplier(strategy="barrett")),
        ("native", lambda: CompiledMultiplier(strategy="native")),
        (
            "barrett+numpy",
            lambda: CompiledMultiplier(strategy="barrett", use_numpy=True),
        ),
    ]


def _operands(rng: random.Random, modulus: int) -> list:
    degenerate = [0, 1, modulus - 1]
    pairs = [(a, b) for a in degenerate for b in degenerate]
    pairs.extend(
        (rng.randrange(modulus), rng.randrange(modulus))
        for _ in range(PAIRS_PER_CASE)
    )
    return pairs


@pytest.fixture(autouse=True, scope="module")
def _fresh_kernel_cache():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


def _assert_parity(modulus: int, rng: random.Random) -> None:
    pairs = _operands(rng, modulus)
    oracle = [a * b % modulus for a, b in pairs]
    reference = R4CSALutMultiplier()
    reference.prepare(modulus)
    r4csa = [reference._multiply(a, b, modulus) for a, b in pairs]
    assert r4csa == oracle, f"r4csa-lut deviates at p={modulus:#x}"
    for label, factory in _evaluators():
        multiplier = factory()
        scalar = [multiplier._multiply(a, b, modulus) for a, b in pairs]
        batched = multiplier._multiply_batch(pairs, modulus)
        assert scalar == oracle, (
            f"compiled[{label}] scalar deviates at p={modulus:#x}"
        )
        assert list(batched) == oracle, (
            f"compiled[{label}] batch deviates at p={modulus:#x}"
        )


@pytest.mark.parametrize("bits", WIDTHS)
def test_random_moduli_at_width(bits):
    """Random odd moduli of every width, all evaluators agreeing."""
    rng = random.Random(SEED ^ bits)
    for _ in range(3):
        _assert_parity(_random_odd_modulus(rng, bits), rng)


@pytest.mark.parametrize(
    "modulus", _adversarial_moduli(), ids=lambda m: f"{m.bit_length()}b"
)
def test_adversarial_moduli(modulus):
    """Mersenne-adjacent / near-power-of-two moduli, odd and even."""
    _assert_parity(modulus, random.Random(SEED ^ modulus))


def test_large_batch_numpy_window():
    """A batch big enough to trigger the numpy path stays bit-identical."""
    modulus = (1 << 31) - 1
    rng = random.Random(SEED)
    pairs = [
        (rng.randrange(modulus), rng.randrange(modulus)) for _ in range(512)
    ]
    pairs.extend([(0, 0), (1, modulus - 1), (modulus - 1, modulus - 1)])
    oracle = [a * b % modulus for a, b in pairs]
    multiplier = CompiledMultiplier(use_numpy=True)
    assert list(multiplier._multiply_batch(pairs, modulus)) == oracle
