"""The process-wide kernel cache: exactly-once builds, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.compiled import (
    cached_kernel_keys,
    clear_kernel_cache,
    get_kernel,
    kernel_cache_stats,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


class TestKernelCache:
    def test_same_modulus_returns_the_same_kernel(self):
        first = get_kernel(997)
        second = get_kernel(997)
        assert first is second
        stats = kernel_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1
        assert stats["resident"] == 1

    def test_strategy_is_part_of_the_key(self):
        barrett = get_kernel(997, strategy="barrett")
        native = get_kernel(997, strategy="native")
        assert barrett is not native
        assert {key[1] for key in cached_kernel_keys()} == {
            "barrett",
            "native",
        }
        # Both reduce identically.
        assert barrett.multiply(123, 456) == native.multiply(123, 456)

    def test_clear_drops_kernels_and_counters(self):
        get_kernel(997)
        assert clear_kernel_cache() == 1
        assert kernel_cache_stats() == {
            "resident": 0,
            "builds": 0,
            "hits": 0,
        }

    def test_concurrent_cold_requests_build_exactly_once(self):
        """16 threads racing one cold modulus must share a single build."""
        modulus = 0xFFFFFFFFFFFFFFC5
        barrier = threading.Barrier(16)
        kernels = []
        errors = []

        def worker():
            try:
                barrier.wait()
                kernels.append(get_kernel(modulus))
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(kernels) == 16
        assert all(kernel is kernels[0] for kernel in kernels)
        assert kernel_cache_stats()["builds"] == 1
