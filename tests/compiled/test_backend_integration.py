"""The ``compiled`` backend through every layer above it.

Registry listing and codegen metadata, the engine's ``_multiply_batch``
hook, EngineSpec round-trips (the contract that lets pool shards and
cluster workers rebuild identical compiled kernels), and the numpy
feature flag's graceful degradation.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.compiled import CompiledMultiplier, clear_kernel_cache
from repro.compiled.kernels import NUMPY_MIN_BATCH, numpy_state
from repro.core.algorithms.base import create_multiplier
from repro.ecc.curves_data import CURVE_SPECS
from repro.engine import Engine, EngineSpec
from repro.engine.backend import available_backends, get_backend
from repro.errors import ConfigurationError

BN254_P = CURVE_SPECS["bn254"].field_modulus


class TestRegistry:
    def test_compiled_is_a_registered_backend(self):
        assert "compiled" in available_backends()
        info = get_backend("compiled").info
        assert info.kind == "software"
        assert info.direct_form is True

    def test_codegen_metadata_is_exposed(self):
        info = get_backend("compiled").info
        assert info.codegen is not None
        assert info.codegen["strategy"] == "barrett"
        assert "overflow-lut" in info.codegen["constants"]
        assert info.codegen["numpy_flag"] == "REPRO_COMPILED_NUMPY"
        as_dict = info.as_dict()
        assert as_dict["codegen"]["strategy"] == "barrett"
        # Non-codegen backends keep the field None.
        assert get_backend("r4csa-lut").info.as_dict()["codegen"] is None

    def test_create_multiplier_accepts_strategy(self):
        multiplier = create_multiplier("compiled", strategy="native")
        assert multiplier.strategy == "native"
        with pytest.raises(ConfigurationError, match="unknown option"):
            create_multiplier("compiled", fidelity="cycle")
        with pytest.raises(ConfigurationError, match="unknown codegen"):
            CompiledMultiplier(strategy="simd")


class TestEngineBatchHook:
    def test_batch_goes_through_the_compiled_kernel(self):
        engine = Engine(backend="compiled", modulus=BN254_P)
        rng = random.Random(7)
        pairs = [
            (rng.randrange(BN254_P), rng.randrange(BN254_P))
            for _ in range(64)
        ]
        batch = engine.multiply_batch(pairs)
        assert list(batch) == [a * b % BN254_P for a, b in pairs]
        assert batch.backend == "compiled"
        assert batch.stats.multiplications == 64
        # The hook dispatches once per batch, not once per element: the
        # depth-one kernel residency counter must not grow with the batch.
        assert batch.stats.precomputations <= 1

    def test_scalar_multiply_matches_the_batch_path(self):
        engine = Engine(backend="compiled", modulus=BN254_P)
        a, b = 12345, 67890
        assert int(engine.multiply(a, b)) == a * b % BN254_P

    def test_prepared_context_reports_warm_kernel(self):
        engine = Engine(backend="compiled", modulus=997)
        context = engine.context()
        kernel = context.multiplier.kernel_for(997)
        assert kernel.modulus == 997
        assert "997" in kernel.source


class TestSpecRoundTrip:
    def test_default_spec_is_compiled(self):
        assert EngineSpec().backend == "compiled"
        assert EngineSpec().validate().build().info.name == "compiled"

    def test_spec_round_trips_and_rebuilds_identical_kernels(self):
        spec = EngineSpec(backend="compiled", modulus=BN254_P, cache_size=4)
        assert EngineSpec.from_dict(spec.as_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec
        first, second = spec.build(), spec.build()
        rng = random.Random(11)
        pairs = [
            (rng.randrange(BN254_P), rng.randrange(BN254_P))
            for _ in range(16)
        ]
        assert (
            first.multiply_batch(pairs).values
            == second.multiply_batch(pairs).values
        )
        # Both engines resolve the one process-wide kernel.
        assert first.context().multiplier.kernel_for(
            BN254_P
        ) is second.context().multiplier.kernel_for(BN254_P)

    def test_engine_spec_derivation_round_trips_the_backend(self):
        engine = Engine(backend="compiled", curve="bn254")
        spec = engine.spec()
        assert spec.backend == "compiled"
        assert spec.build().info.name == "compiled"


class TestNumpyFlag:
    def test_flag_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_NUMPY", raising=False)
        state = numpy_state()
        assert state.requested is False
        assert state.reason is not None

    def test_env_zero_force_disables_explicit_requests(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_NUMPY", "0")
        assert numpy_state(use_numpy=True).requested is False

    def test_numpy_path_is_bit_identical_when_active(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_NUMPY", "1")
        clear_kernel_cache()
        try:
            modulus = (1 << 31) - 1  # Mersenne, inside the int64 window
            multiplier = CompiledMultiplier(use_numpy=True)
            kernel = multiplier.kernel_for(modulus)
            rng = random.Random(13)
            pairs = [
                (rng.randrange(modulus), rng.randrange(modulus))
                for _ in range(NUMPY_MIN_BATCH * 2)
            ]
            expected = [a * b % modulus for a, b in pairs]
            assert multiplier._multiply_batch(pairs, modulus) == expected
            if numpy_state(use_numpy=True).available:
                assert kernel.numpy_eligible
        finally:
            clear_kernel_cache()

    def test_wide_moduli_fall_back_to_the_scalar_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_NUMPY", "1")
        clear_kernel_cache()
        try:
            multiplier = CompiledMultiplier(use_numpy=True)
            kernel = multiplier.kernel_for(BN254_P)
            assert kernel.numpy_eligible is False  # 254 bits > int64 window
            rng = random.Random(17)
            pairs = [
                (rng.randrange(BN254_P), rng.randrange(BN254_P))
                for _ in range(NUMPY_MIN_BATCH + 8)
            ]
            assert multiplier._multiply_batch(pairs, BN254_P) == [
                a * b % BN254_P for a, b in pairs
            ]
        finally:
            clear_kernel_cache()
