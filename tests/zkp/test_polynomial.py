"""Tests for the polynomial layer over prime fields."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NttError, OperandRangeError
from repro.zkp import NttContext, Polynomial

#: The BN254 scalar field — the field ZKP polynomial arithmetic uses.
R = 0x30644E72E131A029B85045B68181585D2833E84879B9709143E1F593F0000001
#: A small NTT-friendly prime for exhaustive checks.
SMALL = 97

coefficient_lists = st.lists(st.integers(0, SMALL - 1), min_size=1, max_size=12)


class TestConstruction:
    def test_normalisation_trims_trailing_zeros(self):
        poly = Polynomial.create([1, 2, 0, 0], SMALL)
        assert poly.coefficients == (1, 2)
        assert poly.degree == 1

    def test_coefficients_are_reduced(self):
        poly = Polynomial.create([100, -1], SMALL)
        assert poly.coefficients == (3, 96)

    def test_zero_and_one(self):
        assert Polynomial.zero(SMALL).is_zero()
        assert Polynomial.one(SMALL).coefficients == (1,)

    def test_zero_polynomial_has_degree_zero(self):
        assert Polynomial.create([0, 0, 0], SMALL).degree == 0

    def test_invalid_modulus_rejected(self):
        with pytest.raises(OperandRangeError):
            Polynomial.create([1], 1)

    def test_coefficient_accessor(self):
        poly = Polynomial.create([5, 7], SMALL)
        assert poly.coefficient(0) == 5
        assert poly.coefficient(5) == 0
        with pytest.raises(OperandRangeError):
            poly.coefficient(-1)


class TestRingOperations:
    def test_addition_and_subtraction(self):
        a = Polynomial.create([1, 2, 3], SMALL)
        b = Polynomial.create([4, 5], SMALL)
        assert (a + b).coefficients == (5, 7, 3)
        assert (a - b).coefficients == (94, 94, 3)
        assert ((a + b) - b) == a

    def test_scale(self):
        a = Polynomial.create([1, 2], SMALL)
        assert a.scale(10).coefficients == (10, 20)
        assert a.scale(0).is_zero()

    def test_schoolbook_product_known_value(self):
        a = Polynomial.create([1, 1], SMALL)     # 1 + x
        b = Polynomial.create([1, 96], SMALL)    # 1 - x
        assert (a.multiply_schoolbook(b)).coefficients == (1, 0, 96)  # 1 - x^2

    def test_product_with_zero(self):
        a = Polynomial.create([3, 1], SMALL)
        assert (a * Polynomial.zero(SMALL)).is_zero()

    def test_mixing_fields_rejected(self):
        with pytest.raises(OperandRangeError):
            Polynomial.create([1], SMALL) + Polynomial.create([1], 101)

    @given(coefficient_lists, coefficient_lists)
    @settings(max_examples=40, deadline=None)
    def test_multiplication_is_commutative(self, a_coeffs, b_coeffs):
        a = Polynomial.create(a_coeffs, SMALL)
        b = Polynomial.create(b_coeffs, SMALL)
        assert a * b == b * a

    @given(coefficient_lists, coefficient_lists, coefficient_lists)
    @settings(max_examples=25, deadline=None)
    def test_distributivity(self, a_coeffs, b_coeffs, c_coeffs):
        a = Polynomial.create(a_coeffs, SMALL)
        b = Polynomial.create(b_coeffs, SMALL)
        c = Polynomial.create(c_coeffs, SMALL)
        assert a * (b + c) == a * b + a * c

    @given(coefficient_lists, st.integers(0, SMALL - 1))
    @settings(max_examples=40, deadline=None)
    def test_evaluation_is_a_ring_homomorphism(self, coeffs, point):
        a = Polynomial.create(coeffs, SMALL)
        b = Polynomial.create(list(reversed(coeffs)), SMALL)
        assert (a * b).evaluate(point) == (a.evaluate(point) * b.evaluate(point)) % SMALL
        assert (a + b).evaluate(point) == (a.evaluate(point) + b.evaluate(point)) % SMALL


class TestNttMultiplication:
    def test_ntt_product_matches_schoolbook(self, rng):
        a = Polynomial.create([rng.randrange(R) for _ in range(20)], R)
        b = Polynomial.create([rng.randrange(R) for _ in range(25)], R)
        assert a.multiply_ntt(b) == a.multiply_schoolbook(b)

    def test_operator_uses_ntt_for_large_products(self, rng):
        a = Polynomial.create([rng.randrange(R) for _ in range(40)], R)
        b = Polynomial.create([rng.randrange(R) for _ in range(40)], R)
        assert (a * b) == a.multiply_schoolbook(b)

    def test_explicit_context_is_reused(self, rng):
        context = NttContext(R, 64)
        a = Polynomial.create([rng.randrange(R) for _ in range(20)], R)
        b = Polynomial.create([rng.randrange(R) for _ in range(20)], R)
        product = a.multiply_ntt(b, context=context)
        assert product == a.multiply_schoolbook(b)
        assert context.counter.count("modmul") > 0

    def test_too_small_context_rejected(self):
        context = NttContext(R, 4)
        a = Polynomial.create(list(range(1, 6)), R)
        with pytest.raises(NttError):
            a.multiply_ntt(a, context=context)

    def test_context_field_mismatch_rejected(self):
        context = NttContext(97, 8)
        a = Polynomial.create([1, 2, 3], R)
        with pytest.raises(NttError):
            a.multiply_ntt(a, context=context)

    def test_repr_is_compact(self):
        poly = Polynomial.create(list(range(10)), R)
        assert "degree=9" in repr(poly)
