"""Tests for multi-scalar multiplication and the Figure 7 operation models."""

from __future__ import annotations

import math

import pytest

from repro.ecc import get_curve, scalar_multiply
from repro.errors import OperandRangeError
from repro.zkp import (
    MsmStatistics,
    default_window_bits,
    msm_naive,
    msm_operation_counts,
    msm_pippenger,
    msm_point_additions,
    ntt_operation_counts,
)
from repro.zkp.opcount import (
    MULS_PER_DOUBLING,
    MULS_PER_GENERAL_ADDITION,
    MULS_PER_MIXED_ADDITION,
    PAPER_FIGURE7_BITWIDTH,
    PAPER_FIGURE7_VECTOR_SIZE,
)


def _sample_points(curve, rng, count):
    base = curve.generator
    return [
        scalar_multiply(curve, rng.randrange(3, 1 << 62), base) for _ in range(count)
    ]


class TestMsm:
    def test_naive_and_pippenger_agree(self, rng):
        curve = get_curve("secp256k1")
        points = _sample_points(curve, rng, 10)
        scalars = [rng.randrange(1, 1 << 48) for _ in range(10)]
        assert msm_naive(curve, scalars, points) == msm_pippenger(
            curve, scalars, points
        )

    def test_various_window_sizes_agree(self, rng):
        curve = get_curve("bn254")
        points = _sample_points(curve, rng, 8)
        scalars = [rng.randrange(1, 1 << 32) for _ in range(8)]
        reference = msm_naive(curve, scalars, points)
        for window in (2, 3, 5, 8):
            assert msm_pippenger(curve, scalars, points, window_bits=window) == reference

    def test_zero_scalars_yield_infinity(self, rng):
        curve = get_curve("secp256k1")
        points = _sample_points(curve, rng, 4)
        assert msm_pippenger(curve, [0, 0, 0, 0], points).is_infinity

    def test_empty_input(self):
        curve = get_curve("secp256k1")
        assert msm_pippenger(curve, [], []).is_infinity

    def test_single_pair_equals_scalar_multiplication(self, rng):
        curve = get_curve("secp256k1")
        point = _sample_points(curve, rng, 1)[0]
        scalar = rng.randrange(1, 1 << 62)
        assert msm_pippenger(curve, [scalar], [point]) == scalar_multiply(
            curve, scalar, point
        )

    def test_mismatched_lengths_rejected(self, rng):
        curve = get_curve("secp256k1")
        with pytest.raises(OperandRangeError):
            msm_pippenger(curve, [1, 2], _sample_points(curve, rng, 1))
        with pytest.raises(OperandRangeError):
            msm_naive(curve, [1, 2], _sample_points(curve, rng, 1))

    def test_negative_scalar_rejected(self, rng):
        curve = get_curve("secp256k1")
        with pytest.raises(OperandRangeError):
            msm_pippenger(curve, [-1], _sample_points(curve, rng, 1))

    def test_statistics_structure(self, rng):
        curve = get_curve("secp256k1")
        points = _sample_points(curve, rng, 16)
        scalars = [rng.randrange(1, 1 << 64) for _ in range(16)]
        stats = MsmStatistics()
        msm_pippenger(curve, scalars, points, window_bits=4, statistics=stats)
        assert stats.points == 16
        assert stats.window_bits == 4
        assert stats.windows == 16  # 64-bit scalars, 4-bit windows
        assert stats.doublings == stats.windows * 4
        assert stats.point_additions > 0

    def test_default_window_grows_with_size(self):
        assert default_window_bits(2) == 2
        assert default_window_bits(1 << 10) == 9
        assert default_window_bits(1 << 15) == 14
        with pytest.raises(OperandRangeError):
            default_window_bits(0)


class TestOperationCountModels:
    def test_ntt_model_matches_instrumented_run(self):
        """The closed-form NTT counts equal the instrumented implementation."""
        from repro.analysis import measure_ntt_counts

        measured = measure_ntt_counts(size=256)
        model = ntt_operation_counts(vector_size=256, bitwidth=254)
        assert measured["modular_multiplication"] == model.modular_multiplications
        assert measured["memory_access"] == model.memory_accesses
        assert measured["register_writes"] == model.register_writes

    def test_msm_model_brackets_instrumented_run(self, rng):
        """The closed-form MSM multiplication count tracks the measured count.

        The model assumes every input point lands in a non-empty bucket and
        every bucket is populated; at small sizes some buckets stay empty, so
        the model must be an upper bound but within a small factor.
        """
        curve = get_curve("secp256k1")
        size, window = 64, 4
        points = _sample_points(curve, rng, size)
        scalars = [rng.randrange(1, 1 << 256) % curve.field.modulus for _ in range(size)]
        curve.field.counter.reset()
        msm_pippenger(curve, scalars, points, window_bits=window)
        measured = curve.field.counter.count("modmul")
        model = msm_operation_counts(size, 256, window_bits=window)
        assert measured <= model.modular_multiplications
        assert model.modular_multiplications < 3 * measured

    def test_ntt_paper_operating_point(self):
        counts = ntt_operation_counts()
        assert counts.vector_size == PAPER_FIGURE7_VECTOR_SIZE
        assert counts.modular_multiplications == (2**15 // 2) * 15
        assert counts.memory_accesses == 5 * counts.modular_multiplications
        # Figure 7 scale: NTT sits in the 1e5 - 1e7 decade band.
        assert 1e5 < counts.modular_multiplications < 1e6
        assert 1e6 < counts.memory_accesses < 1e7

    def test_msm_paper_operating_point(self):
        counts = msm_operation_counts()
        assert counts.bitwidth == PAPER_FIGURE7_BITWIDTH
        # Figure 7 scale: MSM is orders of magnitude above NTT.
        ntt = ntt_operation_counts()
        assert counts.modular_multiplications > 50 * ntt.modular_multiplications
        assert 1e7 < counts.modular_multiplications < 1e8
        assert 1e8 < counts.memory_accesses < 1e9
        assert 1e8 < counts.register_writes < 1e9

    def test_msm_structure_formula(self):
        structure = msm_point_additions(2**15, 256, 16)
        assert structure["windows"] == 16
        assert structure["buckets_per_window"] == 2**16 - 1
        assert structure["mixed_additions"] == 16 * 2**15

    def test_msm_modmul_composition(self):
        structure = msm_point_additions(1024, 256, 8)
        counts = msm_operation_counts(1024, 256, window_bits=8)
        expected = (
            structure["mixed_additions"] * MULS_PER_MIXED_ADDITION
            + structure["general_additions"] * MULS_PER_GENERAL_ADDITION
            + structure["doublings"] * MULS_PER_DOUBLING
        )
        assert counts.modular_multiplications == expected

    def test_as_dict_keys_match_figure_labels(self):
        counts = ntt_operation_counts(1024, 256)
        assert set(counts.as_dict()) == {
            "modular_multiplication",
            "memory_access",
            "register_writes",
        }

    def test_validation(self):
        with pytest.raises(OperandRangeError):
            ntt_operation_counts(1000, 256)
        with pytest.raises(OperandRangeError):
            ntt_operation_counts(1024, 0)
        with pytest.raises(OperandRangeError):
            msm_operation_counts(0, 256)
        with pytest.raises(OperandRangeError):
            msm_operation_counts(1024, 256, window_bits=0)
