"""Tests for the number-theoretic transform."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NttError
from repro.zkp import NttContext, bit_reverse_indices, find_root_of_unity

#: A small NTT-friendly prime: 97 - 1 = 2^5 * 3.
SMALL_PRIME = 97
#: The BN254 scalar field (2-adicity 28), the field ZKP systems transform over.
BN254_R = 0x30644E72E131A029B85045B68181585D2833E84879B9709143E1F593F0000001


class TestHelpers:
    def test_bit_reverse_indices(self):
        assert bit_reverse_indices(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_bit_reverse_is_an_involution(self):
        indices = bit_reverse_indices(64)
        assert [indices[i] for i in indices] == list(range(64))

    def test_bit_reverse_requires_power_of_two(self):
        with pytest.raises(NttError):
            bit_reverse_indices(12)

    def test_find_root_of_unity_has_exact_order(self):
        root = find_root_of_unity(SMALL_PRIME, 16)
        assert pow(root, 16, SMALL_PRIME) == 1
        assert pow(root, 8, SMALL_PRIME) != 1

    def test_find_root_for_bn254_scalar_field(self):
        root = find_root_of_unity(BN254_R, 1 << 10)
        assert pow(root, 1 << 10, BN254_R) == 1
        assert pow(root, 1 << 9, BN254_R) != 1

    def test_unfriendly_size_rejected(self):
        with pytest.raises(NttError):
            find_root_of_unity(SMALL_PRIME, 64)  # 64 does not divide 96


class TestTransform:
    def test_round_trip_small_prime(self, rng):
        context = NttContext(SMALL_PRIME, 16)
        values = [rng.randrange(SMALL_PRIME) for _ in range(16)]
        assert context.inverse(context.forward(values)) == values

    def test_round_trip_bn254(self, rng):
        context = NttContext(BN254_R, 128)
        values = [rng.randrange(BN254_R) for _ in range(128)]
        assert context.inverse(context.forward(values)) == values

    def test_forward_matches_naive_dft(self, rng):
        size = 8
        context = NttContext(SMALL_PRIME, size)
        values = [rng.randrange(SMALL_PRIME) for _ in range(size)]
        transformed = context.forward(values)
        root = context.root
        for k in range(size):
            expected = sum(
                values[j] * pow(root, j * k, SMALL_PRIME) for j in range(size)
            ) % SMALL_PRIME
            assert transformed[k] == expected

    def test_transform_of_delta_is_constant(self):
        context = NttContext(SMALL_PRIME, 8)
        delta = [1] + [0] * 7
        assert context.forward(delta) == [1] * 8

    def test_linearity(self, rng):
        context = NttContext(SMALL_PRIME, 16)
        a = [rng.randrange(SMALL_PRIME) for _ in range(16)]
        b = [rng.randrange(SMALL_PRIME) for _ in range(16)]
        summed = [(x + y) % SMALL_PRIME for x, y in zip(a, b)]
        lhs = context.forward(summed)
        rhs = [
            (x + y) % SMALL_PRIME
            for x, y in zip(context.forward(a), context.forward(b))
        ]
        assert lhs == rhs

    def test_wrong_length_rejected(self):
        context = NttContext(SMALL_PRIME, 8)
        with pytest.raises(NttError):
            context.forward([1, 2, 3])

    def test_invalid_sizes_rejected(self):
        with pytest.raises(NttError):
            NttContext(SMALL_PRIME, 12)
        with pytest.raises(NttError):
            NttContext(SMALL_PRIME, 1)
        with pytest.raises(NttError):
            NttContext(2, 8)

    def test_bad_explicit_root_rejected(self):
        with pytest.raises(NttError):
            NttContext(SMALL_PRIME, 8, root_of_unity=1)

    @given(st.integers(0, SMALL_PRIME - 1), st.integers(0, SMALL_PRIME - 1))
    @settings(max_examples=25, deadline=None)
    def test_convolution_theorem(self, x, y):
        """Pointwise products in the evaluation domain convolve coefficients."""
        context = NttContext(SMALL_PRIME, 8)
        a = [x, 1, 0, 0, 0, 0, 0, 0]
        b = [y, 2, 0, 0, 0, 0, 0, 0]
        eval_product = [
            (u * v) % SMALL_PRIME
            for u, v in zip(context.forward(a), context.forward(b))
        ]
        coefficients = context.inverse(eval_product)
        assert coefficients[0] == (x * y) % SMALL_PRIME
        assert coefficients[1] == (2 * x + y) % SMALL_PRIME
        assert coefficients[2] == 2 % SMALL_PRIME


class TestPolynomialMultiplication:
    def test_matches_schoolbook(self, rng):
        context = NttContext(BN254_R, 32)
        a = [rng.randrange(1000) for _ in range(16)]
        b = [rng.randrange(1000) for _ in range(16)]
        product = context.multiply_polynomials(a, b)
        expected = [0] * 32
        for i, x in enumerate(a):
            for j, y in enumerate(b):
                expected[(i + j)] = (expected[i + j] + x * y) % BN254_R
        assert product == expected

    def test_degree_bound_enforced(self):
        context = NttContext(SMALL_PRIME, 8)
        with pytest.raises(NttError):
            context.multiply_polynomials([1] * 5, [1] * 2)


class TestOperationCounting:
    def test_butterfly_count_matches_formula(self):
        context = NttContext(SMALL_PRIME, 16)
        context.forward([0] * 16)
        stages = 4
        assert context.counter.count("modmul") == (16 // 2) * stages
        assert context.counter.count("memory_access") == 5 * (16 // 2) * stages
        assert context.counter.count("register_write") > 0

    def test_scopes_separate_forward_and_inverse(self):
        context = NttContext(SMALL_PRIME, 8)
        context.inverse(context.forward([1] * 8))
        assert "forward" in context.counter.scopes()
        assert "inverse" in context.counter.scopes()
        assert context.counter.scoped("inverse")["modmul"] > context.counter.scoped(
            "forward"
        )["modmul"]
