"""Structural IR: width algebra, validation rules, flattening."""

from __future__ import annotations

import pytest

from repro.hdl.ir import (
    Assign,
    BinOp,
    Cat,
    Const,
    HdlError,
    Instance,
    Memory,
    MemRead,
    Module,
    Mux,
    Port,
    Process,
    Reg,
    Ref,
    SAssign,
    Slice,
    UnOp,
    Wire,
    expr_width,
)

WIDTHS = {"a": 8, "b": 8, "c": 1, "wide": 12}
MEMS = {"mem": 16}


class TestExprWidth:
    """The width rules the emitter and simulator both rely on."""

    @pytest.mark.parametrize(
        "expr,width",
        [
            (Const(5, 4), 4),
            (Ref("a"), 8),
            (BinOp("add", Ref("a"), Ref("b")), 9),
            (BinOp("sub", Ref("a"), Ref("b")), 8),
            (BinOp("and", Ref("a"), Ref("wide")), 12),
            (BinOp("shl", Ref("a"), Const(3, 2)), 11),
            (BinOp("shr", Ref("wide"), Const(4, 3)), 12),
            (BinOp("eq", Ref("a"), Ref("b")), 1),
            (BinOp("lt", Ref("wide"), Const(9, 4)), 1),
            (UnOp("not", Ref("wide")), 1),
            (Mux(Ref("c"), Ref("a"), Ref("b")), 8),
            (Slice(Ref("wide"), 7, 4), 4),
            (Slice(Ref("a"), 0, 0), 1),
            (Cat((Ref("c"), Ref("a"))), 9),
            (MemRead("mem", Ref("a")), 16),
        ],
    )
    def test_width(self, expr, width):
        assert expr_width(expr, WIDTHS, MEMS) == width


class TestDeclarationRules:
    def test_const_must_fit(self):
        with pytest.raises(HdlError, match="does not fit"):
            Const(16, 4)

    def test_reg_reset_must_fit(self):
        with pytest.raises(HdlError, match="reset value does not fit"):
            Reg("r", 2, reset=7)

    def test_port_direction(self):
        with pytest.raises(HdlError, match="direction"):
            Port("p", 1, "inout")

    def test_slice_bounds(self):
        with pytest.raises(HdlError, match="bad slice"):
            Slice(Ref("a"), 2, 5)


def _module(**overrides) -> Module:
    """A small valid module the negative tests perturb."""
    fields = dict(
        name="m",
        ports=(
            Port("clk", 1, "in"),
            Port("d", 4, "in"),
            Port("q", 4, "out"),
        ),
        regs=(Reg("r", 4),),
        wires=(Wire("w", 4),),
        assigns=(
            Assign("w", BinOp("xor", Ref("d"), Ref("r"))),
            Assign("q", Ref("r")),
        ),
        processes=(Process("seq", (SAssign("r", Ref("w")),)),),
    )
    fields.update(overrides)
    return Module(**fields)


class TestValidate:
    def test_valid_module_passes(self):
        _module().validate()

    def test_duplicate_name(self):
        module = _module(wires=(Wire("w", 4), Wire("w", 4)))
        with pytest.raises(HdlError, match="duplicate signal name"):
            module.validate()

    def test_unknown_signal_in_assign(self):
        module = _module(assigns=(Assign("w", Ref("ghost")), Assign("q", Ref("r"))))
        with pytest.raises(HdlError, match="unknown signal 'ghost'"):
            module.validate()

    def test_assign_target_must_be_wire_or_output(self):
        module = _module(
            assigns=(
                Assign("r", Ref("d")),
                Assign("q", Ref("r")),
            )
        )
        with pytest.raises(HdlError, match="not a.*wire or output"):
            module.validate()

    def test_wire_driven_once(self):
        module = _module(
            assigns=(
                Assign("w", Ref("d")),
                Assign("w", Ref("r")),
                Assign("q", Ref("r")),
            )
        )
        with pytest.raises(HdlError, match="driven more than once"):
            module.validate()

    def test_sequential_target_must_be_reg(self):
        module = _module(
            processes=(Process("seq", (SAssign("w", Ref("d")),)),),
        )
        with pytest.raises(HdlError, match="is not a reg"):
            module.validate()

    def test_reg_owned_by_one_process(self):
        module = _module(
            processes=(
                Process("seq", (SAssign("r", Ref("w")),)),
                Process("seq2", (SAssign("r", Ref("d")),)),
            ),
        )
        with pytest.raises(HdlError, match="written from both"):
            module.validate()

    def test_shift_amount_must_be_constant(self):
        module = _module(
            assigns=(
                Assign("w", BinOp("shl", Ref("d"), Ref("r"))),
                Assign("q", Ref("r")),
            )
        )
        with pytest.raises(HdlError, match="shift amounts must be constants"):
            module.validate()

    def test_instance_binding_width_mismatch(self):
        child = Module(
            name="child",
            ports=(Port("clk", 1, "in"), Port("x", 8, "in"), Port("y", 8, "out")),
            wires=(Wire("t", 8),),
            assigns=(Assign("t", Ref("x")), Assign("y", Ref("t"))),
        )
        parent = Module(
            name="parent",
            ports=(Port("clk", 1, "in"), Port("q", 4, "out")),
            wires=(Wire("narrow", 4),),
            assigns=(Assign("q", Ref("narrow")),),
            instances=(
                Instance(child, "u0", {"clk": "clk", "x": "narrow", "y": "narrow"}),
            ),
        )
        with pytest.raises(HdlError, match="width"):
            parent.validate()

    def test_instance_unbound_port(self):
        child = Module(
            name="child",
            ports=(Port("clk", 1, "in"), Port("x", 4, "in")),
        )
        parent = Module(
            name="parent",
            ports=(Port("clk", 1, "in"),),
            instances=(Instance(child, "u0", {"clk": "clk"}),),
        )
        with pytest.raises(HdlError, match="unbound"):
            parent.validate()


class TestFlatten:
    def test_instance_signals_are_prefixed(self):
        child = Module(
            name="child",
            ports=(Port("clk", 1, "in"), Port("x", 4, "in"), Port("y", 4, "out")),
            regs=(Reg("state", 4),),
            assigns=(Assign("y", Ref("state")),),
            processes=(Process("seq", (SAssign("state", Ref("x")),)),),
        )
        parent = Module(
            name="parent",
            ports=(Port("clk", 1, "in"), Port("d", 4, "in"), Port("q", 4, "out")),
            wires=(Wire("mid", 4),),
            assigns=(Assign("q", Ref("mid")),),
            instances=(Instance(child, "c0", {"clk": "clk", "x": "d", "y": "mid"}),),
        )
        parent.validate()
        flat = parent.flatten()
        flat.validate()
        names = set(flat.signal_widths())
        assert "u_c0__state" in names
        assert not flat.instances

    def test_memory_declaration(self):
        memory = Memory("mem", 8, 16)
        assert memory.width == 8 and memory.depth == 16
        with pytest.raises(HdlError, match="width/depth"):
            Memory("bad", 0, 16)
