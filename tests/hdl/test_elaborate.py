"""Elaboration: the macro IR is valid, parameterized and stable."""

from __future__ import annotations

import pytest

from repro.hdl.elaborate import STATE_ENCODING, elaborate_macro
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG


class TestDesignShape:
    def test_three_modules_all_valid(self):
        design = elaborate_macro()
        names = [module.name for module in design.modules]
        assert names == ["modsram_ctrl", "modsram_datapath", "modsram_macro"]
        for module in design.modules:
            module.validate()
        design.top.flatten().validate()

    def test_state_encoding_is_the_documented_fsm(self):
        assert STATE_ENCODING == {
            "ST_IDLE": 0,
            "ST_LOAD": 1,
            "ST_PRECOMPUTE": 2,
            "ST_ITERATE": 3,
            "ST_FINALIZE": 4,
            "ST_DONE": 5,
        }
        assert elaborate_macro().state_values == STATE_ENCODING

    def test_top_ports_match_operand_width(self):
        for bitwidth in (16, 64):
            config = ModSRAMConfig().with_bitwidth(bitwidth)
            top = elaborate_macro(config).top
            widths = {port.name: port.width for port in top.ports}
            assert widths["op_a"] == bitwidth
            assert widths["op_b"] == bitwidth
            assert widths["op_p"] == bitwidth
            assert widths["product"] == bitwidth
            assert widths["done"] == 1

    def test_memory_matches_the_configured_geometry(self):
        config = ModSRAMConfig().with_bitwidth(32)
        datapath = elaborate_macro(config).datapath
        (memory,) = datapath.memories
        assert memory.depth == config.rows
        assert memory.width == config.bitwidth


class TestDeterminism:
    def test_same_config_elaborates_identically(self):
        first = elaborate_macro(PAPER_CONFIG)
        second = elaborate_macro(PAPER_CONFIG)
        assert first.ctrl == second.ctrl
        assert first.datapath == second.datapath
        assert first.top == second.top

    @pytest.mark.parametrize("bitwidth", [16, 32])
    def test_geometry_changes_the_netlist(self, bitwidth):
        base = elaborate_macro(ModSRAMConfig().with_bitwidth(bitwidth))
        other = elaborate_macro(ModSRAMConfig().with_bitwidth(bitwidth * 2))
        assert base.datapath != other.datapath
