"""Event-driven simulator: delta settling, register semantics, the wheel."""

from __future__ import annotations

import pytest

from repro.hdl.eventsim import EventSimulator
from repro.hdl.ir import (
    Assign,
    BinOp,
    Const,
    HdlError,
    Memory,
    MemRead,
    MemWrite,
    Module,
    Mux,
    Port,
    Process,
    Reg,
    Ref,
    SAssign,
    SIf,
    Slice,
    Wire,
)


def _counter() -> Module:
    """A 4-bit counter with enable and synchronous clear."""
    return Module(
        name="counter",
        ports=(
            Port("clk", 1, "in"),
            Port("enable", 1, "in"),
            Port("clear", 1, "in"),
            Port("count", 4, "out"),
        ),
        regs=(Reg("value", 4),),
        wires=(Wire("next_value", 4),),
        assigns=(
            Assign("next_value", BinOp("add", Ref("value"), Const(1, 1))),
            Assign("count", Ref("value")),
        ),
        processes=(
            Process(
                "seq",
                (
                    SIf(
                        Ref("clear"),
                        (SAssign("value", Const(0, 4)),),
                        (
                            SIf(
                                Ref("enable"),
                                (SAssign("value", Ref("next_value")),),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )


class TestRegisterSemantics:
    def test_counter_counts_only_when_enabled(self):
        sim = EventSimulator(_counter())
        assert sim.peek("count") == 0
        sim.step(3)
        assert sim.peek("count") == 0  # enable low
        sim.poke("enable", 1)
        sim.step(5)
        assert sim.peek("count") == 5
        sim.poke("enable", 0)
        sim.step(2)
        assert sim.peek("count") == 5

    def test_counter_wraps_at_width(self):
        sim = EventSimulator(_counter())
        sim.poke("enable", 1)
        sim.step(18)
        assert sim.peek("count") == 2  # 18 mod 16

    def test_synchronous_clear_wins(self):
        sim = EventSimulator(_counter())
        sim.poke("enable", 1)
        sim.step(7)
        sim.poke("clear", 1)
        sim.step()
        assert sim.peek("count") == 0

    def test_event_wheel_pokes_at_cycle(self):
        sim = EventSimulator(_counter())
        sim.at(2, "enable", 1)
        sim.at(6, "enable", 0)
        sim.step(10)
        assert sim.peek("count") == 4  # enabled for cycles 2..5

    def test_process_reads_pre_edge_values(self):
        # One step after enabling: the process saw the old count.
        sim = EventSimulator(_counter())
        sim.poke("enable", 1)
        before = sim.peek("next_value")
        sim.step()
        assert sim.peek("count") == before


class TestCombinationalSettling:
    def test_chained_assigns_settle_out_of_order(self):
        # Declared deliberately in reverse dependency order: the
        # simulator must topologically sort, not trust declaration order.
        module = Module(
            name="chain",
            ports=(Port("clk", 1, "in"), Port("x", 4, "in"), Port("y", 6, "out")),
            wires=(Wire("c", 6), Wire("b", 5), Wire("a", 4)),
            assigns=(
                Assign("y", Ref("c")),
                Assign("c", BinOp("add", Ref("b"), Const(1, 1))),
                Assign("b", BinOp("add", Ref("a"), Const(1, 1))),
                Assign("a", Ref("x")),
            ),
        )
        sim = EventSimulator(module)
        sim.poke("x", 5)
        sim.settle()
        assert sim.peek("y") == 7

    def test_combinational_loop_is_rejected(self):
        module = Module(
            name="loop",
            ports=(Port("clk", 1, "in"), Port("y", 1, "out")),
            wires=(Wire("a", 1), Wire("b", 1)),
            assigns=(
                Assign("a", Ref("b")),
                Assign("b", Ref("a")),
                Assign("y", Ref("a")),
            ),
        )
        with pytest.raises(HdlError, match="combinational loop"):
            EventSimulator(module)

    def test_mux_and_slice(self):
        module = Module(
            name="muxes",
            ports=(
                Port("clk", 1, "in"),
                Port("sel", 1, "in"),
                Port("x", 8, "in"),
                Port("y", 4, "out"),
            ),
            wires=(Wire("hi", 4), Wire("lo", 4)),
            assigns=(
                Assign("hi", Slice(Ref("x"), 7, 4)),
                Assign("lo", Slice(Ref("x"), 3, 0)),
                Assign("y", Mux(Ref("sel"), Ref("hi"), Ref("lo"))),
            ),
        )
        sim = EventSimulator(module)
        sim.poke("x", 0xA5)
        sim.settle()
        assert sim.peek("y") == 0x5
        sim.poke("sel", 1)
        sim.settle()
        assert sim.peek("y") == 0xA

    def test_events_counter_advances(self):
        sim = EventSimulator(_counter())
        before = sim.events
        sim.poke("enable", 1)
        sim.step(3)
        assert sim.events > before


class TestMemory:
    def test_memwrite_and_memread(self):
        module = Module(
            name="memtest",
            ports=(
                Port("clk", 1, "in"),
                Port("wen", 1, "in"),
                Port("addr", 2, "in"),
                Port("data", 8, "in"),
                Port("out", 8, "out"),
            ),
            memories=(Memory("mem", 8, 4),),
            assigns=(Assign("out", MemRead("mem", Ref("addr"))),),
            processes=(
                Process(
                    "seq",
                    (SIf(Ref("wen"), (MemWrite("mem", Ref("addr"), Ref("data")),)),),
                ),
            ),
        )
        sim = EventSimulator(module)
        sim.poke("wen", 1)
        sim.poke("addr", 2)
        sim.poke("data", 0x7E)
        sim.step()
        sim.poke("wen", 0)
        sim.settle()
        assert sim.peek("out") == 0x7E
        assert sim.peek_memory("mem", 2) == 0x7E
        assert sim.peek_memory("mem", 1) == 0

    def test_run_until(self):
        sim = EventSimulator(_counter())
        sim.poke("enable", 1)
        cycles = sim.run_until(lambda s: s.peek("count") == 9, max_cycles=32)
        assert cycles <= 32
        assert sim.peek("count") == 9
