"""Seeded differential fuzzing: event-driven RTL vs every modeled tier.

The HDL tier's value rests entirely on agreeing with the rest of the
stack, so this harness (mirroring ``tests/compiled/test_fuzz_parity.py``)
races four evaluators — the event-driven simulator over the elaborated
RTL, the cycle-accurate tier, the analytical model and Python's big-int
oracle — across the geometries most likely to break the datapath:

* random odd moduli at widths from 16 to 256 bits (the big widths are
  sampled sparsely: one RTL multiply at 256 bits costs ~0.15 s);
* Mersenne-adjacent moduli (``2**k - 1`` and neighbours), where the
  operands hug the top of the macro's word and every carry chain and
  shift-overflow path is exercised;
* near-power-of-two moduli at the *bottom* of the allowed bit-length
  band (``modulus.bit_length() == bitwidth - 2``), the worst case for
  the finalize conditional-subtract chain;
* degenerate operands: 0, 1 and the range limits.

Cycle reports must match the analytical model field by field — including
the paper's 767 main-loop cycles at the 256-bit ``n/2`` design point —
and every product must be bit-identical.  All cases are seeded.
"""

from __future__ import annotations

import random

import pytest

from repro.hdl.eventsim import HdlModSRAM
from repro.modsram.analytical import AnalyticalModSRAM
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG

#: One RNG seed for the whole harness — failures name their case.
SEED = 0x4D1

#: Widths fuzzed with several random moduli (cheap at small widths).
FAST_WIDTHS = (16, 17, 24, 31, 32, 48)
#: Widths fuzzed with one modulus each (RTL cost grows ~quadratically).
SLOW_WIDTHS = (64, 128, 256)

#: Random operand pairs per modulus, beyond the degenerate corners.
PAIRS_PER_CASE = 3


def _a_limit(config: ModSRAMConfig, modulus: int) -> int:
    """Upper bound (exclusive) for the multiplier operand ``a``."""
    if config.extend_for_full_range:
        return modulus
    return min(modulus, 1 << (2 * config.iterations - 1))


def _operands(config: ModSRAMConfig, modulus: int, rng: random.Random) -> list:
    limit = _a_limit(config, modulus)
    pairs = [(0, 0), (0, modulus - 1), (1, 1), (limit - 1, modulus - 1)]
    pairs.extend(
        (rng.randrange(limit), rng.randrange(modulus))
        for _ in range(PAIRS_PER_CASE)
    )
    return pairs


def _random_odd_modulus(rng: random.Random, bits: int) -> int:
    return (1 << (bits - 1)) | rng.getrandbits(bits - 1) | 1


def _assert_parity(config: ModSRAMConfig, modulus: int, rng: random.Random):
    hdl = HdlModSRAM(config)
    cycle = ModSRAMAccelerator(config)
    analytical = AnalyticalModSRAM(config)
    for a, b in _operands(config, modulus, rng):
        case = f"p={modulus:#x} a={a:#x} b={b:#x} bw={config.bitwidth}"
        hdl_result = hdl.multiply(a, b, modulus)
        cycle_result = cycle.multiply(a, b, modulus)
        analytical_result = analytical.multiply(a, b, modulus)
        assert hdl_result.product == (a * b) % modulus, f"product ({case})"
        assert hdl_result.product == cycle_result.product, f"vs cycle ({case})"
        assert (
            hdl_result.report.as_dict() == cycle_result.report.as_dict()
        ), f"cycle report vs cycle tier ({case})"
        assert (
            hdl_result.report.as_dict() == analytical_result.report.as_dict()
        ), f"cycle report vs analytical ({case})"


@pytest.mark.parametrize("bits", FAST_WIDTHS)
def test_random_moduli_at_fast_widths(bits):
    """Random odd moduli at every cheap width, both schedule variants."""
    rng = random.Random(SEED ^ bits)
    for extend in (False, True):
        config = ModSRAMConfig(extend_for_full_range=extend).with_bitwidth(bits)
        _assert_parity(config, _random_odd_modulus(rng, bits), rng)


@pytest.mark.slow
@pytest.mark.parametrize("bits", SLOW_WIDTHS)
def test_random_moduli_at_slow_widths(bits):
    """One random modulus per expensive width (paper-mode schedule)."""
    rng = random.Random(SEED ^ bits)
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bits)
    _assert_parity(config, _random_odd_modulus(rng, bits), rng)


@pytest.mark.parametrize("k", (16, 24, 31))
def test_mersenne_adjacent_moduli(k):
    """``2**k - 1`` and close neighbours: maximal-weight operands."""
    rng = random.Random(SEED ^ (k << 8))
    config = ModSRAMConfig().with_bitwidth(k)
    for modulus in ((1 << k) - 1, (1 << k) - 3, (1 << k) - 5):
        _assert_parity(config, modulus, rng)


@pytest.mark.parametrize("bits", (18, 26, 34))
def test_short_moduli_at_the_bit_length_floor(bits):
    """Moduli at ``bit_length == bitwidth - 2``, the validation floor.

    This is the configuration where ``2**(n+1) mod p`` is largest
    relative to ``p`` — the finalize subtract chain runs its longest.
    """
    rng = random.Random(SEED ^ (bits << 16))
    config = ModSRAMConfig().with_bitwidth(bits)
    for _ in range(2):
        modulus = _random_odd_modulus(rng, bits - 2)
        _assert_parity(config, modulus, rng)


def test_paper_design_point_runs_767_main_loop_cycles():
    """Acceptance: the RTL reproduces the paper's headline cycle count."""
    rng = random.Random(SEED)
    hdl = HdlModSRAM(PAPER_CONFIG)
    modulus = _random_odd_modulus(rng, 256)
    a = rng.randrange(_a_limit(PAPER_CONFIG, modulus))
    b = rng.randrange(modulus)
    result = hdl.multiply(a, b, modulus)
    assert result.product == (a * b) % modulus
    assert result.report.iteration_cycles == 767
    analytical = AnalyticalModSRAM(PAPER_CONFIG).multiply(a, b, modulus)
    assert result.report.as_dict() == analytical.report.as_dict()


def test_lut_reuse_skips_precompute():
    """Back-to-back multiplies with the same (b, p) reuse the LUTs."""
    config = ModSRAMConfig().with_bitwidth(16)
    hdl = HdlModSRAM(config)
    analytical = AnalyticalModSRAM(config)
    modulus = 65521
    first = hdl.multiply(1234, 4321, modulus)
    second = hdl.multiply(999, 4321, modulus)
    assert first.report.precompute_cycles > 0
    assert second.report.precompute_cycles == 0
    assert second.report.lut_reused
    ref_first = analytical.multiply(1234, 4321, modulus)
    ref_second = analytical.multiply(999, 4321, modulus)
    assert first.report.as_dict() == ref_first.report.as_dict()
    assert second.report.as_dict() == ref_second.report.as_dict()


def test_multiply_many_matches_oracle():
    config = ModSRAMConfig().with_bitwidth(20)
    hdl = HdlModSRAM(config)
    rng = random.Random(SEED)
    modulus = _random_odd_modulus(rng, 20)
    pairs = [
        (rng.randrange(_a_limit(config, modulus)), rng.randrange(modulus))
        for _ in range(4)
    ]
    results = hdl.multiply_many(pairs, modulus)
    assert [r.product for r in results] == [a * b % modulus for a, b in pairs]
