"""Shared fixtures for the ModSRAM reproduction test suite."""

from __future__ import annotations

import os
import random
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.ecc.curves_data import CURVE_SPECS  # noqa: E402


@pytest.fixture(autouse=True, scope="session")
def _isolated_experiment_cache(tmp_path_factory):
    """Point $REPRO_CACHE_DIR at a per-session temp dir.

    Tests that exercise the experiment runner's default cache (directly or
    through the CLI) must never read from — or pollute — the developer's
    real ``~/.cache/repro``.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


#: Moduli used across the suite: the two curves the paper names, the NIST
#: prime, and a few small odd moduli for exhaustive / fast checks.
BN254_P = CURVE_SPECS["bn254"].field_modulus
BN254_R = CURVE_SPECS["bn254"].scalar_field_modulus
SECP256K1_P = CURVE_SPECS["secp256k1"].field_modulus
P256_P = CURVE_SPECS["p256"].field_modulus
SMALL_MODULI = (97, 101, 251, 997, 65521, (1 << 61) - 1)


@pytest.fixture(scope="session")
def bn254_modulus() -> int:
    """The BN254 base-field prime (254 bits)."""
    return BN254_P


@pytest.fixture(scope="session")
def bn254_scalar_modulus() -> int:
    """The BN254 scalar-field prime (NTT friendly)."""
    assert BN254_R is not None
    return BN254_R


@pytest.fixture(scope="session")
def secp256k1_modulus() -> int:
    """The secp256k1 base-field prime (full 256 bits)."""
    return SECP256K1_P


@pytest.fixture(params=SMALL_MODULI, ids=lambda p: f"p={p}")
def small_modulus(request) -> int:
    """A selection of small odd moduli for fast cross-checks."""
    return request.param


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic random generator for reproducible tests."""
    return random.Random(0xC0FFEE)
