"""Concurrent multiply_batch: ContextCache thread-safety under serving load."""

from __future__ import annotations

import asyncio
import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.engine import Engine

MODULI = (997, 65521, (1 << 61) - 1, 101)


def batch_for(modulus: int, seed: int, count: int = 32):
    rng = random.Random(seed)
    return [
        (rng.randrange(modulus), rng.randrange(modulus)) for _ in range(count)
    ]


class TestThreadedBatches:
    def test_disjoint_moduli_from_many_threads(self):
        """Each thread hits its own context; totals must be exact."""
        engine = Engine(backend="barrett", cache_size=64)
        moduli = [997 + 2 * index for index in range(32)]  # 32 odd moduli

        def work(index: int) -> int:
            modulus = moduli[index]
            pairs = batch_for(modulus, seed=index)
            result = engine.multiply_batch(pairs, modulus)
            assert list(result) == [a * b % modulus for a, b in pairs]
            return len(result)

        with ThreadPoolExecutor(max_workers=8) as pool:
            counts = list(pool.map(work, range(32)))

        assert sum(counts) == 32 * 32
        # Disjoint contexts: no shared counters, so totals are exact.
        assert engine.stats().multiplications == 32 * 32
        stats = engine.cache_stats
        assert stats.misses == 32
        assert stats.hits == 0
        assert stats.lookups == 32

    def test_same_modulus_races_build_one_context(self):
        """Many threads on one modulus: a single warmed context, right values."""
        engine = Engine(backend="montgomery", modulus=65521)
        barrier = threading.Barrier(8)
        failures = []

        def work(index: int) -> None:
            barrier.wait()  # maximise get_or_create contention
            pairs = batch_for(65521, seed=1000 + index, count=16)
            result = engine.multiply_batch(pairs)
            expected = [a * b % 65521 for a, b in pairs]
            if list(result) != expected:
                failures.append(index)

        threads = [
            threading.Thread(target=work, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        assert engine.cache_stats.misses == 1
        assert engine.cache_size == 1
        # Precomputation ran exactly once despite the race.
        assert engine.stats().precomputations == 1

    def test_eviction_under_concurrency_keeps_accounting_consistent(self):
        """A tiny cache thrashing across threads never loses statistics."""
        engine = Engine(backend="montgomery", cache_size=2)

        def work(index: int) -> None:
            modulus = MODULI[index % len(MODULI)]
            engine.multiply_batch(batch_for(modulus, seed=index, count=4), modulus)

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(work, range(24)))

        stats = engine.cache_stats
        # Lookup accounting runs under the cache lock: exact despite races.
        assert stats.lookups == 24
        assert stats.hits + stats.misses == 24
        assert stats.evictions >= len(MODULI) - 2
        # Retired contexts keep contributing to the aggregate counters.
        assert engine.stats().multiplications > 0


class TestAsyncioBatches:
    def test_tasks_share_an_engine_via_to_thread(self):
        """Asyncio serving-style fan-out over one engine stays correct."""
        engine = Engine(backend="barrett")

        async def scenario():
            async def one(index: int):
                modulus = MODULI[index % len(MODULI)]
                pairs = batch_for(modulus, seed=index, count=8)
                result = await asyncio.to_thread(
                    engine.multiply_batch, pairs, modulus
                )
                assert list(result) == [a * b % modulus for a, b in pairs]
                return len(result)

            counts = await asyncio.gather(*(one(index) for index in range(16)))
            return counts

        counts = asyncio.run(scenario())
        assert sum(counts) == 16 * 8
        assert engine.cache_stats.misses == len(MODULI)
        # The cache counters ride along in EngineStats for observability.
        assert engine.stats().cache.misses == len(MODULI)
