"""Tests for EngineSpec: the portable engine re-construction recipe."""

from __future__ import annotations

import pickle

import pytest

from repro.engine import Engine, EngineSpec, MultiplierBackend
from repro.errors import ConfigurationError


class TestEngineSpec:
    def test_build_reconstructs_an_equivalent_engine(self):
        spec = EngineSpec(backend="montgomery", curve="bn254", cache_size=8)
        engine = spec.build()
        assert engine.info.name == "montgomery"
        assert engine.default_modulus is not None
        twin = spec.build()
        assert int(engine.multiply(12345, 67890)) == int(
            twin.multiply(12345, 67890)
        )
        # Independent runtime state: warming one leaves the other cold.
        assert twin.cache_size == 1 and engine.cache_size == 1
        assert engine.context() is not twin.context()

    def test_round_trips_through_dict_and_pickle(self):
        spec = EngineSpec(
            backend="r4csa-lut", curve=None, modulus=997, cache_size=4
        )
        assert EngineSpec.from_dict(spec.as_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert EngineSpec.from_dict(
            {"backend": "schoolbook"}
        ) == EngineSpec(backend="schoolbook")

    def test_validate_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            EngineSpec(backend="not-a-backend").validate()

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            EngineSpec(backend="")
        with pytest.raises(ConfigurationError):
            EngineSpec(backend="montgomery", cache_size=0)


class TestEngineSpecDerivation:
    def test_engine_spec_round_trip(self):
        engine = Engine(backend="barrett", curve="p256", cache_size=16)
        spec = engine.spec()
        assert spec == EngineSpec(
            backend="barrett",
            curve="p256",
            modulus=engine.default_modulus,
            cache_size=16,
        )
        assert spec.build().default_modulus == engine.default_modulus

    def test_explicit_modulus_survives(self):
        engine = Engine(backend="montgomery", modulus=65521)
        assert engine.spec().modulus == 65521

    def test_unregistered_backend_instance_has_no_spec(self):
        engine = Engine(backend=MultiplierBackend("montgomery"))
        with pytest.raises(ConfigurationError, match="unregistered instance"):
            engine.spec()
