"""CLI tests for the engine-backed subcommands and their ``--json`` output."""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import build_parser, main
from repro.engine import available_backends


class TestMultiplyJson:
    def test_json_round_trip(self, capsys):
        assert main([
            "multiply", "0x1234", "0x5678", "--modulus", "0xFFF1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value"] == (0x1234 * 0x5678) % 0xFFF1
        assert payload["value_hex"] == hex(payload["value"])
        assert payload["backend"] == "r4csa-lut"
        assert payload["modulus"] == 0xFFF1
        assert payload["modeled_cycles"] is not None

    def test_json_with_named_backend(self, capsys):
        assert main([
            "multiply", "5", "7", "--modulus", "97",
            "--backend", "montgomery", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value"] == 35
        assert payload["backend"] == "montgomery"

    def test_text_output_unchanged(self, capsys):
        assert main(["multiply", "0x1234", "0x5678", "--modulus", "0xFFF1"]) == 0
        output = capsys.readouterr().out
        assert hex((0x1234 * 0x5678) % 0xFFF1) in output

    def test_unknown_backend_still_reports(self, capsys):
        assert main(["multiply", "1", "2", "--backend", "nonexistent"]) == 2
        assert "unknown backend" in capsys.readouterr().out


class TestBatchCommand:
    def test_json_round_trip_reproduces_products(self, capsys):
        seed, count, modulus = 7, 6, 0xFFF1
        assert main([
            "batch", "--count", str(count), "--modulus", str(modulus),
            "--seed", str(seed), "--backend", "barrett", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == count
        assert payload["seed"] == seed
        rng = random.Random(seed)
        pairs = [
            (rng.randrange(modulus), rng.randrange(modulus))
            for _ in range(count)
        ]
        assert payload["values"] == [(a * b) % modulus for a, b in pairs]
        assert payload["stats"]["multiplications"] == count
        assert payload["cache"]["misses"] == 1

    def test_text_output_mentions_reuse(self, capsys):
        assert main([
            "batch", "--count", "4", "--modulus", "997", "--backend", "montgomery",
        ]) == 0
        output = capsys.readouterr().out
        assert "per-modulus constants were cached" in output

    def test_rejects_nonpositive_count(self, capsys):
        assert main(["batch", "--count", "0"]) == 2
        assert "positive" in capsys.readouterr().out


class TestBackendsCommand:
    def test_lists_every_backend(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        for name in ("r4csa-lut", "modsram", "pim-mentt"):
            assert name in output

    def test_json_matches_registry(self, capsys):
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        backends = payload["backends"]
        assert [entry["name"] for entry in backends] == available_backends()
        by_name = {entry["name"]: entry for entry in backends}
        assert by_name["modsram"]["kind"] == "accelerator"
        assert by_name["r4csa-lut"]["has_cycle_model"] is True

    def test_json_exposes_context_cache_counters(self, capsys):
        from repro.engine import Engine, reset_global_cache_stats

        reset_global_cache_stats()
        engine = Engine(backend="barrett", modulus=997)
        engine.multiply(3, 5)
        engine.multiply(4, 6)
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        cache = payload["context_cache"]
        assert cache["misses"] == 1
        assert cache["hits"] == 1
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_json_exposes_compiled_kernel_cache_counters(self, capsys):
        from repro.compiled import get_kernel, kernel_cache_stats

        before = kernel_cache_stats()
        get_kernel(997)
        get_kernel(997)  # the second request is a cache hit
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        cache = payload["compiled_kernel_cache"]
        assert set(cache) >= {"resident", "builds", "hits"}
        assert cache["resident"] >= 1
        assert cache["builds"] >= before["builds"]
        assert cache["hits"] >= before["hits"] + 1
        # The payload mirrors the live counters, not a stale snapshot.
        assert cache == kernel_cache_stats()


class TestParser:
    def test_new_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["batch", "--count", "8"]).command == "batch"
        assert parser.parse_args(["backends"]).command == "backends"

    def test_library_errors_exit_nonzero(self, capsys):
        # An even modulus is invalid for the montgomery backend.
        assert main([
            "multiply", "1", "2", "--modulus", "100", "--backend", "montgomery",
        ]) == 1
        assert "error:" in capsys.readouterr().out
