"""Tests for the LRU context cache."""

from __future__ import annotations

import threading

import pytest

from repro.engine import ContextCache, get_backend
from repro.errors import ConfigurationError


@pytest.fixture()
def backend():
    return get_backend("barrett")


class TestContextCache:
    def test_miss_then_hit(self, backend):
        cache = ContextCache(max_entries=4)
        first, hit_first = cache.get_or_create(backend, 97)
        second, hit_second = cache.get_or_create(backend, 97)
        assert not hit_first and hit_second
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_moduli_are_distinct_entries(self, backend):
        cache = ContextCache(max_entries=4)
        first, _ = cache.get_or_create(backend, 97)
        second, _ = cache.get_or_create(backend, 101)
        assert first is not second
        assert len(cache) == 2

    def test_lru_eviction_order(self, backend):
        cache = ContextCache(max_entries=2)
        cache.get_or_create(backend, 97)
        cache.get_or_create(backend, 101)
        cache.get_or_create(backend, 97)     # refresh 97: 101 is now LRU
        cache.get_or_create(backend, 251)    # evicts 101
        assert ("barrett", 97) in cache
        assert ("barrett", 251) in cache
        assert ("barrett", 101) not in cache
        assert cache.stats.evictions == 1

    def test_on_evict_callback_receives_context(self, backend):
        evicted = []
        cache = ContextCache(max_entries=1, on_evict=evicted.append)
        cache.get_or_create(backend, 97)
        cache.get_or_create(backend, 101)
        assert [context.modulus for context in evicted] == [97]

    def test_clear_notifies_and_empties(self, backend):
        evicted = []
        cache = ContextCache(max_entries=4, on_evict=evicted.append)
        cache.get_or_create(backend, 97)
        cache.get_or_create(backend, 101)
        cache.clear()
        assert len(cache) == 0
        assert sorted(context.modulus for context in evicted) == [97, 101]

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ContextCache(max_entries=0)

    def test_empty_cache_hit_rate_is_zero(self):
        assert ContextCache().stats.hit_rate == 0.0


class TestThreadSafety:
    """Concurrent runners share one cache (prerequisite for parallel sweeps)."""

    THREADS = 8
    LOOKUPS_PER_THREAD = 50
    MODULI = (97, 101, 251, 257)

    def test_concurrent_lookups_keep_stats_consistent(self, backend):
        cache = ContextCache(max_entries=2)
        errors = []

        def worker(thread_index: int) -> None:
            try:
                for step in range(self.LOOKUPS_PER_THREAD):
                    modulus = self.MODULI[(thread_index + step) % len(self.MODULI)]
                    context, _ = cache.get_or_create(backend, modulus)
                    assert context.modulus == modulus
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        total = self.THREADS * self.LOOKUPS_PER_THREAD
        # Every lookup is accounted exactly once, and the books balance:
        # entries still resident = misses that were never evicted.
        assert cache.stats.lookups == total
        assert cache.stats.hits + cache.stats.misses == total
        assert cache.stats.misses - cache.stats.evictions == len(cache)
        assert len(cache) <= 2

    def test_concurrent_same_modulus_builds_one_context(self, backend):
        cache = ContextCache(max_entries=4)
        contexts = []
        barrier = threading.Barrier(self.THREADS)

        def worker() -> None:
            barrier.wait()
            context, _ = cache.get_or_create(backend, 97)
            contexts.append(context)

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(contexts) == self.THREADS
        assert all(context is contexts[0] for context in contexts)
        assert cache.stats.misses == 1
        assert cache.stats.hits == self.THREADS - 1
