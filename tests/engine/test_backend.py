"""Tests for the backend protocol and registry behind the Engine API."""

from __future__ import annotations

import pytest

from repro.core import available_multipliers
from repro.engine import (
    BackendInfo,
    EngineContext,
    ModSRAMBackend,
    MultiplierBackend,
    PimBaselineBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.errors import ConfigurationError, ModulusError


class TestRegistry:
    def test_every_multiplier_is_a_backend(self):
        backends = available_backends()
        for name in available_multipliers():
            assert name in backends

    def test_pim_baselines_are_registered_under_aliases(self):
        backends = available_backends()
        for alias in ("pim-mentt", "pim-bpntt", "pim-rm-ntt", "pim-cryptopim"):
            assert alias in backends

    def test_unknown_backend_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("nonexistent")

    def test_register_rejects_duplicates(self):
        backend = get_backend("schoolbook")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(backend)

    def test_register_replace_is_idempotent(self):
        backend = get_backend("schoolbook")
        assert register_backend(backend, replace=True) is backend


class TestBackendInfo:
    def test_software_backend_metadata(self):
        info = get_backend("r4csa-lut").info
        assert isinstance(info, BackendInfo)
        assert info.kind == "software"
        assert info.has_cycle_model
        assert info.direct_form
        assert info.supported_bitwidths is None

    def test_schoolbook_has_no_cycle_model(self):
        info = get_backend("schoolbook").info
        assert not info.has_cycle_model
        assert get_backend("schoolbook").modeled_cycles(256) is None

    def test_montgomery_is_not_direct_form(self):
        assert not get_backend("montgomery").info.direct_form

    def test_accelerator_backend_metadata(self):
        info = get_backend("modsram").info
        assert info.kind == "accelerator"
        assert info.has_cycle_model

    def test_pim_baseline_metadata(self):
        backend = get_backend("pim-mentt")
        assert isinstance(backend, PimBaselineBackend)
        info = backend.info
        assert info.kind == "pim-baseline"
        assert info.supported_bitwidths is not None
        assert backend.modeled_cycles(256) == backend.design.cycles(256)

    def test_as_dict_is_json_friendly(self):
        payload = get_backend("pim-bpntt").info.as_dict()
        assert payload["name"] == "pim-bpntt"
        assert isinstance(payload["supported_bitwidths"], list)


class TestContextCreation:
    def test_context_carries_modulus_and_bitwidth(self):
        context = get_backend("barrett").create_context(997)
        assert isinstance(context, EngineContext)
        assert context.modulus == 997
        assert context.bitwidth == 10

    def test_context_is_warmed_at_creation(self):
        # Montgomery constants are derived by prepare(), before any multiply.
        context = get_backend("montgomery").create_context(997)
        assert context.stats.precomputations == 1
        context.multiply(5, 7)
        assert context.stats.precomputations == 1

    def test_invalid_modulus_is_rejected(self):
        with pytest.raises(ModulusError):
            get_backend("schoolbook").create_context(2)

    def test_contexts_are_independent_per_modulus(self):
        backend = get_backend("barrett")
        first = backend.create_context(97)
        second = backend.create_context(101)
        assert first.multiplier is not second.multiplier

    def test_multiplier_backend_cycle_model(self):
        backend = MultiplierBackend("r4csa-lut")
        assert backend.modeled_cycles(256) == 6 * 128 - 1

    def test_modsram_backend_reports(self):
        backend = ModSRAMBackend()
        context = backend.create_context((1 << 16) - 15)
        product = context.multiply(1234, 4321)
        assert product == (1234 * 4321) % ((1 << 16) - 15)
        assert context.multiplier.reports  # cycle reports stay reachable
