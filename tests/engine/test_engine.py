"""Tests for the unified Engine facade: parity, caching, batching."""

from __future__ import annotations

import random

import pytest

from repro.ecc import CURVE_SPECS, PrimeField, get_curve
from repro.ecc.scalar import scalar_multiply
from repro.engine import Engine, available_backends
from repro.errors import ConfigurationError, ModulusError, OperandRangeError
from repro.zkp.msm import msm_engine, msm_pippenger
from repro.zkp.ntt import NttContext

BN254_P = CURVE_SPECS["bn254"].field_modulus
BN254_R = CURVE_SPECS["bn254"].scalar_field_modulus
SECP256K1_P = CURVE_SPECS["secp256k1"].field_modulus

#: Backends cheap enough to exercise at every small modulus.
ALL_BACKENDS = tuple(available_backends())


class TestBackendParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_all_backends_agree_with_the_oracle(self, backend):
        modulus = 997
        engine = Engine(backend=backend, modulus=modulus)
        rng = random.Random(backend)  # str seeds are stable across processes
        for _ in range(8):
            a = rng.randrange(modulus)
            b = rng.randrange(modulus)
            assert int(engine.multiply(a, b)) == (a * b) % modulus

    @pytest.mark.parametrize("backend", ("r4csa-lut", "montgomery", "barrett"))
    def test_256_bit_parity(self, backend, bn254_modulus, rng):
        engine = Engine(backend=backend, curve="bn254")
        a = rng.randrange(bn254_modulus)
        b = rng.randrange(bn254_modulus)
        assert int(engine.multiply(a, b)) == (a * b) % bn254_modulus

    def test_result_metadata(self):
        engine = Engine(backend="r4csa-lut", modulus=997)
        result = engine.multiply(5, 7)
        assert result.backend == "r4csa-lut"
        assert result.modulus == 997
        assert result.bitwidth == 10
        assert result.modeled_cycles == 6 * 5 - 1
        assert not result.cache_hit
        assert engine.multiply(5, 7).cache_hit

    def test_result_behaves_like_an_int(self):
        result = Engine(backend="schoolbook", modulus=97).multiply(5, 7)
        assert int(result) == 35
        assert result == 35
        assert hex(result) == "0x23"
        # hash/eq invariant with the int it compares equal to
        assert hash(result) == hash(35)
        assert result in {35} and 35 in {result}


class TestContextCaching:
    def test_cache_hit_miss_accounting(self):
        engine = Engine(backend="barrett", modulus=997)
        engine.multiply(1, 2)
        engine.multiply(3, 4)
        engine.multiply(3, 4, modulus=97)
        assert engine.cache_stats.misses == 2
        assert engine.cache_stats.hits == 1
        assert engine.cache_size == 2

    def test_eviction_preserves_aggregate_stats(self):
        engine = Engine(backend="montgomery", cache_size=1)
        engine.multiply(5, 7, modulus=97)
        engine.multiply(5, 7, modulus=101)  # evicts the 97 context
        assert engine.cache_size == 1
        stats = engine.stats()
        assert stats.multiplications == 2
        assert stats.precomputations == 2

    def test_clear_cache_retains_stats(self):
        engine = Engine(backend="barrett", modulus=997)
        engine.multiply(5, 7)
        engine.clear_cache()
        assert engine.cache_size == 0
        assert engine.stats().multiplications == 1

    def test_no_default_modulus_is_an_error(self):
        engine = Engine(backend="schoolbook")
        with pytest.raises(ModulusError, match="no modulus"):
            engine.multiply(1, 2)

    def test_unknown_curve_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown curve"):
            Engine(curve="curve25519")

    def test_describe_is_json_friendly(self):
        import json

        engine = Engine(backend="r4csa-lut", curve="bn254")
        engine.multiply(3, 5)
        payload = json.loads(json.dumps(engine.describe()))
        assert payload["backend"]["name"] == "r4csa-lut"
        assert payload["curve"] == "bn254"
        assert payload["cache"]["misses"] == 1


class TestBatch:
    def test_batch_equals_per_call_loop(self, rng):
        engine = Engine(backend="montgomery", modulus=997)
        pairs = [(rng.randrange(997), rng.randrange(997)) for _ in range(32)]
        batch = engine.multiply_batch(pairs)
        loop = [int(engine.multiply(a, b)) for a, b in pairs]
        assert list(batch) == loop
        assert batch.count == 32

    @pytest.mark.parametrize("backend", ("montgomery", "barrett"))
    def test_precomputation_does_not_grow_with_batch_size(self, backend, rng):
        engine = Engine(backend=backend, curve="bn254")
        modulus = engine.default_modulus
        for size in (8, 64):
            pairs = [
                (rng.randrange(modulus), rng.randrange(modulus))
                for _ in range(size)
            ]
            batch = engine.multiply_batch(pairs)
            # The per-modulus context was built when it entered the cache;
            # no batch, whatever its size, rebuilds it.
            assert batch.stats.precomputations == 0
            assert batch.stats.multiplications == size
        assert engine.stats().precomputations == 1

    def test_r4csa_lut_shared_multiplicand_batch_reuses_luts(self, rng):
        engine = Engine(backend="r4csa-lut", modulus=BN254_P)
        b = rng.randrange(BN254_P)
        for size in (4, 16):
            pairs = [(rng.randrange(BN254_P), b) for _ in range(size)]
            batch = engine.multiply_batch(pairs)
            assert list(batch) == [(a * b) % BN254_P for a, _ in pairs]
        # One (B, p) LUT build serves both batches.
        assert engine.stats().precomputations == 1

    def test_batch_validates_operands(self):
        engine = Engine(backend="schoolbook", modulus=97)
        with pytest.raises(OperandRangeError):
            engine.multiply_batch([(5, 97)])
        with pytest.raises(OperandRangeError):
            engine.multiply_batch([(-1, 5)])

    def test_batch_modeled_cycles_scale_with_count(self):
        engine = Engine(backend="r4csa-lut", modulus=997)
        batch = engine.multiply_batch([(1, 2), (3, 4), (5, 6)])
        assert batch.modeled_cycles == 3 * (6 * 5 - 1)

    def test_batch_accepts_generators(self):
        engine = Engine(backend="schoolbook", modulus=97)
        batch = engine.multiply_batch((a, a) for a in range(5))
        assert list(batch) == [a * a % 97 for a in range(5)]

    def test_empty_batch(self):
        engine = Engine(backend="schoolbook", modulus=97)
        batch = engine.multiply_batch([])
        assert batch.count == 0
        assert list(batch) == []


class TestPower:
    @pytest.mark.parametrize("backend", ("schoolbook", "montgomery", "r4csa-lut"))
    def test_power_matches_builtin_pow(self, backend):
        engine = Engine(backend=backend, modulus=997)
        for base, exponent in ((2, 10), (3, 0), (0, 5), (996, 997)):
            assert int(engine.power(base, exponent)) == pow(base, exponent, 997)

    def test_power_counts_operations(self):
        engine = Engine(backend="schoolbook", modulus=997)
        result = engine.power(2, 10)
        assert result.operations >= 4  # square-and-multiply, not repeated mult

    def test_power_of_zero_exponent_costs_nothing(self):
        engine = Engine(backend="r4csa-lut", modulus=997)
        result = engine.power(5, 0)
        assert int(result) == 1
        assert result.operations == 0
        assert result.modeled_cycles == 0
        assert engine.stats().multiplications == 0

    def test_negative_exponent_is_rejected(self):
        with pytest.raises(OperandRangeError):
            Engine(backend="schoolbook", modulus=97).power(2, -1)


class TestApplicationSubstrates:
    def test_field_shares_the_cached_context(self):
        engine = Engine(backend="montgomery", modulus=997)
        field = engine.field()
        assert field is engine.field()  # cached per context
        assert field.multiplier is engine.context().multiplier
        assert field.multiply(5, 7) == 35
        assert PrimeField.from_engine(engine) is field

    def test_engine_curve_scalar_mult_matches_direct_wiring(self):
        # Old wiring: hand-built field with an explicit backend.
        from repro.core import R4CSALutMultiplier

        scalar = 0xBEEF
        direct_curve = get_curve(
            "secp256k1",
            field=PrimeField(SECP256K1_P, multiplier=R4CSALutMultiplier()),
        )
        direct = scalar_multiply(direct_curve, scalar, direct_curve.generator)

        engine = Engine(backend="r4csa-lut", curve="secp256k1")
        engine_curve = engine.curve()
        routed = scalar_multiply(engine_curve, scalar, engine_curve.generator)
        assert routed.coordinates() == direct.coordinates()
        # The multiplications actually went through the engine's context.
        assert engine.stats().multiplications > 0

    def test_engine_ntt_matches_direct_wiring(self, rng):
        size = 16
        values = [rng.randrange(BN254_R) for _ in range(size)]
        direct = NttContext(BN254_R, size).forward(values)

        engine = Engine(backend="r4csa-lut", curve="bn254")
        context = engine.ntt(size)
        assert context.modulus == BN254_R  # scalar field, not base field
        routed = context.forward(values)
        assert routed == direct
        assert context.inverse(routed) == [value % BN254_R for value in values]
        assert engine.stats().multiplications > 0

    def test_ntt_from_engine_classmethod(self):
        engine = Engine(backend="schoolbook", curve="bn254")
        context = NttContext.from_engine(engine, 8)
        assert context is engine.ntt(8)  # cached per context

    def test_msm_engine_matches_direct_wiring(self, rng):
        count = 8
        direct_curve = get_curve("secp256k1")
        base = direct_curve.generator
        points = [
            scalar_multiply(direct_curve, rng.randrange(3, 2**32), base)
            for _ in range(count)
        ]
        scalars = [rng.randrange(1, 2**32) for _ in range(count)]
        direct = msm_pippenger(direct_curve, scalars, points, window_bits=4)

        engine = Engine(backend="schoolbook", curve="secp256k1")
        routed = msm_engine(engine, scalars, points, window_bits=4)
        assert routed.coordinates() == direct.coordinates()

    def test_msm_engine_accepts_coordinate_pairs(self, rng):
        direct_curve = get_curve("secp256k1")
        base = direct_curve.generator
        points = [
            scalar_multiply(direct_curve, k, base) for k in (3, 5, 7, 11)
        ]
        scalars = [2, 4, 6, 8]
        direct = msm_pippenger(direct_curve, scalars, points, window_bits=3)
        engine = Engine(backend="schoolbook", curve="secp256k1")
        routed = msm_engine(
            engine,
            scalars,
            [point.coordinates() for point in points],
            window_bits=3,
        )
        assert routed.coordinates() == direct.coordinates()

    def test_curve_requires_a_name_somewhere(self):
        with pytest.raises(ConfigurationError, match="no curve name"):
            Engine(backend="schoolbook").curve()

    def test_measure_ntt_counts_is_idempotent_on_a_reused_engine(self):
        from repro.analysis.figure7 import measure_ntt_counts

        engine = Engine(backend="schoolbook", curve="bn254")
        first = measure_ntt_counts(16, engine=engine)
        second = measure_ntt_counts(16, engine=engine)
        assert first == second  # cached context, counts must not accumulate


class TestResultSerialization:
    """MultiplyResult/BatchResult survive a JSON round trip with metadata."""

    def test_multiply_result_round_trip(self):
        import json

        from repro.engine import MultiplyResult

        engine = Engine(backend="r4csa-lut", curve="bn254")
        result = engine.multiply(12345, 67890)
        loaded = MultiplyResult.from_dict(json.loads(json.dumps(result.as_dict())))
        assert loaded == result
        assert loaded.backend == result.backend
        assert loaded.modulus == result.modulus
        assert loaded.bitwidth == result.bitwidth
        assert loaded.modeled_cycles == result.modeled_cycles
        assert loaded.operations == result.operations

    def test_batch_result_round_trip_preserves_stats(self):
        import json

        from repro.engine import BatchResult

        engine = Engine(backend="r4csa-lut", curve="bn254")
        result = engine.multiply_batch([(3, 5), (7, 11), (13, 17)])
        loaded = BatchResult.from_dict(json.loads(json.dumps(result.as_dict())))
        assert loaded.values == result.values
        assert loaded.modeled_cycles == result.modeled_cycles
        assert loaded.stats.as_dict() == result.stats.as_dict()

    def test_multiply_result_without_cycle_model(self):
        from repro.engine import MultiplyResult

        engine = Engine(backend="schoolbook", modulus=97)
        result = engine.multiply(5, 9)
        assert result.modeled_cycles is None
        loaded = MultiplyResult.from_dict(result.as_dict())
        assert loaded.modeled_cycles is None
