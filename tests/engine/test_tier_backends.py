"""Tests for the fidelity-tier engine backends (modsram-fast / modsram-chip)."""

from __future__ import annotations

import pytest

from repro.engine import (
    Engine,
    ModSRAMChipBackend,
    ModSRAMFastBackend,
    available_backends,
    get_backend,
)
from repro.errors import ConfigurationError
from repro.modsram import ModSRAMChipMultiplier, ModSRAMConfig


class TestRegistry:
    def test_tier_backends_are_registered(self):
        backends = available_backends()
        assert "modsram" in backends
        assert "modsram-fast" in backends
        assert "modsram-chip" in backends

    def test_capability_metadata(self):
        cycle = get_backend("modsram").info
        fast = get_backend("modsram-fast").info
        chip = get_backend("modsram-chip").info
        assert cycle.fidelity == "cycle" and cycle.macros is None
        assert fast.fidelity == "analytical" and fast.macros is None
        assert chip.fidelity == "analytical" and chip.macros == 4
        for info in (cycle, fast, chip):
            assert info.kind == "accelerator"
            assert info.has_cycle_model
            payload = info.as_dict()
            assert payload["fidelity"] == info.fidelity
            assert payload["macros"] == info.macros

    def test_software_backends_have_no_tier_metadata(self):
        info = get_backend("montgomery").info
        assert info.fidelity is None and info.macros is None

    def test_functional_fidelity_drops_the_cycle_model(self):
        backend = ModSRAMFastBackend(fidelity="functional")
        assert backend.info.has_cycle_model is False
        assert backend.modeled_cycles(256) is None

    def test_fidelity_enum_is_normalised_in_the_metadata(self):
        from repro.modsram import Fidelity

        backend = ModSRAMFastBackend(fidelity=Fidelity.FUNCTIONAL)
        assert backend.info.fidelity == "functional"
        assert backend.info.as_dict()["fidelity"] == "functional"

    def test_chip_backend_macro_config(self):
        backend = ModSRAMChipBackend(macros=8)
        assert backend.info.macros == 8
        context = backend.create_context(65521)
        assert isinstance(context.multiplier, ModSRAMChipMultiplier)
        assert context.multiplier.macros == 8

    def test_invalid_tier_configurations_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ModSRAMFastBackend(fidelity="cycle")
        with pytest.raises(ConfigurationError):
            ModSRAMChipBackend(macros=0)


class TestHdlBackend:
    """The RTL co-simulation tier behind the Engine facade."""

    MODULUS = 65521

    def test_registered_with_hdl_fidelity(self):
        assert "modsram-hdl" in available_backends()
        info = get_backend("modsram-hdl").info
        assert info.fidelity == "hdl"
        assert info.kind == "accelerator"
        assert info.has_cycle_model
        assert info.as_dict()["fidelity"] == "hdl"

    def test_products_and_modeled_cycles_match_cycle_backend(self, rng):
        hdl = Engine(backend="modsram-hdl", modulus=self.MODULUS)
        cycle = Engine(backend="modsram", modulus=self.MODULUS)
        for _ in range(2):
            a, b = rng.randrange(self.MODULUS), rng.randrange(self.MODULUS)
            hdl_result = hdl.multiply(a, b)
            cycle_result = cycle.multiply(a, b)
            assert hdl_result.value == cycle_result.value == a * b % self.MODULUS
            assert hdl_result.modeled_cycles == cycle_result.modeled_cycles


class TestParityWithSingleMacro:
    """Acceptance: new backends agree with the single-macro modsram path."""

    MODULUS = 65521

    def pairs(self, rng, count=6):
        return [
            (rng.randrange(self.MODULUS), rng.randrange(self.MODULUS))
            for _ in range(count)
        ]

    def test_fast_backend_matches_cycle_backend(self, rng):
        pairs = self.pairs(rng)
        cycle = Engine(backend="modsram", modulus=self.MODULUS)
        fast = Engine(backend="modsram-fast", modulus=self.MODULUS)
        assert list(fast.multiply_batch(pairs)) == list(
            cycle.multiply_batch(pairs)
        )

    def test_chip_backend_matches_cycle_backend(self, rng):
        pairs = self.pairs(rng)
        cycle = Engine(backend="modsram", modulus=self.MODULUS)
        chip = Engine(backend="modsram-chip", modulus=self.MODULUS)
        assert list(chip.multiply_batch(pairs)) == list(
            cycle.multiply_batch(pairs)
        )

    def test_modeled_cycles_match_across_tiers(self):
        bitwidth = 16
        cycle = get_backend("modsram").modeled_cycles(bitwidth)
        fast = get_backend("modsram-fast").modeled_cycles(bitwidth)
        chip = get_backend("modsram-chip").modeled_cycles(bitwidth)
        assert cycle == fast == chip
        assert cycle == ModSRAMConfig().with_bitwidth(bitwidth).expected_iteration_cycles

    def test_fast_backend_on_bn254(self, rng, bn254_modulus):
        fast = Engine(backend="modsram-fast", curve="bn254")
        oracle = Engine(backend="schoolbook", curve="bn254")
        pairs = [
            (rng.randrange(bn254_modulus), rng.randrange(bn254_modulus))
            for _ in range(4)
        ]
        assert list(fast.multiply_batch(pairs)) == list(
            oracle.multiply_batch(pairs)
        )


class TestChipEngineIntegration:
    def test_chip_activity_reachable_through_the_context(self, rng):
        engine = Engine(backend="modsram-chip", modulus=65521)
        pairs = [(rng.randrange(65521), 7) for _ in range(8)]
        engine.multiply_batch(pairs)
        activity = engine.context().multiplier.activity()
        assert activity.jobs == 8
        assert activity.macros == 4
        assert activity.makespan_cycles > 0

    def test_batch_modeled_cycles_scale_with_batch_size(self, rng):
        engine = Engine(backend="modsram-chip", modulus=65521)
        pairs = [(rng.randrange(65521), rng.randrange(65521)) for _ in range(5)]
        batch = engine.multiply_batch(pairs)
        per_call = engine.context().modeled_cycles_per_multiply
        assert batch.modeled_cycles == per_call * len(pairs)

    def test_engine_accepts_backend_instances_with_custom_macros(self, rng):
        engine = Engine(backend=ModSRAMChipBackend(macros=2), modulus=65521)
        result = engine.multiply(123, 456)
        assert int(result) == (123 * 456) % 65521
        assert engine.info.macros == 2
