"""Regression tests: backend listings are deterministically sorted by name.

The registry is a plain dict populated by import side effects, so without
an explicit sort every listing (`repro backends`, ``available_backends``,
the JSON capability matrix) would depend on insertion order — which varies
with which module happened to be imported first.  These tests pin the
sorted contract, including after late out-of-order registrations.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import available_backends, get_backend, register_backend
from repro.engine.backend import _REGISTRY, MultiplierBackend


class TestSortedListings:
    def test_available_backends_is_sorted(self):
        names = available_backends()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_listing_stays_sorted_after_out_of_order_registration(self):
        # "aaa-..." would lead the list; "zzz-..." would trail it.  Register
        # them in reverse-alphabetical order and check both land sorted.
        extras = []
        try:
            for name in ("zzz-test-backend", "aaa-test-backend"):
                backend = MultiplierBackend("schoolbook")
                # Rebrand the probe so the registry sees a distinct name.
                backend.info = backend.info.__class__(
                    **{**backend.info.as_dict(), "name": name,
                       "supported_bitwidths": None}
                )
                register_backend(backend)
                extras.append(name)
            names = available_backends()
            assert names == sorted(names)
            assert names[0] == "aaa-test-backend"
            assert names[-1] == "zzz-test-backend"
        finally:
            for name in extras:
                _REGISTRY.pop(name, None)

    def test_cli_text_listing_rows_are_sorted(self, capsys):
        assert main(["backends"]) == 0
        lines = capsys.readouterr().out.splitlines()
        rows = [
            line.split("|")[0].strip()
            for line in lines
            if "|" in line and not line.startswith(("backend", "-"))
        ]
        rows = [row for row in rows if row]
        assert rows == sorted(rows)
        assert rows == available_backends()

    def test_cli_json_listing_is_sorted(self, capsys):
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload["backends"]]
        assert names == sorted(names)
        assert names == available_backends()

    def test_get_backend_agrees_with_the_listing(self):
        for name in available_backends():
            assert get_backend(name).info.name == name
