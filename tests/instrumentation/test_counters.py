"""Tests for the hierarchical operation counters."""

from __future__ import annotations

import pytest

from repro.instrumentation import OperationCounter, ScopedCounter


class TestOperationCounter:
    def test_basic_counting(self):
        counter = OperationCounter("test")
        counter.increment("modmul")
        counter.add("modmul", 4)
        counter.add("memory_read", 2)
        assert counter.count("modmul") == 5
        assert counter.count("memory_read") == 2
        assert counter.count("missing") == 0
        assert counter.total() == 7

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            OperationCounter().add("x", -1)

    def test_scopes_attribute_counts(self):
        counter = OperationCounter()
        with counter.scope("ntt"):
            counter.add("modmul", 3)
        with counter.scope("msm"):
            counter.add("modmul", 5)
        counter.add("modmul", 1)
        assert counter.count("modmul") == 9
        assert counter.scoped("ntt") == {"modmul": 3}
        assert counter.scoped("msm") == {"modmul": 5}
        assert counter.scopes() == ["msm", "ntt"]

    def test_nested_scope_attributes_to_innermost(self):
        counter = OperationCounter()
        with counter.scope("outer"):
            with counter.scope("inner"):
                counter.add("op", 1)
        assert counter.scoped("inner") == {"op": 1}
        assert counter.scoped("outer") == {}

    def test_operations_and_as_dict_are_sorted(self):
        counter = OperationCounter()
        counter.add("zeta", 1)
        counter.add("alpha", 1)
        assert counter.operations() == ["alpha", "zeta"]
        assert list(counter.as_dict()) == ["alpha", "zeta"]

    def test_reset(self):
        counter = OperationCounter()
        counter.add("x", 3)
        counter.reset()
        assert counter.total() == 0
        assert counter.scopes() == []

    def test_merge(self):
        left = OperationCounter("a")
        right = OperationCounter("b")
        left.add("x", 1)
        right.add("x", 2)
        right.add("y", 3)
        merged = left.merged_with(right)
        assert merged.count("x") == 3
        assert merged.count("y") == 3
        # The originals are untouched.
        assert left.count("x") == 1

    def test_repr(self):
        counter = OperationCounter("repr-test")
        counter.add("x", 1)
        assert "repr-test" in repr(counter)


class TestScopedCounter:
    def test_view_adds_under_fixed_scope(self):
        parent = OperationCounter()
        view = ScopedCounter(parent, "kernel")
        view.increment("modmul")
        view.add("modadd", 2)
        assert parent.scoped("kernel") == {"modadd": 2, "modmul": 1}
        assert parent.count("modmul") == 1
