"""Tests for the Monte-Carlo sensing-robustness analysis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sram import LogicSenseAmpModule, MonteCarloSenseAnalysis, SenseAmpParameters


class TestColumnTrials:
    def test_no_noise_means_no_errors(self):
        analysis = MonteCarloSenseAnalysis(seed=1)
        result = analysis.column_trials(0.0, trials=500)
        assert result.level_errors == 0
        assert result.level_error_rate == 0.0
        assert result.logic_error_rate == 0.0

    def test_small_noise_is_harmless(self):
        analysis = MonteCarloSenseAnalysis(seed=2)
        result = analysis.column_trials(0.005, trials=2000)
        assert result.level_error_rate < 1e-3

    def test_large_noise_breaks_sensing(self):
        analysis = MonteCarloSenseAnalysis(seed=3)
        result = analysis.column_trials(0.08, trials=2000)
        assert result.level_error_rate > 0.05
        assert result.logic_error_rate > 0.01

    def test_error_rate_is_monotonic_in_noise(self):
        analysis = MonteCarloSenseAnalysis(seed=4)
        sweep = analysis.noise_sweep(sigmas_v=(0.01, 0.03, 0.06), trials=3000)
        rates = [sweep[sigma].level_error_rate for sigma in (0.01, 0.03, 0.06)]
        assert rates[0] <= rates[1] <= rates[2]

    def test_monte_carlo_agrees_with_analytic_model_in_order_of_magnitude(self):
        """The MC estimate and the erfc-based model agree at moderate noise."""
        sigma = 0.045
        analysis = MonteCarloSenseAnalysis(seed=5)
        measured = analysis.column_trials(sigma, trials=20000).level_error_rate
        module = LogicSenseAmpModule(columns=1, parameters=SenseAmpParameters())
        # The Monte-Carlo model perturbs both the bitline and each reference,
        # so the effective per-comparison noise is sqrt(2) * sigma; a column
        # makes up to three comparisons.
        per_comparison = module.failure_probability(sigma * 2**0.5)
        assert measured <= 3 * per_comparison
        assert measured >= per_comparison / 3

    def test_validation(self):
        analysis = MonteCarloSenseAnalysis()
        with pytest.raises(ConfigurationError):
            analysis.column_trials(0.01, trials=0)
        with pytest.raises(ConfigurationError):
            analysis.column_trials(-0.01, trials=10)


class TestDerivedFigures:
    def test_multiplication_failure_probability(self):
        analysis = MonteCarloSenseAnalysis()
        # 256 columns, 256 logic-SA accesses (two per iteration at 128 iters).
        probability = analysis.multiplication_failure_probability(1e-6, 256, 256)
        assert 0.05 < probability < 0.08  # ~ 1 - exp(-0.0655)

    def test_zero_error_rate_means_zero_failure(self):
        analysis = MonteCarloSenseAnalysis()
        assert analysis.multiplication_failure_probability(0.0, 256, 256) == 0.0

    def test_tolerable_error_rate_inverts_the_failure_model(self):
        analysis = MonteCarloSenseAnalysis()
        target = 1e-9
        tolerable = analysis.maximum_tolerable_column_error_rate(256, 256, target)
        reconstructed = analysis.multiplication_failure_probability(tolerable, 256, 256)
        # Round-tripping probabilities this small loses a little precision to
        # floating point; a few percent is plenty for a sizing guideline.
        assert reconstructed == pytest.approx(target, rel=0.05)

    def test_validation(self):
        analysis = MonteCarloSenseAnalysis()
        with pytest.raises(ConfigurationError):
            analysis.multiplication_failure_probability(2.0, 256, 256)
        with pytest.raises(ConfigurationError):
            analysis.multiplication_failure_probability(0.1, 0, 256)
        with pytest.raises(ConfigurationError):
            analysis.maximum_tolerable_column_error_rate(256, 256, 1.5)
