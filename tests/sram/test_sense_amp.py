"""Tests for the latch sense amplifier and the logic-SA module."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SenseMarginError
from repro.sram import (
    LatchSenseAmplifier,
    LogicSenseAmpModule,
    SenseAmpParameters,
    SramArray,
)


class TestSenseAmpParameters:
    def test_default_reference_levels_sit_between_discharge_levels(self):
        parameters = SenseAmpParameters()
        references = parameters.reference_voltages()
        assert len(references) == 3
        for index, reference in enumerate(references):
            above = parameters.bitline_voltage(index)
            below = parameters.bitline_voltage(index + 1)
            assert below < reference < above

    def test_bitline_voltage_decreases_with_count(self):
        parameters = SenseAmpParameters()
        voltages = [parameters.bitline_voltage(count) for count in range(4)]
        assert voltages == sorted(voltages, reverse=True)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SenseAmpParameters(vdd_v=0)
        with pytest.raises(ConfigurationError):
            SenseAmpParameters(discharge_per_cell_v=-0.1)
        with pytest.raises(ConfigurationError):
            SenseAmpParameters(sense_offset_v=0.2)
        with pytest.raises(ConfigurationError):
            SenseAmpParameters(noise_sigma_v=-1)
        with pytest.raises(ConfigurationError):
            SenseAmpParameters(sense_amps_per_bitline=0)

    def test_negative_cell_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SenseAmpParameters().bitline_voltage(-1)


class TestLatchSenseAmplifier:
    def test_resolves_clear_differentials(self):
        amplifier = LatchSenseAmplifier(offset_v=0.02)
        assert amplifier.resolve(1.0, 0.5) is True
        assert amplifier.resolve(0.5, 1.0) is False
        assert amplifier.evaluations == 2

    def test_marginal_input_raises(self):
        amplifier = LatchSenseAmplifier(offset_v=0.05)
        with pytest.raises(SenseMarginError):
            amplifier.resolve(1.00, 0.99)

    def test_noise_can_flip_marginal_decisions(self):
        noisy = LatchSenseAmplifier(
            offset_v=0.001, noise_sigma_v=0.5, rng=random.Random(2)
        )
        decisions = set()
        for _ in range(100):
            try:
                decisions.add(noisy.resolve(1.0, 0.95))
            except SenseMarginError:
                decisions.add("margin")
        assert len(decisions) > 1

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LatchSenseAmplifier(offset_v=-1)
        with pytest.raises(ConfigurationError):
            LatchSenseAmplifier(noise_sigma_v=-1)


class TestLogicSenseAmpModule:
    @pytest.fixture()
    def module(self) -> LogicSenseAmpModule:
        return LogicSenseAmpModule(columns=8)

    def test_column_levels_recover_counts(self, module):
        for count in range(4):
            assert module.column_level(count) == count

    def test_decode_produces_xor3_and_maj(self, module):
        assert module.decode(0) == (0, 0)
        assert module.decode(1) == (1, 0)
        assert module.decode(2) == (0, 1)
        assert module.decode(3) == (1, 1)

    def test_evaluate_matches_bitwise_logic(self, module):
        array = SramArray(rows=4, cols=8)
        a, b, c = 0b1011_0010, 0b0111_1000, 0b1101_0110
        array.write_row(0, a)
        array.write_row(1, b)
        array.write_row(2, c)
        result = module.evaluate(array.activate_rows([0, 1, 2]))
        assert result.xor3 == a ^ b ^ c
        assert result.maj == (a & b) | (a & c) | (b & c)
        assert result.as_tuple() == (result.xor3, result.maj)
        assert module.accesses == 1

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_evaluate_property(self, a, b, c):
        module = LogicSenseAmpModule(columns=8)
        array = SramArray(rows=3, cols=8)
        for row, word in enumerate((a, b, c)):
            array.write_row(row, word)
        result = module.evaluate(array.activate_rows([0, 1, 2]))
        assert result.xor3 == a ^ b ^ c
        assert result.maj == (a & b) | (a & c) | (b & c)

    def test_width_mismatch_rejected(self, module):
        array = SramArray(rows=3, cols=16)
        array.write_row(0, 1)
        with pytest.raises(ConfigurationError):
            module.evaluate(array.activate_rows([0]))

    def test_worst_case_margin_is_half_a_step(self, module):
        assert module.worst_case_margin_v() == pytest.approx(0.125)

    def test_failure_probability_increases_with_noise(self, module):
        quiet = module.failure_probability(0.01)
        noisy = module.failure_probability(0.10)
        assert 0.0 <= quiet < noisy < 0.5

    def test_failure_probability_zero_without_noise(self, module):
        assert module.failure_probability(0.0) == 0.0

    def test_invalid_column_count_rejected(self):
        with pytest.raises(ConfigurationError):
            LogicSenseAmpModule(columns=0)
