"""Tests for the SRAM array model (ports, multi-row reads, statistics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReadDisturbError, SramAccessError
from repro.sram import EightTransistorCell, SixTransistorCell, SramArray


@pytest.fixture()
def array() -> SramArray:
    return SramArray(rows=16, cols=32, cell=EightTransistorCell)


class TestReadWrite:
    def test_write_then_read_round_trip(self, array):
        array.write_row(3, 0xDEADBEEF)
        assert array.read_row(3) == 0xDEADBEEF

    def test_rows_start_at_zero(self, array):
        assert array.read_row(7) == 0

    def test_write_validates_row_index(self, array):
        with pytest.raises(SramAccessError):
            array.write_row(16, 1)

    def test_write_validates_value_width(self, array):
        with pytest.raises(SramAccessError):
            array.write_row(0, 1 << 32)
        with pytest.raises(SramAccessError):
            array.write_row(0, -1)

    def test_clear_zeroes_every_row(self, array):
        array.write_row(1, 5)
        array.write_row(2, 9)
        array.clear()
        assert array.read_row(1) == 0
        assert array.read_row(2) == 0

    def test_capacity(self, array):
        assert array.capacity_bits == 16 * 32

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SramAccessError):
            SramArray(rows=0, cols=8)


class TestMultiRowActivation:
    def test_column_counts_reflect_stored_ones(self, array):
        array.write_row(0, 0b1100)
        array.write_row(1, 0b1010)
        array.write_row(2, 0b1001)
        readout = array.activate_rows([0, 1, 2])
        assert readout.column_counts[0] == 1
        assert readout.column_counts[1] == 1
        assert readout.column_counts[2] == 1
        assert readout.column_counts[3] == 3
        assert readout.column_counts[4] == 0

    def test_wired_or(self, array):
        array.write_row(0, 0b0011)
        array.write_row(1, 0b0110)
        assert array.activate_rows([0, 1]).wired_or() == 0b0111

    def test_exact_value_requires_single_row(self, array):
        array.write_row(0, 7)
        with pytest.raises(SramAccessError):
            array.activate_rows([0, 1]).exact_value()

    def test_duplicate_rows_rejected(self, array):
        with pytest.raises(SramAccessError):
            array.activate_rows([1, 1])

    def test_empty_activation_rejected(self, array):
        with pytest.raises(SramAccessError):
            array.activate_rows([])

    def test_four_rows_exceed_8t_limit(self, array):
        with pytest.raises(ReadDisturbError):
            array.activate_rows([0, 1, 2, 3])

    def test_6t_array_rejects_multi_row_reads(self):
        array = SramArray(rows=8, cols=8, cell=SixTransistorCell)
        with pytest.raises(ReadDisturbError):
            array.activate_rows([0, 1])
        assert array.stats.read_disturb_events == 1

    def test_6t_array_permissive_mode_records_disturbs(self):
        array = SramArray(rows=8, cols=8, cell=SixTransistorCell, strict_disturb=False)
        array.activate_rows([0, 1])
        assert array.stats.read_disturb_events == 1

    @given(st.lists(st.integers(0, 255), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_counts_equal_bitwise_sum(self, words):
        array = SramArray(rows=4, cols=8)
        for row, word in enumerate(words):
            array.write_row(row, word)
        readout = array.activate_rows([0, 1, 2])
        for column in range(8):
            expected = sum((word >> column) & 1 for word in words)
            assert readout.column_counts[column] == expected


class TestStatsAndDebug:
    def test_stats_count_reads_and_writes(self, array):
        array.write_row(0, 1)
        array.write_row(1, 2)
        array.read_row(0)
        array.activate_rows([0, 1])
        stats = array.stats
        assert stats.row_writes == 2
        assert stats.row_reads == 2
        assert stats.compute_reads == 1
        assert stats.rows_activated == 3
        assert stats.precharges == 2
        assert stats.bits_written == 2 * 32

    def test_stats_reset(self, array):
        array.write_row(0, 1)
        array.stats.reset()
        assert array.stats.row_writes == 0

    def test_stats_as_dict(self, array):
        array.write_row(0, 1)
        assert array.stats.as_dict()["row_writes"] == 1

    def test_peek_and_poke_bypass_counting(self, array):
        array.poke(5, 123)
        assert array.peek(5) == 123
        assert array.stats.row_writes == 0
        assert array.stats.row_reads == 0

    def test_poke_validates_width(self, array):
        with pytest.raises(SramAccessError):
            array.poke(0, 1 << 32)

    def test_dump_lists_nonzero_rows(self, array):
        array.poke(2, 7)
        array.poke(9, 1)
        assert array.dump() == {2: 7, 9: 1}

    def test_area_and_repr(self, array):
        assert array.area_um2() == pytest.approx(
            EightTransistorCell.area_um2 * 16 * 32
        )
        assert "8T" in repr(array)
