"""Tests for the 6T / 8T SRAM cell models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sram import EightTransistorCell, SixTransistorCell, make_cell


class TestCellStructure:
    def test_transistor_counts(self):
        assert SixTransistorCell.transistor_count == 6
        assert EightTransistorCell.transistor_count == 8

    def test_8t_has_separate_read_port(self):
        assert not EightTransistorCell.shared_read_write_port
        assert SixTransistorCell.shared_read_write_port

    def test_8t_supports_three_row_activation(self):
        """The logic-SA scheme needs three simultaneously activated rows."""
        assert EightTransistorCell.max_simultaneous_reads >= 3
        assert SixTransistorCell.max_simultaneous_reads == 1

    def test_8t_is_larger_than_6t(self):
        assert EightTransistorCell.area_um2 > SixTransistorCell.area_um2


class TestDisturbRisk:
    def test_6t_multi_row_read_is_risky(self):
        assert SixTransistorCell.disturb_risk(2)
        assert SixTransistorCell.disturb_risk(3)
        assert not SixTransistorCell.disturb_risk(1)

    def test_8t_tolerates_three_rows(self):
        assert not EightTransistorCell.disturb_risk(3)
        assert EightTransistorCell.disturb_risk(4)

    def test_zero_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            EightTransistorCell.disturb_risk(0)


class TestArea:
    def test_array_area_scales_with_geometry(self):
        single = EightTransistorCell.area_for(1, 1)
        assert EightTransistorCell.area_for(64, 256) == pytest.approx(single * 64 * 256)

    def test_paper_array_area_is_two_thirds_of_macro(self):
        """64 x 256 8T cells come to roughly 0.035 mm^2 (67% of 0.053)."""
        area_mm2 = EightTransistorCell.area_for(64, 256) * 1e-6
        assert 0.032 < area_mm2 < 0.038

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            EightTransistorCell.area_for(0, 10)


class TestFactory:
    def test_make_cell_by_name(self):
        assert make_cell("8T") is EightTransistorCell
        assert make_cell("6t") is SixTransistorCell

    def test_unknown_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cell("10T")
