"""Tests for the word-line decoders, the timing model and the energy model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SramAccessError
from repro.sram import (
    DEFAULT_65NM_TIMING,
    DecoderBank,
    EnergyModel,
    SramArray,
    TimingModel,
    WordlineDecoder,
)


class TestWordlineDecoder:
    def test_one_hot_output(self):
        decoder = WordlineDecoder(rows=8)
        assert decoder.decode([5]) == (0, 0, 0, 0, 0, 1, 0, 0)

    def test_multi_hot_output(self):
        decoder = WordlineDecoder(rows=8, max_active=3)
        onehot = decoder.decode([1, 4, 6])
        assert sum(onehot) == 3
        assert onehot[1] == onehot[4] == onehot[6] == 1

    def test_activation_counting(self):
        decoder = WordlineDecoder(rows=8, max_active=3)
        decoder.decode([0])
        decoder.decode([1, 2])
        assert decoder.activations == 2
        assert decoder.wordlines_raised == 3

    def test_too_many_rows_rejected(self):
        decoder = WordlineDecoder(rows=8, max_active=2)
        with pytest.raises(SramAccessError):
            decoder.decode([0, 1, 2])

    def test_out_of_range_address_rejected(self):
        with pytest.raises(SramAccessError):
            WordlineDecoder(rows=8).decode([8])

    def test_duplicates_rejected(self):
        with pytest.raises(SramAccessError):
            WordlineDecoder(rows=8, max_active=2).decode([3, 3])

    def test_empty_request_rejected(self):
        with pytest.raises(SramAccessError):
            WordlineDecoder(rows=8).decode([])

    def test_address_bits(self):
        assert WordlineDecoder(rows=64).address_bits == 6
        assert WordlineDecoder(rows=60).address_bits == 6

    def test_transistor_estimate_scales_with_rows(self):
        small = WordlineDecoder(rows=16).transistor_estimate()
        large = WordlineDecoder(rows=64).transistor_estimate()
        assert large > small

    def test_tiny_decoder_rejected(self):
        with pytest.raises(SramAccessError):
            WordlineDecoder(rows=1)


class TestDecoderBank:
    def test_for_array_builds_read_and_write_decoders(self):
        bank = DecoderBank.for_array(64)
        assert bank.read_decoder.max_active == 3
        assert bank.write_decoder.max_active == 1
        assert bank.transistor_estimate() > 0


class TestTimingModel:
    def test_default_frequency_matches_paper(self):
        assert DEFAULT_65NM_TIMING.frequency_mhz == pytest.approx(420.0, rel=0.02)

    def test_cycle_time_is_the_critical_path(self):
        timing = TimingModel()
        assert timing.cycle_time_ns == pytest.approx(
            max(timing.read_compute_latency_ns, timing.write_latency_ns)
        )

    def test_latency_helpers(self):
        timing = TimingModel()
        assert timing.latency_us(767) == pytest.approx(767 * timing.cycle_time_ns / 1e3)
        assert timing.throughput_ops_per_second(767) == pytest.approx(
            timing.frequency_mhz * 1e6 / 767
        )

    def test_scaling_to_smaller_node_speeds_up(self):
        scaled = DEFAULT_65NM_TIMING.scaled_to(28)
        assert scaled.frequency_mhz > DEFAULT_65NM_TIMING.frequency_mhz
        assert scaled.technology_nm == 28

    def test_as_dict_contains_derived_figures(self):
        data = TimingModel().as_dict()
        assert "frequency_mhz" in data and "cycle_time_ns" in data

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimingModel(precharge_ns=0)
        with pytest.raises(ConfigurationError):
            TimingModel().scaled_to(0)
        with pytest.raises(ConfigurationError):
            TimingModel().latency_us(-1)
        with pytest.raises(ConfigurationError):
            TimingModel().throughput_ops_per_second(0)


class TestEnergyModel:
    def test_energy_from_stats(self):
        array = SramArray(rows=8, cols=16)
        array.write_row(0, 0xFFFF)
        array.write_row(1, 0x0F0F)
        array.write_row(2, 0x1111)
        array.activate_rows([0, 1, 2])
        model = EnergyModel(columns=16)
        breakdown = model.from_stats(array.stats, flipflop_writes=32)
        assert breakdown.total_pj > 0
        assert breakdown.write_pj > breakdown.near_memory_pj
        assert breakdown.as_dict()["total_pj"] == pytest.approx(breakdown.total_pj)

    def test_compute_reads_cost_more_sensing_than_plain_reads(self):
        model = EnergyModel(columns=16)
        plain = SramArray(rows=4, cols=16)
        plain.write_row(0, 1)
        plain.read_row(0)
        compute = SramArray(rows=4, cols=16)
        compute.write_row(0, 1)
        compute.activate_rows([0, 1, 2])
        assert (
            model.from_stats(compute.stats).sensing_pj
            > model.from_stats(plain.stats).sensing_pj
        )

    def test_energy_per_modmul(self):
        array = SramArray(rows=4, cols=16)
        array.write_row(0, 3)
        model = EnergyModel(columns=16)
        per_op = model.energy_per_modmul_pj(array.stats, flipflop_writes=0, multiplications=1)
        assert per_op == pytest.approx(model.from_stats(array.stats).total_pj)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(columns=0)
        with pytest.raises(ConfigurationError):
            EnergyModel(write_fj_per_bit=-1)
        model = EnergyModel()
        array = SramArray(rows=4, cols=16)
        with pytest.raises(ConfigurationError):
            model.from_stats(array.stats, flipflop_writes=-1)
        with pytest.raises(ConfigurationError):
            model.energy_per_modmul_pj(array.stats, 0, 0)
