"""Tests for the ArrayStats algebra and shared-stats array injection."""

from __future__ import annotations

from repro.sram.array import SramArray
from repro.sram.stats import ArrayStats


class TestArrayStatsAlgebra:
    def test_merged_with_sums_every_counter(self):
        first = ArrayStats(row_writes=2, bits_written=512, precharges=1)
        second = ArrayStats(row_writes=3, row_reads=4, precharges=2)
        merged = first.merged_with(second)
        assert merged.row_writes == 5
        assert merged.row_reads == 4
        assert merged.bits_written == 512
        assert merged.precharges == 3
        # Inputs are untouched.
        assert first.row_writes == 2 and second.row_writes == 3

    def test_snapshot_and_delta_since(self):
        stats = ArrayStats()
        stats.record_write(256)
        before = stats.snapshot()
        stats.record_write(256)
        stats.record_read(3, compute=True)
        delta = stats.delta_since(before)
        assert delta.row_writes == 1
        assert delta.bits_written == 256
        assert delta.compute_reads == 1
        # The snapshot is independent of later mutation.
        assert before.row_writes == 1

    def test_shared_stats_aggregate_across_arrays(self):
        shared = ArrayStats()
        left = SramArray(rows=4, cols=8, stats=shared)
        right = SramArray(rows=4, cols=8, stats=shared)
        left.write_row(0, 0xAB)
        right.write_row(1, 0xCD)
        right.read_row(1)
        assert shared.row_writes == 2
        assert shared.row_reads == 1
        assert left.stats is right.stats is shared
